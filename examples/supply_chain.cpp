// Supply-chain scenario: a three-echelon network (manufacturers ->
// distribution centers -> retailers) with pallets moving downstream, then a
// product recall — exactly the application the paper's introduction
// motivates.
//
// The recall traces every object of an affected production lot back to its
// manufacturing line, using only P2P queries; results are validated against
// the ground-truth oracle.
//
//   ./supply_chain [--manufacturers=4] [--dcs=8] [--retailers=20]
//                  [--lots=6] [--lot-size=40]

#include <cstdio>
#include <vector>

#include "peertrack.hpp"
#include "util/config.hpp"
#include "util/format.hpp"

using namespace peertrack;

int main(int argc, char** argv) {
  const auto cli = util::Config::FromArgs(argc, argv);
  const std::size_t manufacturers = cli.GetUInt("manufacturers", 4);
  const std::size_t dcs = cli.GetUInt("dcs", 8);
  const std::size_t retailers = cli.GetUInt("retailers", 20);
  const std::size_t lots = cli.GetUInt("lots", 6);
  const std::size_t lot_size = cli.GetUInt("lot-size", 40);
  const std::size_t nodes = manufacturers + dcs + retailers;

  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kGroup;
  config.tracker.window.tmax_ms = 500.0;
  tracking::TrackingSystem system(nodes, config);

  auto dc_of = [&](std::uint64_t lot) {
    return static_cast<std::uint32_t>(manufacturers + lot % dcs);
  };
  auto retailer_of = [&](std::uint64_t lot, std::uint64_t item) {
    return static_cast<std::uint32_t>(manufacturers + dcs +
                                      (lot * 7 + item) % retailers);
  };

  // Production: each lot is made at one manufacturer, shipped as a pallet
  // to one DC, then broken into cases that fan out to retailers.
  workload::EpcGenerator epc(/*seed=*/2024);
  std::vector<std::vector<hash::UInt160>> lot_objects(lots);
  moods::Time t = 10.0;
  for (std::uint64_t lot = 0; lot < lots; ++lot) {
    const auto factory = static_cast<std::uint32_t>(lot % manufacturers);
    for (std::uint64_t item = 0; item < lot_size; ++item) {
      const auto key = epc.Key(lot * lot_size + item);
      lot_objects[lot].push_back(key);
      system.CaptureAt(factory, key, t);                        // Produced.
      system.CaptureAt(dc_of(lot), key, t + 3'600'000.0);       // At the DC.
      system.CaptureAt(retailer_of(lot, item), key,
                       t + 7'200'000.0);                        // On the shelf.
    }
    t += 60'000.0;  // Lots start an hour-ish apart (compressed).
  }
  system.Run();
  system.FlushAllWindows();
  std::printf("supply chain: %zu orgs (%zu mfg, %zu DC, %zu retail), %zu lots x %zu "
              "items; %llu messages during operations\n",
              nodes, manufacturers, dcs, retailers, lots, lot_size,
              static_cast<unsigned long long>(system.metrics().TotalMessages()));

  // --- Recall: lot 3 is contaminated. Trace every item. -------------------
  const std::uint64_t recalled = 3 % lots;
  std::printf("\nRECALL of lot %llu: tracing %zu items...\n",
              static_cast<unsigned long long>(recalled), lot_objects[recalled].size());

  std::size_t verified = 0;
  std::size_t failures = 0;
  util::RunningStats latency;
  std::vector<std::size_t> shelf_counts(nodes, 0);
  for (const auto& object : lot_objects[recalled]) {
    system.TraceQuery(/*origin=*/0, object,
                      [&](tracking::TrackerNode::TraceResult result) {
                        if (!result.ok) {
                          ++failures;
                          return;
                        }
                        latency.Add(result.DurationMs());
                        // Validate against ground truth.
                        const auto* expected = system.oracle().FullTrace(object);
                        if (expected != nullptr &&
                            expected->size() == result.path.size()) {
                          ++verified;
                        }
                        const auto last =
                            system.NodeIndexOfActor(result.path.back().node.actor);
                        if (last < nodes) ++shelf_counts[last];
                      });
    system.Run();
  }

  std::printf("traced %zu/%zu items (%zu failures); every trace matched the oracle: "
              "%s; mean query time %.1f ms (simulated)\n",
              verified, lot_objects[recalled].size(), failures,
              verified == lot_objects[recalled].size() ? "yes" : "NO",
              latency.Mean());

  std::printf("\npull-from-shelf list (retailers holding recalled items):\n");
  for (std::size_t i = manufacturers + dcs; i < nodes; ++i) {
    if (shelf_counts[i] > 0) {
      std::printf("  org-%zu: %zu items\n", i, shelf_counts[i]);
    }
  }
  return 0;
}
