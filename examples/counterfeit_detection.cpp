// Counterfeit (clone-tag) detection: the anti-counterfeiting application
// from the paper's abstract, built on top of trace queries.
//
// A counterfeiter copies a genuine tag's EPC onto fake goods. Both the
// genuine object and its clones are then captured around the network under
// the SAME id. A trace query returns the merged movement history; physically
// impossible transitions (the object would have had to travel faster than
// any truck) expose the cloning and localize where fakes entered.
//
//   ./counterfeit_detection [--nodes=24] [--speed-limit-ms=600000]

#include <cstdio>
#include <vector>

#include "peertrack.hpp"
#include "util/config.hpp"

using namespace peertrack;

int main(int argc, char** argv) {
  const auto cli = util::Config::FromArgs(argc, argv);
  const std::size_t nodes = cli.GetUInt("nodes", 24);
  // Minimum plausible time between consecutive captures at different sites.
  const double speed_limit_ms = cli.GetDouble("speed-limit-ms", 600'000.0);

  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kIndividual;
  tracking::TrackingSystem system(nodes, config);

  // The genuine luxury handbag moves slowly through legitimate channels.
  const moods::Object genuine("urn:epc:id:sgtin:7788990.000123.777");
  system.CaptureAt(2, genuine.Key(), 10.0);
  system.CaptureAt(5, genuine.Key(), 10.0 + 2 * speed_limit_ms);
  system.CaptureAt(9, genuine.Key(), 10.0 + 4 * speed_limit_ms);

  // Clones with the SAME EPC surface at other sites in between — far too
  // soon after the genuine item was seen elsewhere.
  system.CaptureAt(17, genuine.Key(), 10.0 + 2 * speed_limit_ms + 1'000.0);
  system.CaptureAt(21, genuine.Key(), 10.0 + 2 * speed_limit_ms + 2'000.0);

  system.Run();
  system.FlushAllWindows();

  // An auditor anywhere in the network pulls the object's trace.
  std::printf("auditing EPC %s ...\n", genuine.RawId().c_str());
  bool any_alarm = false;
  system.TraceQuery(
      /*origin=*/0, genuine.Key(), [&](tracking::TrackerNode::TraceResult result) {
        if (!result.ok) {
          std::printf("trace failed — cannot audit\n");
          return;
        }
        std::printf("merged movement history (%zu captures):\n", result.path.size());
        for (const auto& step : result.path) {
          std::printf("  t=%10.0f ms  org-%u\n", step.arrived,
                      system.NodeIndexOfActor(step.node.actor));
        }
        // Clone detector: consecutive captures at different sites closer in
        // time than any physical transport allows.
        std::printf("\nclone analysis (speed limit: %.0f ms between sites):\n",
                    speed_limit_ms);
        for (std::size_t i = 1; i < result.path.size(); ++i) {
          const double gap = result.path[i].arrived - result.path[i - 1].arrived;
          const bool different_site =
              result.path[i].node.actor != result.path[i - 1].node.actor;
          if (different_site && gap < speed_limit_ms) {
            any_alarm = true;
            std::printf("  ALARM: org-%u -> org-%u in %.0f ms — physically "
                        "impossible; clone suspected at org-%u\n",
                        system.NodeIndexOfActor(result.path[i - 1].node.actor),
                        system.NodeIndexOfActor(result.path[i].node.actor), gap,
                        system.NodeIndexOfActor(result.path[i].node.actor));
          }
        }
      });
  system.Run();

  std::printf("\nverdict: %s\n", any_alarm
                                     ? "COUNTERFEITS IN CIRCULATION — quarantine "
                                       "flagged sites"
                                     : "no anomaly detected");
  return any_alarm ? 0 : 1;
}
