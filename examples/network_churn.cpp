// Network dynamics: organizations joining and leaving, gossip-based size
// estimation, and Lp adaptation with the Data-Triangle split cascade —
// the machinery of paper Sections IV-A1/IV-A2 that the static experiments
// do not exercise.
//
// Phase 1: protocol-level Chord churn (joins, graceful leaves, a crash)
//          with stabilization repairing the ring. An InvariantMonitor
//          audits the ring against the true membership throughout: churn
//          opens transient violations, stabilization closes them, and the
//          repair-latency percentiles land in the health report.
// Phase 2: gossip size estimation approximating Nn (the paper's [14]).
// Phase 3: growing the tracked network until Scheme-2's Lp increments,
//          splitting the prefix index, and verifying queries still resolve
//          — with ring + tracking invariants audited end-to-end.
//
//   ./network_churn [--nodes=24] [--growth=40] [--health=health.json]
//
// Exit code 2 if ANY violation is still open at the end of a phase — with
// successor-list scrubbing, gateway-index replication, and graceful-leave
// handoff in place, every violation is expected to heal by quiesce.

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "peertrack.hpp"
#include "util/config.hpp"
#include "util/format.hpp"

using namespace peertrack;

namespace {

/// Named per-phase health reports, combined into one JSON document.
using HealthLog = std::vector<std::pair<std::string, obs::HealthReport>>;

void RunChordChurnPhase(std::size_t n, HealthLog& health) {
  std::printf("--- phase 1: Chord membership under churn (%zu nodes) ---\n", n);
  sim::Simulator sim;
  sim::ConstantLatency latency(5.0);
  util::Rng rng(17);
  sim::Network network(sim, latency, rng);
  chord::ChordRing::Options options;
  options.stabilize_every_ms = 100.0;
  options.fix_fingers_every_ms = 10.0;
  chord::ChordRing ring(network, options);
  for (std::size_t i = 0; i < n; ++i) ring.AddNode(util::Format("org-{}", i));
  ring.ProtocolBootstrap(/*settle_ms=*/30'000.0);
  std::printf("bootstrap converged: %s\n", ring.IsConverged() ? "yes" : "NO");

  // Audit the ring against the true membership for the whole churn window.
  // Every leave/join/crash opens violations (wrong successors, dead finger
  // targets) that stabilization then repairs; the monitor times each one.
  obs::Registry registry;
  obs::InvariantMonitor monitor(sim, registry);
  obs::InstallRingChecks(monitor, ring);
  monitor.Start(/*period_ms=*/250.0, /*until_ms=*/sim.Now() + 90'000.0);

  ring.Node(n / 3).Leave();
  ring.ProtocolJoin("late-joiner");
  ring.Node(n / 2).Crash();
  sim.RunUntil(sim.Now() + 90'000.0);
  std::printf("after leave+join+crash: %zu alive, converged: %s, failovers: %llu\n",
              ring.AliveCount(), ring.IsConverged() ? "yes" : "NO",
              static_cast<unsigned long long>(
                  network.metrics().Counter("chord.successor_failover")));

  monitor.RunOnce();  // Final scan on the settled ring.
  const obs::HealthReport report = monitor.Report();
  std::fputs(report.SummaryTable().c_str(), stdout);
  health.emplace_back("chord_churn", report);
}

double RunGossipPhase(std::size_t n) {
  std::printf("\n--- phase 2: gossip size estimation (%zu nodes) ---\n", n);
  sim::Simulator sim;
  sim::ConstantLatency latency(5.0);
  util::Rng rng(23);
  sim::Network network(sim, latency, rng);
  estimate::SizeEstimationEpoch epoch(network, rng, n);
  epoch.Start(/*round_ms=*/50.0, /*rounds=*/50);
  sim.Run();
  const double estimate = epoch.MeanEstimate();
  std::printf("true Nn=%zu, gossip estimate=%.1f (%.0f%% error), %llu messages\n", n,
              estimate, 100.0 * (estimate - static_cast<double>(n)) /
                            static_cast<double>(n),
              static_cast<unsigned long long>(network.metrics().TotalMessages()));
  return estimate;
}

void RunGrowthPhase(std::size_t n, std::size_t growth, HealthLog& health) {
  std::printf("\n--- phase 3: network growth, Lp adaptation, index splitting ---\n");
  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kGroup;
  config.tracker.replicate_index = true;  // Exercise gateway.replication.
  tracking::TrackingSystem system(n, config);
  std::printf("start: %zu orgs, Lp=%u, replication R=%zu\n", n, system.CurrentLp(),
              static_cast<std::size_t>(config.tracker.replication_factor));

  // Ring + tracking invariants audited across indexing, growth, and the
  // post-growth queries. The workload below finishes well before the
  // horizon; growth and queries drain the event queue themselves, so late
  // scans come from the manual RunOnce below.
  obs::Registry registry;
  obs::InvariantMonitor monitor(system.simulator(), registry);
  obs::InstallRingChecks(monitor, system.ring());
  obs::InstallTrackingChecks(monitor, system);
  monitor.Start(/*period_ms=*/1000.0, /*until_ms=*/60'000.0);

  // Seed the network with objects.
  workload::MovementParams params;
  params.nodes = n;
  params.objects_per_node = 100;
  params.move_fraction = 0.1;
  params.trace_length = 4;
  const auto scenario = workload::ExecuteScenario(system, params, /*epc_seed=*/5);

  const unsigned lp_before = system.CurrentLp();
  system.GrowNetwork(growth);
  const unsigned lp_after = system.RecomputePrefixLength();
  std::printf("after +%zu joins: %zu orgs, Lp %u -> %u, index splits: %llu\n", growth,
              system.NodeCount(), lp_before, lp_after,
              static_cast<unsigned long long>(
                  system.metrics().Counter("track.triangle_split")));

  // Old objects must still resolve through the re-shaped index.
  util::Rng rng(9);
  std::size_t ok = 0;
  const std::size_t probes = 25;
  for (std::size_t i = 0; i < probes; ++i) {
    const auto& object =
        scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    system.LocateQuery(rng.NextBelow(system.NodeCount()), object,
                       [&](tracking::TrackerNode::LocateResult result) {
                         if (result.ok) ++ok;
                       });
    system.Run();
  }
  std::printf("post-growth locate queries: %zu/%zu resolved\n", ok, probes);

  // Let in-flight repairs settle past the staleness window, then take the
  // final scan the health verdict is based on.
  system.RunUntil(system.simulator().Now() +
                  config.tracker.window.tmax_ms + 3000.0);
  monitor.RunOnce();
  const obs::HealthReport report = monitor.Report();
  std::fputs(report.SummaryTable().c_str(), stdout);
  health.emplace_back("growth", report);
}

std::string CombinedHealthJson(const HealthLog& health) {
  std::string json = "{\n  \"report\": \"network_churn_health\",\n  \"phases\": [";
  for (std::size_t i = 0; i < health.size(); ++i) {
    if (i > 0) json += ",";
    json += util::Format("\n    {{\"name\": \"{}\", \"health\": ",
                         obs::JsonEscape(health[i].first));
    json += health[i].second.ToJson();
    json += "}";
  }
  json += "\n  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::FromArgs(argc, argv);
  const std::size_t nodes = cli.GetUInt("nodes", 24);
  const std::size_t growth = cli.GetUInt("growth", 40);
  const std::string health_path = cli.GetString("health", "");

  HealthLog health;
  RunChordChurnPhase(nodes, health);
  RunGossipPhase(nodes);
  RunGrowthPhase(nodes, growth, health);

  if (!health_path.empty()) {
    std::ofstream out(health_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "network_churn: cannot write %s\n", health_path.c_str());
      return 1;
    }
    out << CombinedHealthJson(health);
    std::fprintf(stderr, "(health report written to %s)\n", health_path.c_str());
  }

  // ANY still-open violation means the run ended in a state the protocols
  // failed to repair — structural debt, not noise. Churn-resilient
  // recovery (successor-list scrubbing, index replication, graceful-leave
  // handoff) is expected to close every violation by quiesce, so the
  // former warn-level tolerance is gone: surface it all in the exit code.
  for (const auto& [name, report] : health) {
    if (report.open_violations > 0) {
      std::fprintf(stderr,
                   "network_churn: %zu violation(s) (%zu fatal) still open after %s\n",
                   report.open_violations, report.open_fatal, name.c_str());
      return 2;
    }
  }
  return 0;
}
