// Scenario runner: a one-binary front door to the whole library for people
// who want to experiment without writing C++. Reads a scenario from a
// config file (key=value lines, '#' comments) and/or CLI flags (CLI wins),
// runs it, and prints a report: indexing cost, query latency, load balance,
// and a comparison against both the centralized warehouse and the flooding
// baseline.
//
//   ./scenario_runner --config=myrun.conf
//   ./scenario_runner --nodes=128 --objects-per-node=500 --mode=group
//                     --queries=100 --latency=lognormal:5:0.5
//
// Recognized keys (defaults in parentheses): nodes (64),
// objects-per-node (300), move-fraction (0.1), trace-length (10),
// move-in-groups (true), mode (group|individual; group), scheme (1|2|3; 2),
// tmax-ms (1000), nmax (8192), latency ("constant:5"), seed (0x5eed),
// queries (100), replicate (false), loss (0.0), compare-central (true),
// compare-flooding (false), csv ("").

#include <cstdio>

#include "peertrack.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace peertrack;

int main(int argc, char** argv) {
  auto cli = util::Config::FromArgs(argc, argv);
  util::Config config;
  if (cli.Has("config")) {
    config = util::Config::FromFile(cli.GetString("config", ""));
  }
  config.MergeFrom(cli);  // CLI overrides the file.

  const std::size_t nodes = config.GetUInt("nodes", 64);
  const std::size_t per_node = config.GetUInt("objects-per-node", 300);
  const std::size_t queries = config.GetUInt("queries", 100);

  tracking::SystemConfig system_config;
  system_config.tracker.mode = config.GetString("mode", "group") == "individual"
                                   ? tracking::IndexingMode::kIndividual
                                   : tracking::IndexingMode::kGroup;
  switch (config.GetInt("scheme", 2)) {
    case 1: system_config.scheme = tracking::PrefixScheme::kLogN; break;
    case 3: system_config.scheme = tracking::PrefixScheme::kTwoLogN; break;
    default: system_config.scheme = tracking::PrefixScheme::kLogNLogLogN; break;
  }
  system_config.tracker.window.tmax_ms = config.GetDouble("tmax-ms", 1000.0);
  system_config.tracker.window.nmax = config.GetUInt("nmax", 8192);
  system_config.tracker.replicate_index = config.GetBool("replicate", false);
  system_config.latency = config.GetString("latency", "constant:5");
  system_config.seed = config.GetUInt("seed", 0x5eedULL);

  workload::MovementParams params;
  params.nodes = nodes;
  params.objects_per_node = per_node;
  params.move_fraction = config.GetDouble("move-fraction", 0.10);
  params.trace_length = config.GetUInt("trace-length", 10);
  params.move_in_groups = config.GetBool("move-in-groups", true);

  std::printf("PeerTrack scenario: %zu orgs, %zu objects/org, mode=%s, latency=%s\n",
              nodes, per_node,
              system_config.tracker.mode == tracking::IndexingMode::kGroup
                  ? "group" : "individual",
              system_config.latency.c_str());

  tracking::TrackingSystem system(nodes, system_config);
  system.network().SetLossRate(config.GetDouble("loss", 0.0));
  const auto scenario = workload::ExecuteScenario(system, params, system_config.seed);

  std::printf("Lp=%u; indexing: %llu messages, %.1f MiB over the wire\n",
              system.CurrentLp(),
              static_cast<unsigned long long>(scenario.indexing_messages),
              static_cast<double>(scenario.indexing_bytes) / (1024.0 * 1024.0));

  // --- P2P trace queries ----------------------------------------------------
  util::Rng rng(system_config.seed ^ 0xa11ce);
  util::RunningStats p2p_ms;
  util::Percentiles p2p_pct;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    const auto& object =
        scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    system.TraceQuery(rng.NextBelow(nodes), object,
                      [&](tracking::TrackerNode::TraceResult result) {
                        if (result.ok) {
                          p2p_ms.Add(result.DurationMs());
                          p2p_pct.Add(result.DurationMs());
                        } else {
                          ++failures;
                        }
                      });
    system.Run();
  }

  util::Table report({"metric", "value"});
  report.AddRow({"trace queries", std::to_string(queries)});
  report.AddRow({"failures", std::to_string(failures)});
  report.AddRow({"p2p mean ms", util::FormatDouble(p2p_ms.Mean(), 1)});
  report.AddRow({"p2p p95 ms", util::FormatDouble(p2p_pct.Percentile(95), 1)});

  // --- Baselines --------------------------------------------------------------
  if (config.GetBool("compare-central", true)) {
    central::CentralTracker central;
    for (const auto& object : scenario.object_keys) {
      if (const auto* trace = system.oracle().FullTrace(object)) {
        for (const auto& visit : *trace) {
          central.Ingest(object, visit.node, visit.arrived);
        }
      }
    }
    util::Rng crng(system_config.seed ^ 0xa11ce);
    util::RunningStats central_ms;
    for (std::size_t i = 0; i < queries; ++i) {
      const auto& object =
          scenario.object_keys[crng.NextBelow(scenario.object_keys.size())];
      crng.NextBelow(nodes);  // Keep streams aligned with the P2P pass.
      central_ms.Add(central.Trace(object).duration_ms);
    }
    report.AddRow({"central scan mean ms", util::FormatDouble(central_ms.Mean(), 1)});
    report.AddRow({"central db rows", std::to_string(central.store().RowCount())});
  }
  if (config.GetBool("compare-flooding", false)) {
    util::Rng frng(system_config.seed ^ 0xa11ce);
    util::RunningStats flood_ms;
    util::RunningStats flood_msgs;
    for (std::size_t i = 0; i < queries; ++i) {
      const auto& object =
          scenario.object_keys[frng.NextBelow(scenario.object_keys.size())];
      system.FloodTraceQuery(frng.NextBelow(nodes), object,
                             [&](tracking::FloodingQueryEngine::Result result) {
                               if (result.ok) {
                                 flood_ms.Add(result.DurationMs());
                                 flood_msgs.Add(static_cast<double>(result.messages));
                               }
                             });
      system.Run();
    }
    report.AddRow({"flooding mean ms", util::FormatDouble(flood_ms.Mean(), 1)});
    report.AddRow({"flooding msgs/query", util::FormatDouble(flood_msgs.Mean(), 1)});
  }

  // --- Load balance ------------------------------------------------------------
  const auto loads = system.IndexLoadPerNode();
  report.AddRow({"gateway load gini", util::FormatDouble(util::GiniCoefficient(loads), 3)});
  report.AddRow({"orgs with index load",
                 util::FormatDouble(util::NonZeroFraction(loads) * 100.0, 1) + "%"});

  std::printf("\n%s", report.Render().c_str());

  const std::string csv_path = config.GetString("csv", "");
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.WriteRow({"metric", "value"});
    csv.WriteRow({"indexing_messages", std::to_string(scenario.indexing_messages)});
    csv.WriteRow({"p2p_mean_ms", util::FormatDouble(p2p_ms.Mean(), 3)});
    std::printf("(csv written to %s)\n", csv_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
