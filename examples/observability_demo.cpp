// Observability demo: run a small tracked supply chain with causal tracing
// and periodic metric sampling enabled, then export
//   * a Chrome/Perfetto trace  (open at https://ui.perfetto.dev)
//   * a time-series CSV/JSONL of counters, gauges, and latency percentiles.
//
//   ./observability_demo [--nodes=24] [--objects=40] [--queries=20]
//                        [--loss=0.02] [--trace=trace.json]
//                        [--series=metrics.csv] [--jsonl=metrics.jsonl]

#include <cstdio>
#include <set>
#include <vector>

#include "obs/export.hpp"
#include "peertrack.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

using namespace peertrack;

int main(int argc, char** argv) {
  const auto cli = util::Config::FromArgs(argc, argv);
  const std::size_t nodes = cli.GetUInt("nodes", 24);
  const std::size_t objects = cli.GetUInt("objects", 40);
  const std::size_t queries = cli.GetUInt("queries", 20);
  const double loss = cli.GetDouble("loss", 0.02);
  const std::string trace_path = cli.GetString("trace", "trace.json");
  const std::string series_path = cli.GetString("series", "metrics.csv");
  const std::string jsonl_path = cli.GetString("jsonl", "metrics.jsonl");

  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kGroup;
  config.seed = cli.GetUInt("seed", 7);
  tracking::TrackingSystem system(nodes, config);
  system.network().SetLossRate(loss);
  system.network().tracer().SetEnabled(true);

  obs::TimeSeriesSampler sampler(system.simulator(), system.metrics());
  sampler.Start(/*period_ms=*/1'000.0, /*until_ms=*/600'000.0);

  // Move a fleet of tagged objects along random routes, then query them
  // from random organizations — every query becomes one causal trace.
  util::Rng rng(config.seed);
  std::vector<hash::UInt160> keys;
  for (std::size_t i = 0; i < objects; ++i) {
    const auto key = hash::ObjectKey("epc:demo-" + std::to_string(i));
    keys.push_back(key);
    std::vector<std::uint32_t> route;
    const std::size_t hops = 3 + rng.NextBelow(4);
    for (std::size_t h = 0; h < hops; ++h) {
      route.push_back(static_cast<std::uint32_t>(rng.NextBelow(nodes)));
    }
    workload::InjectTrajectory(system, key, route, 10.0 + 5.0 * static_cast<double>(i),
                               2'000.0);
  }
  system.Run();
  system.FlushAllWindows();

  std::size_t ok = 0;
  std::size_t failed = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const auto& key = keys[rng.NextBelow(keys.size())];
    const auto origin = static_cast<std::uint32_t>(rng.NextBelow(nodes));
    if (q % 2 == 0) {
      system.TraceQuery(origin, key, [&](tracking::TrackerNode::TraceResult result) {
        (result.ok ? ok : failed) += 1;
      });
    } else {
      system.LocateQuery(origin, key, [&](tracking::TrackerNode::LocateResult result) {
        (result.ok ? ok : failed) += 1;
      });
    }
    system.Run();
  }
  sampler.SampleNow();  // Final sample at quiesce time.

  const auto& tracer = system.network().tracer();
  std::set<obs::TraceId> trace_ids;
  for (const auto& span : tracer.Spans()) trace_ids.insert(span.trace_id);
  std::printf("ran %zu queries (%zu ok, %zu failed) over %zu nodes, loss=%.1f%%\n",
              ok + failed, ok, failed, nodes, loss * 100.0);
  std::printf("captured %zu spans in %zu traces, %zu wire messages, "
              "%zu series rows\n",
              tracer.Spans().size(), trace_ids.size(), tracer.Messages().size(),
              sampler.rows().size());
  std::printf("%s\n", system.metrics().Summary().c_str());

  if (!obs::PerfettoExporter::WriteFile(tracer, trace_path) ||
      !sampler.WriteCsv(series_path) || !sampler.WriteJsonl(jsonl_path)) {
    std::fprintf(stderr, "failed to write export files\n");
    return 1;
  }
  std::printf("wrote %s (open at https://ui.perfetto.dev), %s, %s\n",
              trace_path.c_str(), series_path.c_str(), jsonl_path.c_str());
  return 0;
}
