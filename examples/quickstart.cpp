// Quickstart: build a small traceable network, move one tagged object
// through it, and ask the two MOODS questions — TR(o) "where has it been?"
// and L(o, now) "where is it?".
//
//   ./quickstart [--nodes=16] [--mode=group|individual]

#include <cstdio>

#include "peertrack.hpp"
#include "util/config.hpp"

using namespace peertrack;

int main(int argc, char** argv) {
  const auto cli = util::Config::FromArgs(argc, argv);
  const std::size_t nodes = cli.GetUInt("nodes", 16);

  tracking::SystemConfig config;
  config.tracker.mode = cli.GetString("mode", "group") == "individual"
                            ? tracking::IndexingMode::kIndividual
                            : tracking::IndexingMode::kGroup;
  config.tracker.window.tmax_ms = 200.0;

  // One call stands up the whole stack: simulator, 5 ms network, converged
  // Chord ring, and a tracker (organization) per node.
  tracking::TrackingSystem system(nodes, config);
  std::printf("network up: %zu organizations, prefix length Lp=%u, mode=%s\n",
              system.NodeCount(), system.CurrentLp(),
              config.tracker.mode == tracking::IndexingMode::kGroup ? "group"
                                                                    : "individual");

  // A pallet of paper towels gets an EPC tag and moves factory -> port ->
  // distribution center -> store.
  const moods::Object pallet("urn:epc:id:sgtin:4012345.098765.1");
  const std::vector<std::uint32_t> route = {0, 3, 7, 12};
  const char* stops[] = {"factory", "port", "distribution center", "store"};
  workload::InjectTrajectory(system, pallet.Key(), route, /*start=*/10.0,
                             /*step_ms=*/60'000.0);
  system.Run();               // Deliver captures, index updates, IOP links.
  system.FlushAllWindows();   // Close any open capture windows.

  // TR(o): full trace, asked from an organization that never saw the pallet.
  system.TraceQuery(/*origin=*/nodes - 1, pallet.Key(),
                    [&](tracking::TrackerNode::TraceResult result) {
                      std::printf("\ntrace query (%s): %s, %.1f ms simulated\n",
                                  pallet.RawId().c_str(), result.ok ? "ok" : "FAILED",
                                  result.DurationMs());
                      for (std::size_t i = 0; i < result.path.size(); ++i) {
                        const auto index =
                            system.NodeIndexOfActor(result.path[i].node.actor);
                        std::printf("  t=%8.0f ms  org-%u (%s)\n",
                                    result.path[i].arrived, index,
                                    i < 4 ? stops[i] : "?");
                      }
                    });
  system.Run();

  // L(o, now): latest location via the gateway index.
  system.LocateQuery(/*origin=*/1, pallet.Key(),
                     [&](tracking::TrackerNode::LocateResult result) {
                       if (result.ok) {
                         std::printf("\nlocate query: object is at org-%u "
                                     "(arrived t=%.0f ms), %.1f ms simulated\n",
                                     system.NodeIndexOfActor(result.node.actor),
                                     result.arrived, result.DurationMs());
                       } else {
                         std::printf("\nlocate query FAILED\n");
                       }
                     });
  system.Run();

  std::printf("\nnetwork messages exchanged in total: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(system.metrics().TotalMessages()),
              static_cast<unsigned long long>(system.metrics().TotalBytes()));
  return 0;
}
