#include "hash/keyspace.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace peertrack::hash {
namespace {

TEST(Keyspace, ObjectAndNodeKeysAreSha1) {
  // Same input through either derivation lands on the same ring point —
  // objects and nodes share the identifier space (paper Section III).
  EXPECT_EQ(ObjectKey("urn:epc:1"), NodeKey("urn:epc:1"));
  EXPECT_EQ(ObjectKey("abc"),
            UInt160::FromHex("a9993e364706816aba3e25717850c26c9cd0d89d"));
}

TEST(Prefix, StringRoundTrip) {
  const Prefix p = Prefix::FromString("10110");
  EXPECT_EQ(p.length, 5u);
  EXPECT_EQ(p.bits, 0b10110u);
  EXPECT_EQ(p.ToString(), "10110");
  EXPECT_EQ(Prefix::FromString("").length, 0u);
  EXPECT_EQ(Prefix::FromString("").ToString(), "");
}

TEST(Prefix, OfKeyMatchesBitString) {
  const auto key = ObjectKey("some-object");
  for (unsigned length : {1u, 4u, 9u, 16u, 33u, 64u}) {
    const Prefix p = Prefix::OfKey(key, length);
    EXPECT_EQ(p.ToString(), PrefixString(key, length)) << "length=" << length;
    EXPECT_TRUE(p.Matches(key));
  }
}

TEST(Prefix, LengthClampsTo64) {
  const auto key = ObjectKey("x");
  EXPECT_EQ(Prefix::OfKey(key, 200).length, 64u);
}

TEST(Prefix, ParentChildRelations) {
  const Prefix p = Prefix::FromString("0110");
  EXPECT_EQ(p.Parent().ToString(), "011");
  EXPECT_EQ(p.Child(false).ToString(), "01100");
  EXPECT_EQ(p.Child(true).ToString(), "01101");
  EXPECT_EQ(p.Child(true).Parent(), p);
}

TEST(Prefix, MatchesIsPrefixRelation) {
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto key = ObjectKey("obj-" + std::to_string(i));
    const Prefix p = Prefix::OfKey(key, 12);
    EXPECT_TRUE(p.Matches(key));
    EXPECT_TRUE(p.Parent().Matches(key));
    // The sibling prefix never matches.
    Prefix sibling = p;
    sibling.bits ^= 1;
    EXPECT_FALSE(sibling.Matches(key));
  }
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  const Prefix root = Prefix::FromString("");
  EXPECT_TRUE(root.Matches(ObjectKey("a")));
  EXPECT_TRUE(root.Matches(ObjectKey("b")));
}

TEST(Keyspace, GroupKeyDependsOnTextualPrefix) {
  // hash("00") != hash("000"): groups of different lengths are distinct
  // gateway points even when the bits agree (paper Section IV-A2 example).
  EXPECT_NE(GroupKey(Prefix::FromString("00")), GroupKey(Prefix::FromString("000")));
  EXPECT_EQ(GroupKey(Prefix::FromString("01")),
            UInt160::FromDigest(Sha1Hash("01")));
}

TEST(Keyspace, KeysDisperseUniformly) {
  // Hash dispersion underpins Eq. 4's uniformity assumption: bucket 10k
  // object keys by their top 4 bits and expect near-uniform counts.
  constexpr int kBuckets = 16;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto key = ObjectKey("epc:" + std::to_string(i));
    ++counts[key.PrefixBits(4)];
  }
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0 / kBuckets, 10000.0 / kBuckets * 0.25);
  }
}

TEST(Keyspace, PrefixHasherDisperses) {
  PrefixHasher hasher;
  std::unordered_set<std::size_t> seen;
  for (unsigned length = 1; length <= 16; ++length) {
    for (std::uint64_t bits = 0; bits < (1u << std::min(length, 6u)); ++bits) {
      seen.insert(hasher(Prefix{bits, length}));
    }
  }
  EXPECT_GT(seen.size(), 100u);
}

}  // namespace
}  // namespace peertrack::hash
