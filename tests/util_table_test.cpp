#include "util/table.hpp"

#include <gtest/gtest.h>

namespace peertrack::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("|----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.RowCount(), 1u);
  EXPECT_FALSE(t.Render().empty());
}

TEST(Table, NumericRowPrecision) {
  Table t({"x"});
  t.AddNumericRow({3.14159}, 3);
  EXPECT_NE(t.Render().find("3.142"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"col"});
  t.AddRow({"short"});
  t.AddRow({"a-much-longer-cell"});
  const std::string out = t.Render();
  // All lines equal length.
  std::size_t expected = out.find('\n');
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

}  // namespace
}  // namespace peertrack::util
