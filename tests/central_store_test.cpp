#include "central/central_tracker.hpp"

#include <gtest/gtest.h>

#include "hash/keyspace.hpp"
#include "util/rng.hpp"

namespace peertrack::central {
namespace {

hash::UInt160 Epc(int i) { return hash::ObjectKey("cs-epc-" + std::to_string(i)); }

TEST(EventStore, IntervalsCloseOnMovement) {
  EventStore store;
  store.RecordArrival(Epc(1), 3, 10.0);
  store.RecordArrival(Epc(1), 7, 50.0);
  store.RecordArrival(Epc(1), 2, 90.0);

  QueryCost cost;
  const auto rows = store.Trace(Epc(1), QueryPlan::kIndex, cost);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].location, 3u);
  EXPECT_DOUBLE_EQ(rows[0].t_start, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].t_end, 50.0);
  EXPECT_DOUBLE_EQ(rows[1].t_end, 90.0);
  EXPECT_DOUBLE_EQ(rows[2].t_end, kOpenEnd);  // Still there.
}

TEST(EventStore, ScanAndIndexPlansAgree) {
  EventStore store;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    store.RecordArrival(Epc(static_cast<int>(rng.NextBelow(20))),
                        static_cast<std::uint32_t>(rng.NextBelow(8)),
                        static_cast<double>(i));
  }
  for (int epc = 0; epc < 20; ++epc) {
    QueryCost scan_cost;
    QueryCost index_cost;
    const auto scan_rows = store.Trace(Epc(epc), QueryPlan::kScan, scan_cost);
    const auto index_rows = store.Trace(Epc(epc), QueryPlan::kIndex, index_cost);
    ASSERT_EQ(scan_rows.size(), index_rows.size()) << epc;
    for (std::size_t i = 0; i < scan_rows.size(); ++i) {
      EXPECT_EQ(scan_rows[i].location, index_rows[i].location);
      EXPECT_DOUBLE_EQ(scan_rows[i].t_start, index_rows[i].t_start);
    }
  }
}

TEST(EventStore, LocateSemanticsMatchIntervals) {
  EventStore store;
  store.RecordArrival(Epc(1), 3, 10.0);
  store.RecordArrival(Epc(1), 7, 50.0);
  QueryCost cost;
  EXPECT_FALSE(store.Locate(Epc(1), 5.0, QueryPlan::kIndex, cost).has_value());
  EXPECT_EQ(store.Locate(Epc(1), 10.0, QueryPlan::kIndex, cost).value(), 3u);
  EXPECT_EQ(store.Locate(Epc(1), 49.0, QueryPlan::kIndex, cost).value(), 3u);
  EXPECT_EQ(store.Locate(Epc(1), 50.0, QueryPlan::kIndex, cost).value(), 7u);
  EXPECT_EQ(store.Locate(Epc(1), 1e9, QueryPlan::kIndex, cost).value(), 7u);
  EXPECT_FALSE(store.Locate(Epc(2), 10.0, QueryPlan::kIndex, cost).has_value());
}

TEST(EventStore, ScanCostGrowsWithTableIndexCostDoesNot) {
  EventStore small;
  EventStore big;
  // Realistic trace lengths: ~10 rows per object in both stores.
  for (int i = 0; i < 500; ++i) {
    small.RecordArrival(Epc(i % 50), 0, static_cast<double>(i));
  }
  for (int i = 0; i < 50000; ++i) {
    big.RecordArrival(Epc(i % 5000), 0, static_cast<double>(i));
  }
  QueryCost small_scan, big_scan, small_index, big_index;
  small.Trace(Epc(1), QueryPlan::kScan, small_scan);
  big.Trace(Epc(1), QueryPlan::kScan, big_scan);
  small.Trace(Epc(1), QueryPlan::kIndex, small_index);
  big.Trace(Epc(1), QueryPlan::kIndex, big_index);

  // Scan: 100x more rows -> ~100x more pages.
  EXPECT_GT(big_scan.pages.page_reads, 50 * small_scan.pages.page_reads);
  // Index: the big store answers within a small constant factor (more
  // matching rows + one extra tree level).
  EXPECT_LT(big_index.pages.page_reads, 40 * small_index.pages.page_reads);
}

TEST(CentralTracker, TraceMatchesIngestOrder) {
  CentralTracker tracker;
  tracker.Ingest(Epc(9), 4, 10.0);
  tracker.Ingest(Epc(9), 6, 20.0);
  const auto answer = tracker.Trace(Epc(9));
  ASSERT_EQ(answer.rows.size(), 2u);
  EXPECT_EQ(answer.rows[0].location, 4u);
  EXPECT_EQ(answer.rows[1].location, 6u);
  EXPECT_GT(answer.duration_ms, 0.0);
}

TEST(CentralTracker, ScanPlanSlowerThanIndexPlanOnBigStore) {
  CentralTracker::Options options;
  options.plan = QueryPlan::kScan;
  CentralTracker tracker(options);
  // ~10-row traces per object, as in the paper's workload.
  for (int i = 0; i < 30000; ++i) {
    tracker.Ingest(Epc(i % 3000), static_cast<std::uint32_t>(i % 16),
                   static_cast<double>(i));
  }
  const auto scan = tracker.Trace(Epc(5));
  tracker.SetPlan(QueryPlan::kIndex);
  const auto index = tracker.Trace(Epc(5));
  EXPECT_EQ(scan.rows.size(), index.rows.size());
  EXPECT_GT(scan.duration_ms, 5.0 * index.duration_ms);
}

TEST(CostModel, LinearInPageCounts) {
  CostModel model;
  QueryCost cost;
  cost.pages.page_reads = 1000;
  cost.pages.rows_touched = 0;
  const double base = model.QueryMs(cost);
  cost.pages.page_reads = 2000;
  EXPECT_NEAR(model.QueryMs(cost), 2.0 * base, 1e-9);
}

TEST(EventStore, NoIndexModeStillAnswersViaScan) {
  EventStore::Options options;
  options.maintain_index = false;
  EventStore store(options);
  store.RecordArrival(Epc(1), 2, 10.0);
  QueryCost cost;
  const auto rows = store.Trace(Epc(1), QueryPlan::kIndex, cost);  // Falls back.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].location, 2u);
}

}  // namespace
}  // namespace peertrack::central
