#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace peertrack::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 40 + 2; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 200; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

TEST(ThreadPool, MoveOnlyTaskState) {
  ThreadPool pool(1);
  auto data = std::make_unique<int>(99);
  auto f = pool.Submit([owned = std::move(data)] { return *owned; });
  EXPECT_EQ(f.get(), 99);
}

TEST(ThreadPool, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.ThreadCount(), 1u);
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

}  // namespace
}  // namespace peertrack::util
