// Gateway-index replication (extension): queries survive gateway crashes.
//
// Without replication, a crashed gateway takes its index entries with it
// (the paper's Chord substrate does not replicate) and locate queries for
// the affected keys fail. With replication, every index update is mirrored
// to the gateway's ring successor — which is precisely the node that owns
// the key range after the crash — so queries fall through to the replica.

#include <gtest/gtest.h>

#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

SystemConfig ReplicationConfig(IndexingMode mode, bool replicate) {
  SystemConfig config;
  config.tracker.mode = mode;
  config.tracker.window.tmax_ms = 100.0;
  config.tracker.replicate_index = replicate;
  config.tracker.query_timeout_ms = 5000.0;
  config.seed = 0x4e91ULL;
  return config;
}

/// The node currently acting as gateway for `object` under `mode`.
std::size_t GatewayIndexOf(TrackingSystem& system, const hash::UInt160& object,
                           IndexingMode mode) {
  const chord::Key target =
      mode == IndexingMode::kIndividual
          ? object
          : hash::GroupKey(hash::Prefix::OfKey(object, system.CurrentLp()));
  chord::ChordNode* owner = system.ring().ExpectedOwner(target);
  return system.NodeIndexOfActor(owner->Self().actor);
}

class ReplicationModes : public ::testing::TestWithParam<IndexingMode> {};

TEST_P(ReplicationModes, LocateSurvivesGatewayCrashWithReplication) {
  TrackingSystem system(16, ReplicationConfig(GetParam(), /*replicate=*/true));
  const auto object = hash::ObjectKey("epc:replicated");
  workload::InjectTrajectory(system, object, {2, 9}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  const std::size_t gateway = GatewayIndexOf(system, object, GetParam());
  system.Tracker(gateway).chord().Crash();
  system.ring().OracleBootstrap();  // Survivors re-converge.

  std::size_t origin = (gateway + 1) % system.NodeCount();
  bool done = false;
  system.LocateQuery(origin, object, [&](TrackerNode::LocateResult result) {
    EXPECT_TRUE(result.ok) << "replica should answer after gateway crash";
    if (result.ok) {
      EXPECT_EQ(system.NodeIndexOfActor(result.node.actor), 9u);
    }
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(system.metrics().Counter("track.replica_hit") +
                system.metrics().ForType("track.replica").count,
            0u);
}

TEST_P(ReplicationModes, LocateFailsAfterCrashWithoutReplication) {
  TrackingSystem system(16, ReplicationConfig(GetParam(), /*replicate=*/false));
  const auto object = hash::ObjectKey("epc:unreplicated");
  workload::InjectTrajectory(system, object, {2, 9}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  const std::size_t gateway = GatewayIndexOf(system, object, GetParam());
  // Only meaningful when the gateway is a third party (the data nodes keep
  // their IOP regardless).
  system.Tracker(gateway).chord().Crash();
  system.ring().OracleBootstrap();

  std::size_t origin = (gateway + 1) % system.NodeCount();
  bool done = false;
  system.LocateQuery(origin, object, [&](TrackerNode::LocateResult result) {
    EXPECT_FALSE(result.ok) << "index entries died with the gateway";
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplicationModes,
                         ::testing::Values(IndexingMode::kIndividual,
                                           IndexingMode::kGroup));

TEST(Replication, ReplicaEntriesAccumulateAtSuccessors) {
  TrackingSystem system(16, ReplicationConfig(IndexingMode::kIndividual, true));
  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 50;
  params.move_fraction = 0.2;
  params.trace_length = 3;
  workload::ExecuteScenario(system, params, 3);

  std::size_t total_replicas = 0;
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    total_replicas += system.Tracker(i).ReplicaEntries();
  }
  // Every object indexed somewhere must also exist as a replica somewhere.
  EXPECT_GE(total_replicas, 16u * 50u);
}

TEST(Replication, CostIsBoundedPerIndexBatchAndTarget) {
  // Replication adds at most one request + one ack per index update batch
  // per replica target (R targets), plus debounced anti-entropy rounds.
  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 100;
  params.move_fraction = 0.0;
  params.trace_length = 1;

  TrackingSystem plain(16, ReplicationConfig(IndexingMode::kGroup, false));
  const auto base = workload::ExecuteScenario(plain, params, 3);

  TrackingSystem replicated(16, ReplicationConfig(IndexingMode::kGroup, true));
  const auto with = workload::ExecuteScenario(replicated, params, 3);

  const std::uint64_t groups =
      replicated.metrics().Counter("track.group_handled");
  const std::uint64_t anti_entropy =
      replicated.metrics().Counter("track.anti_entropy");
  const std::uint64_t r = replicated.config().tracker.replication_factor;
  EXPECT_LE(with.indexing_messages,
            base.indexing_messages + 2 * r * (groups + anti_entropy));
  EXPECT_GT(with.indexing_messages, base.indexing_messages);
}

}  // namespace
}  // namespace peertrack::tracking
