// Flooding-baseline query engine: correctness and cost characteristics.

#include <gtest/gtest.h>

#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

SystemConfig FloodConfig() {
  SystemConfig config;
  config.tracker.mode = IndexingMode::kIndividual;
  config.seed = 0xf100dULL;
  return config;
}

TEST(Flooding, RecoversFullTrajectory) {
  TrackingSystem system(12, FloodConfig());
  const auto object = hash::ObjectKey("epc:flooded");
  workload::InjectTrajectory(system, object, {2, 7, 4}, 10.0, 500.0);
  system.Run();

  bool done = false;
  system.FloodTraceQuery(0, object, [&](FloodingQueryEngine::Result result) {
    ASSERT_TRUE(result.ok);
    ASSERT_EQ(result.path.size(), 3u);
    EXPECT_EQ(system.NodeIndexOfActor(result.path[0].first.actor), 2u);
    EXPECT_EQ(system.NodeIndexOfActor(result.path[1].first.actor), 7u);
    EXPECT_EQ(system.NodeIndexOfActor(result.path[2].first.actor), 4u);
    EXPECT_DOUBLE_EQ(result.path[0].second, 10.0);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(Flooding, UnknownObjectReportsNotOk) {
  TrackingSystem system(8, FloodConfig());
  system.Run();
  bool done = false;
  system.FloodTraceQuery(3, hash::ObjectKey("epc:nobody"),
                         [&](FloodingQueryEngine::Result result) {
                           EXPECT_FALSE(result.ok);
                           EXPECT_TRUE(result.path.empty());
                           done = true;
                         });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(Flooding, CostsLinearInNetworkSize) {
  // 2(N-1) messages per query regardless of trace length.
  for (const std::size_t n : {8u, 16u, 32u}) {
    TrackingSystem system(n, FloodConfig());
    const auto object = hash::ObjectKey("epc:costly");
    workload::InjectTrajectory(system, object, {1, 2}, 10.0, 500.0);
    system.Run();
    system.metrics().Reset();

    std::size_t messages = 0;
    system.FloodTraceQuery(0, object, [&](FloodingQueryEngine::Result result) {
      messages = result.messages;
    });
    system.Run();
    EXPECT_EQ(messages, 2 * (n - 1)) << "n=" << n;
    EXPECT_EQ(system.metrics().TotalMessages(), 2 * (n - 1));
  }
}

TEST(Flooding, AgreesWithIopTraceQuery) {
  TrackingSystem system(16, FloodConfig());
  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 30;
  params.move_fraction = 0.3;
  params.trace_length = 5;
  const auto scenario = workload::ExecuteScenario(system, params, 9);

  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto& object =
        scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];

    std::vector<std::pair<moods::NodeIndex, double>> via_iop;
    system.TraceQuery(1, object, [&](TrackerNode::TraceResult result) {
      ASSERT_TRUE(result.ok);
      for (const auto& step : result.path) {
        via_iop.emplace_back(system.NodeIndexOfActor(step.node.actor), step.arrived);
      }
    });
    system.Run();

    std::vector<std::pair<moods::NodeIndex, double>> via_flood;
    system.FloodTraceQuery(1, object, [&](FloodingQueryEngine::Result result) {
      ASSERT_TRUE(result.ok);
      for (const auto& [node, arrived] : result.path) {
        via_flood.emplace_back(system.NodeIndexOfActor(node.actor), arrived);
      }
    });
    system.Run();

    EXPECT_EQ(via_iop, via_flood) << object.ToShortHex();
  }
}

TEST(Flooding, SingleNodeNetworkAnswersLocally) {
  TrackingSystem system(1, FloodConfig());
  const auto object = hash::ObjectKey("epc:solo-flood");
  system.CaptureAt(0, object, 10.0);
  system.Run();
  bool done = false;
  system.FloodTraceQuery(0, object, [&](FloodingQueryEngine::Result result) {
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.messages, 0u);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace peertrack::tracking
