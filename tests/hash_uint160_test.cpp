#include "hash/uint160.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace peertrack::hash {
namespace {

UInt160 RandomKey(util::Rng& rng) {
  UInt160::Words words;
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
  return UInt160(words);
}

TEST(UInt160, HexRoundTrip) {
  const auto id = UInt160::FromHex("00112233445566778899aabbccddeeff01234567");
  EXPECT_EQ(id.ToHex(), "00112233445566778899aabbccddeeff01234567");
  EXPECT_EQ(id.ToShortHex(), "0011223344");
}

TEST(UInt160, ShortHexRightAligned) {
  const auto id = UInt160::FromHex("ff");
  EXPECT_EQ(id, UInt160(0xff));
  EXPECT_EQ(UInt160::FromHex("1").ToHex().back(), '1');
}

TEST(UInt160, InvalidHexIsZero) {
  EXPECT_TRUE(UInt160::FromHex("zzzz").IsZero());
}

TEST(UInt160, AdditionWrapsModulo2Pow160) {
  EXPECT_EQ(UInt160::Max() + UInt160(1), UInt160::Zero());
  EXPECT_EQ(UInt160(1) + UInt160(2), UInt160(3));
  // Carry propagation across limbs.
  const auto low_max = UInt160::FromHex("00000000000000000000000000000000ffffffff");
  const auto expect = UInt160::FromHex("0000000000000000000000000000000100000000");
  EXPECT_EQ(low_max + UInt160(1), expect);
}

TEST(UInt160, SubtractionWraps) {
  EXPECT_EQ(UInt160::Zero() - UInt160(1), UInt160::Max());
  EXPECT_EQ(UInt160(5) - UInt160(3), UInt160(2));
}

TEST(UInt160, AddSubInverse) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = RandomKey(rng);
    const auto b = RandomKey(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(UInt160, Pow2) {
  EXPECT_EQ(UInt160::Pow2(0), UInt160(1));
  EXPECT_EQ(UInt160::Pow2(33), UInt160(1ULL << 33));
  EXPECT_EQ(UInt160::Pow2(159).ToHex()[0], '8');
  EXPECT_TRUE(UInt160::Pow2(160).IsZero());
}

TEST(UInt160, BitFromMsb) {
  const auto top = UInt160::Pow2(159);
  EXPECT_TRUE(top.BitFromMsb(0));
  EXPECT_FALSE(top.BitFromMsb(1));
  const auto one = UInt160(1);
  EXPECT_TRUE(one.BitFromMsb(159));
  EXPECT_FALSE(one.BitFromMsb(158));
}

TEST(UInt160, PrefixBits) {
  const auto id = UInt160::FromHex("f000000000000000000000000000000000000000");
  EXPECT_EQ(id.PrefixBits(4), 0xFu);
  EXPECT_EQ(id.PrefixBits(8), 0xF0u);
  EXPECT_EQ(id.PrefixBits(0), 0u);
  const auto mixed = UInt160::FromHex("abcdef0123456789abcdef0123456789abcdef01");
  EXPECT_EQ(mixed.PrefixBits(16), 0xabcdu);
  EXPECT_EQ(mixed.PrefixBits(64), 0xabcdef0123456789ULL);
}

TEST(UInt160, OpenIntervalNoWrap) {
  const UInt160 lo(10), hi(20);
  EXPECT_TRUE(UInt160(15).InOpenInterval(lo, hi));
  EXPECT_FALSE(UInt160(10).InOpenInterval(lo, hi));
  EXPECT_FALSE(UInt160(20).InOpenInterval(lo, hi));
  EXPECT_FALSE(UInt160(25).InOpenInterval(lo, hi));
}

TEST(UInt160, OpenIntervalWrapping) {
  // Interval wrapping through zero: (max-5, 5).
  const UInt160 lo = UInt160::Max() - UInt160(5);
  const UInt160 hi(5);
  EXPECT_TRUE(UInt160::Max().InOpenInterval(lo, hi));
  EXPECT_TRUE(UInt160(0).InOpenInterval(lo, hi));
  EXPECT_TRUE(UInt160(4).InOpenInterval(lo, hi));
  EXPECT_FALSE(UInt160(5).InOpenInterval(lo, hi));
  EXPECT_FALSE(UInt160(100).InOpenInterval(lo, hi));
}

TEST(UInt160, DegenerateIntervalIsWholeRing) {
  const UInt160 x(42);
  EXPECT_TRUE(UInt160(7).InOpenInterval(x, x));
  EXPECT_FALSE(x.InOpenInterval(x, x));
  EXPECT_TRUE(x.InHalfOpenLoHi(x, x));
  EXPECT_TRUE(UInt160(7).InHalfOpenLoHi(x, x));
}

TEST(UInt160, HalfOpenIncludesHighEnd) {
  const UInt160 lo(10), hi(20);
  EXPECT_TRUE(UInt160(20).InHalfOpenLoHi(lo, hi));
  EXPECT_FALSE(UInt160(10).InHalfOpenLoHi(lo, hi));
  // Wrapping variant.
  const UInt160 wlo = UInt160::Max() - UInt160(1);
  EXPECT_TRUE(UInt160(3).InHalfOpenLoHi(wlo, UInt160(3)));
  EXPECT_FALSE(UInt160(4).InHalfOpenLoHi(wlo, UInt160(3)));
}

TEST(UInt160, IntervalConsistencyProperty) {
  // For random (lo, hi, x): x in (lo,hi] iff x in (lo,hi) or x == hi.
  util::Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const auto lo = RandomKey(rng);
    const auto hi = RandomKey(rng);
    const auto x = RandomKey(rng);
    const bool open = x.InOpenInterval(lo, hi);
    const bool half = x.InHalfOpenLoHi(lo, hi);
    EXPECT_EQ(half, open || x == hi);
  }
}

TEST(UInt160, DistanceFrom) {
  EXPECT_EQ(UInt160(10).DistanceFrom(UInt160(4)), UInt160(6));
  // Distance wraps.
  EXPECT_EQ(UInt160(2).DistanceFrom(UInt160::Max()), UInt160(3));
}

TEST(UInt160, ComparisonIsBigEndianNumeric) {
  const auto small = UInt160::FromHex("0000000000000000000000000000000000000001");
  const auto big = UInt160::FromHex("8000000000000000000000000000000000000000");
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, UInt160(1));
}

TEST(UInt160, Fold64Disperses) {
  util::Rng rng(31);
  std::set<std::uint64_t> folds;
  for (int i = 0; i < 1000; ++i) folds.insert(RandomKey(rng).Fold64());
  EXPECT_EQ(folds.size(), 1000u);
}

}  // namespace
}  // namespace peertrack::hash
