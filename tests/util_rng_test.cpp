#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace peertrack::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
  EXPECT_EQ(rng.NextInRange(5, 4), 5);  // Degenerate range clamps.
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(rate);
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.1);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  constexpr int kSamples = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto index : sample) EXPECT_LT(index, 100u);
  // k > n clamps.
  EXPECT_EQ(rng.SampleIndices(5, 10).size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(37);
  int truths = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++truths;
  }
  EXPECT_NEAR(truths / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

}  // namespace
}  // namespace peertrack::util
