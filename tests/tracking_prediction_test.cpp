// Movement prediction (the paper's future-work extension).

#include <gtest/gtest.h>

#include "tracking/prediction.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

TEST(Predictor, LearnsTransitionFrequencies) {
  MovementPredictor predictor;
  // 3 of 4 trips 1->2, 1 of 4 trips 1->3.
  predictor.ObserveSequence({1, 2});
  predictor.ObserveSequence({1, 2});
  predictor.ObserveSequence({1, 2});
  predictor.ObserveSequence({1, 3});

  EXPECT_DOUBLE_EQ(predictor.TransitionProbability(1, 2), 0.75);
  EXPECT_DOUBLE_EQ(predictor.TransitionProbability(1, 3), 0.25);
  EXPECT_DOUBLE_EQ(predictor.TransitionProbability(1, 9), 0.0);
  EXPECT_EQ(predictor.ObservedTransitions(), 4u);

  const auto predictions = predictor.NextFrom(1);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].node, 2u);
  EXPECT_GT(predictions[0].probability, predictions[1].probability);
}

TEST(Predictor, UnknownSourceGivesNothing) {
  MovementPredictor predictor;
  predictor.ObserveSequence({1, 2});
  EXPECT_TRUE(predictor.NextFrom(42).empty());
  EXPECT_DOUBLE_EQ(predictor.TransitionProbability(42, 1), 0.0);
}

TEST(Predictor, TopKLimitsResults) {
  MovementPredictor predictor;
  for (sim::ActorId next = 1; next <= 8; ++next) {
    predictor.ObserveSequence({0, next});
  }
  EXPECT_EQ(predictor.NextFrom(0, 3).size(), 3u);
  EXPECT_EQ(predictor.NextFrom(0, 0).size(), 8u);
}

TEST(Predictor, SmoothingRedistributesMass) {
  MovementPredictor plain(0.0);
  MovementPredictor smoothed(1.0);
  for (int i = 0; i < 9; ++i) {
    plain.ObserveSequence({1, 2});
    smoothed.ObserveSequence({1, 2});
  }
  plain.ObserveSequence({1, 3});
  smoothed.ObserveSequence({1, 3});

  // Smoothing pulls the dominant probability toward uniform.
  EXPECT_GT(plain.TransitionProbability(1, 2),
            smoothed.TransitionProbability(1, 2));
  EXPECT_LT(plain.TransitionProbability(1, 3),
            smoothed.TransitionProbability(1, 3));
  // And gives unseen-but-plausible transitions nonzero mass.
  EXPECT_GT(smoothed.TransitionProbability(1, 99), 0.0);
}

TEST(Predictor, DwellTimesFromTraceSteps) {
  MovementPredictor predictor;
  std::vector<TrackerNode::TraceStep> path(3);
  path[0].node = chord::NodeRef{hash::UInt160(1), 1};
  path[0].arrived = 0.0;
  path[1].node = chord::NodeRef{hash::UInt160(2), 2};
  path[1].arrived = 100.0;
  path[2].node = chord::NodeRef{hash::UInt160(3), 3};
  path[2].arrived = 400.0;
  predictor.ObserveTrace(path);

  EXPECT_DOUBLE_EQ(predictor.MeanDwellMs(1), 100.0);
  EXPECT_DOUBLE_EQ(predictor.MeanDwellMs(2), 300.0);
  EXPECT_DOUBLE_EQ(predictor.MeanDwellMs(3), 0.0);  // Terminal node: unknown.
  const auto predictions = predictor.NextFrom(1);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_DOUBLE_EQ(predictions[0].expected_dwell_ms, 100.0);
}

TEST(Predictor, EndToEndLearnsDominantRoute) {
  // Objects flow 0 -> 1 -> 2 in a tracked network; the predictor trained on
  // distributed trace-query results must recover the route.
  tracking::SystemConfig config;
  config.tracker.mode = IndexingMode::kIndividual;
  TrackingSystem system(8, config);
  std::vector<hash::UInt160> objects;
  for (int i = 0; i < 20; ++i) {
    const auto key = hash::ObjectKey("pred-" + std::to_string(i));
    objects.push_back(key);
    workload::InjectTrajectory(system, key, {0, 1, 2}, 10.0 + i, 1000.0);
  }
  system.Run();

  MovementPredictor predictor;
  for (const auto& object : objects) {
    system.TraceQuery(5, object, [&](TrackerNode::TraceResult result) {
      ASSERT_TRUE(result.ok);
      predictor.ObserveTrace(result.path);
    });
    system.Run();
  }

  const sim::ActorId node0 = system.Tracker(0).Self().actor;
  const sim::ActorId node1 = system.Tracker(1).Self().actor;
  const sim::ActorId node2 = system.Tracker(2).Self().actor;
  EXPECT_DOUBLE_EQ(predictor.TransitionProbability(node0, node1), 1.0);
  EXPECT_DOUBLE_EQ(predictor.TransitionProbability(node1, node2), 1.0);
  const auto predictions = predictor.NextFrom(node0, 1);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].node, node1);
  EXPECT_NEAR(predictions[0].expected_dwell_ms, 1000.0, 1e-6);
}

}  // namespace
}  // namespace peertrack::tracking
