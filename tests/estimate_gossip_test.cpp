#include "estimate/gossip.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace peertrack::estimate {
namespace {

struct GossipFixture {
  GossipFixture() : latency(5.0), rng(31), network(sim, latency, rng) {}
  sim::Simulator sim;
  sim::ConstantLatency latency;
  util::Rng rng;
  sim::Network network;
};

class GossipSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GossipSizes, EstimatesConvergeNearTrueSize) {
  GossipFixture f;
  const std::size_t n = GetParam();
  SizeEstimationEpoch epoch(f.network, f.rng, n);
  epoch.Start(/*round_ms=*/50.0, /*rounds=*/60);
  f.sim.Run();

  const double mean = epoch.MeanEstimate();
  EXPECT_NEAR(mean, static_cast<double>(n), 0.35 * static_cast<double>(n))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GossipSizes, ::testing::Values(8, 32, 128));

TEST(Gossip, MassIsApproximatelyConserved) {
  GossipFixture f;
  SizeEstimationEpoch epoch(f.network, f.rng, 64);
  epoch.Start(50.0, 40);
  f.sim.Run();
  // Push-pull averaging conserves the field sum (= 1) up to in-flight
  // exchanges that finished cleanly; allow a modest tolerance.
  double sum = 0.0;
  for (const double e : epoch.Estimates()) sum += 1.0 / e;
  EXPECT_NEAR(sum, 1.0, 0.5);
}

TEST(Gossip, VarianceShrinksWithRounds) {
  auto variance_after = [](std::size_t rounds) {
    GossipFixture f;
    SizeEstimationEpoch epoch(f.network, f.rng, 64);
    epoch.Start(50.0, rounds);
    f.sim.Run();
    const auto estimates = epoch.Estimates();
    double mean = 0.0;
    for (const double e : estimates) mean += e;
    mean /= static_cast<double>(estimates.size());
    double var = 0.0;
    for (const double e : estimates) var += (e - mean) * (e - mean);
    return var / static_cast<double>(estimates.size());
  };
  EXPECT_LT(variance_after(50), variance_after(5));
}

TEST(Gossip, SingleAgentEstimatesOne) {
  GossipFixture f;
  SizeEstimationEpoch epoch(f.network, f.rng, 1);
  epoch.Start(50.0, 10);
  f.sim.Run();
  EXPECT_DOUBLE_EQ(epoch.Estimates().front(), 1.0);
}

TEST(Gossip, MessagesAreCounted) {
  GossipFixture f;
  SizeEstimationEpoch epoch(f.network, f.rng, 16);
  epoch.Start(50.0, 10);
  f.sim.Run();
  EXPECT_GT(f.network.metrics().ForType("gossip.push").count, 0u);
  EXPECT_GT(f.network.metrics().ForType("gossip.pull").count, 0u);
}

}  // namespace
}  // namespace peertrack::estimate
