#include "tracking/prefix_scheme.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace peertrack::tracking {
namespace {

TEST(PrefixScheme, KnownValuesAtPaperSizes) {
  // Scheme 2 = ceil(log2 N + log2 log2 N); the paper's evaluation sizes.
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 64, 2), 9u);    // 6 + 2.58
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 128, 2), 10u);  // 7 + 2.81
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 256, 2), 11u);  // 8 + 3
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 512, 2), 13u);  // 9 + 3.17

  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogN, 512, 2), 9u);
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kTwoLogN, 512, 2), 18u);
}

TEST(PrefixScheme, LminFloorApplies) {
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogN, 2, 4), 4u);
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 0, 3), 3u);
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 1, 3), 3u);
}

TEST(PrefixScheme, MonotoneInNetworkSize) {
  for (const auto scheme : {PrefixScheme::kLogN, PrefixScheme::kLogNLogLogN,
                            PrefixScheme::kTwoLogN}) {
    unsigned previous = 0;
    for (std::size_t n = 2; n <= 4096; n *= 2) {
      const unsigned lp = PrefixLengthFor(scheme, n, 2);
      EXPECT_GE(lp, previous) << SchemeName(scheme) << " n=" << n;
      previous = lp;
    }
  }
}

TEST(PrefixScheme, SchemeOrderingHolds) {
  for (std::size_t n = 8; n <= 2048; n *= 2) {
    const unsigned s1 = PrefixLengthFor(PrefixScheme::kLogN, n, 2);
    const unsigned s2 = PrefixLengthFor(PrefixScheme::kLogNLogLogN, n, 2);
    const unsigned s3 = PrefixLengthFor(PrefixScheme::kTwoLogN, n, 2);
    EXPECT_LE(s1, s2);
    EXPECT_LE(s2, s3);
  }
}

TEST(PrefixScheme, DeltaMatchesClosedForm) {
  // Hand-check Eq. 4 for small values: n=4, m=8 -> 1-(3/4)^8.
  EXPECT_NEAR(DeltaForPrefixLength(3, 4), 1.0 - std::pow(0.75, 8), 1e-12);
  EXPECT_DOUBLE_EQ(DeltaForPrefixLength(5, 1), 1.0);
  EXPECT_DOUBLE_EQ(DeltaForPrefixLength(5, 0), 0.0);
}

TEST(PrefixScheme, Scheme2DeltaApproachesOne) {
  // The paper's claim (Eq. 5): with m = Nn log2 Nn groups, δ -> 1.
  for (std::size_t n : {64u, 128u, 256u, 512u, 4096u}) {
    const unsigned lp = PrefixLengthFor(PrefixScheme::kLogNLogLogN, n, 2);
    EXPECT_GT(DeltaForPrefixLength(lp, n), 0.99) << "n=" << n;
  }
}

TEST(PrefixScheme, Scheme1DeltaBoundedAwayFromOne) {
  // With m = Nn groups, δ -> 1 - 1/e ≈ 0.632: some nodes stay idle, which
  // is exactly the load imbalance Fig. 8a shows for Scheme 1.
  for (std::size_t n : {256u, 512u, 4096u}) {
    const unsigned lp = PrefixLengthFor(PrefixScheme::kLogN, n, 2);
    const double delta = DeltaForPrefixLength(lp, n);
    EXPECT_GT(delta, 0.5) << "n=" << n;
    EXPECT_LT(delta, 0.9) << "n=" << n;
  }
}

TEST(PrefixScheme, GroupCountStaysBelowObjectScale) {
  // 2^Lp = Nn log2 Nn is "relatively small" next to typical object volumes
  // (paper Section IV-C1).
  const unsigned lp = PrefixLengthFor(PrefixScheme::kLogNLogLogN, 512, 2);
  EXPECT_LE(1ULL << lp, 512ULL * 16ULL * 2ULL);
}

TEST(PrefixScheme, NodesUntilNextIncrementPositive) {
  const std::size_t extra = NodesUntilNextIncrement(512, 2);
  EXPECT_GT(extra, 0u);
  EXPECT_EQ(PrefixLengthFor(PrefixScheme::kLogNLogLogN, 512 + extra, 2),
            PrefixLengthFor(PrefixScheme::kLogNLogLogN, 512, 2) + 1);
}

TEST(PrefixScheme, NamesAreDistinct) {
  EXPECT_NE(SchemeName(PrefixScheme::kLogN), SchemeName(PrefixScheme::kTwoLogN));
}

}  // namespace
}  // namespace peertrack::tracking
