// Generic DHT put/get facade over the Chord overlay.

#include <gtest/gtest.h>

#include "chord/dht.hpp"

#include "hash/keyspace.hpp"
#include "chord/chord_ring.hpp"
#include "util/format.hpp"

namespace peertrack::chord {
namespace {

struct DhtFixture {
  explicit DhtFixture(std::size_t n)
      : latency(5.0), rng(21), network(sim, latency, rng), ring(network) {
    for (std::size_t i = 0; i < n; ++i) ring.AddNode(util::Format("kv-{}", i));
    ring.OracleBootstrap();
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<DhtNode>(ring.Node(i)));
    }
  }

  sim::Simulator sim;
  sim::ConstantLatency latency;
  util::Rng rng;
  sim::Network network;
  ChordRing ring;
  std::vector<std::unique_ptr<DhtNode>> nodes;
};

Key KeyOf(const std::string& name) { return hash::ObjectKey(name); }

TEST(Dht, PutThenGetFromAnyNode) {
  DhtFixture f(16);
  bool stored = false;
  f.nodes[0]->Put(KeyOf("color"), "teal", [&](bool ok) { stored = ok; });
  f.sim.Run();
  ASSERT_TRUE(stored);

  for (const std::size_t reader : {std::size_t{3}, std::size_t{9}, std::size_t{15}}) {
    bool done = false;
    f.nodes[reader]->Get(KeyOf("color"), [&](bool found, const std::string& value) {
      EXPECT_TRUE(found);
      EXPECT_EQ(value, "teal");
      done = true;
    });
    f.sim.Run();
    ASSERT_TRUE(done) << "reader " << reader;
  }
}

TEST(Dht, MissingKeyReportsNotFound) {
  DhtFixture f(8);
  bool done = false;
  f.nodes[2]->Get(KeyOf("nothing"), [&](bool found, const std::string& value) {
    EXPECT_FALSE(found);
    EXPECT_TRUE(value.empty());
    done = true;
  });
  f.sim.Run();
  EXPECT_TRUE(done);
}

TEST(Dht, OverwriteReplacesValue) {
  DhtFixture f(8);
  f.nodes[0]->Put(KeyOf("k"), "v1");
  f.sim.Run();
  f.nodes[5]->Put(KeyOf("k"), "v2");
  f.sim.Run();
  bool done = false;
  f.nodes[1]->Get(KeyOf("k"), [&](bool found, const std::string& value) {
    EXPECT_TRUE(found);
    EXPECT_EQ(value, "v2");
    done = true;
  });
  f.sim.Run();
  EXPECT_TRUE(done);
}

TEST(Dht, ValuesLandOnOracleOwner) {
  DhtFixture f(12);
  for (int i = 0; i < 40; ++i) {
    f.nodes[static_cast<std::size_t>(i) % 12]->Put(
        KeyOf("item-" + std::to_string(i)), std::to_string(i));
  }
  f.sim.Run();
  for (int i = 0; i < 40; ++i) {
    const Key key = KeyOf("item-" + std::to_string(i));
    const NodeRef owner = f.ring.ExpectedSuccessor(key);
    const auto owner_index = [&] {
      for (std::size_t n = 0; n < f.nodes.size(); ++n) {
        if (f.nodes[n]->chord().Self().actor == owner.actor) return n;
      }
      return std::size_t{999};
    }();
    ASSERT_LT(owner_index, f.nodes.size());
    EXPECT_TRUE(f.nodes[owner_index]->LocalValue(key).has_value()) << i;
  }
}

TEST(Dht, GracefulLeaveMigratesValues) {
  DhtFixture f(10);
  std::vector<Key> keys;
  for (int i = 0; i < 60; ++i) {
    keys.push_back(KeyOf("migrate-" + std::to_string(i)));
    f.nodes[0]->Put(keys.back(), "payload-" + std::to_string(i));
  }
  f.sim.Run();

  // Leave with the most-loaded node so migration definitely happens.
  std::size_t loaded = 0;
  for (std::size_t n = 1; n < f.nodes.size(); ++n) {
    if (f.nodes[n]->StoredEntries() > f.nodes[loaded]->StoredEntries()) loaded = n;
  }
  ASSERT_GT(f.nodes[loaded]->StoredEntries(), 0u);
  f.ring.Node(loaded).Leave();
  f.sim.Run();
  f.ring.OracleBootstrap();  // Re-converge survivor routing state.

  // Every key must still be retrievable from a surviving node.
  std::size_t alive_reader = loaded == 0 ? 1 : 0;
  for (const auto& key : keys) {
    bool done = false;
    f.nodes[alive_reader]->Get(key, [&](bool found, const std::string&) {
      EXPECT_TRUE(found) << key.ToShortHex();
      done = true;
    });
    f.sim.Run();
    ASSERT_TRUE(done);
  }
}

}  // namespace
}  // namespace peertrack::chord
