#include "tracking/grouping.hpp"

#include <gtest/gtest.h>

#include "hash/keyspace.hpp"

namespace peertrack::tracking {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("w-obj-" + std::to_string(i)); }

CaptureWindow::Limits Limits(double tmax, std::size_t nmax) {
  CaptureWindow::Limits limits;
  limits.tmax_ms = tmax;
  limits.nmax = nmax;
  return limits;
}

TEST(CaptureWindow, FullAtNmax) {
  CaptureWindow window(Limits(1000.0, 3));
  EXPECT_FALSE(window.Add(Obj(1), 10.0));
  EXPECT_FALSE(window.Add(Obj(2), 11.0));
  EXPECT_TRUE(window.Add(Obj(3), 12.0));  // Nmax reached.
  EXPECT_EQ(window.Size(), 3u);
}

TEST(CaptureWindow, DeadlineIsOpenPlusTmax) {
  CaptureWindow window(Limits(500.0, 100));
  window.Add(Obj(1), 42.0);
  EXPECT_DOUBLE_EQ(window.OpenedAt(), 42.0);
  EXPECT_DOUBLE_EQ(window.Deadline(), 542.0);
  // Later captures do not extend the deadline.
  window.Add(Obj(2), 100.0);
  EXPECT_DOUBLE_EQ(window.Deadline(), 542.0);
}

TEST(CaptureWindow, CloseGroupsByPrefix) {
  CaptureWindow window(Limits(1000.0, 100));
  constexpr unsigned kLp = 3;
  for (int i = 0; i < 64; ++i) window.Add(Obj(i), 1.0 * i);
  auto groups = window.CloseAndGroup(kLp);
  EXPECT_TRUE(window.Empty());
  EXPECT_EQ(window.WindowsClosed(), 1u);
  // Every member's hashed id must match its group prefix, and totals add up.
  std::size_t total = 0;
  for (const auto& [prefix, members] : groups) {
    EXPECT_EQ(prefix.length, kLp);
    for (const auto& [object, _] : members) {
      EXPECT_TRUE(prefix.Matches(object));
    }
    total += members.size();
  }
  EXPECT_EQ(total, 64u);
  // With 64 uniform objects and 8 possible prefixes, expect several groups.
  EXPECT_GT(groups.size(), 3u);
  EXPECT_LE(groups.size(), 8u);
}

TEST(CaptureWindow, ZeroPrefixLengthMakesOneGroup) {
  CaptureWindow window(Limits(1000.0, 100));
  for (int i = 0; i < 10; ++i) window.Add(Obj(i), 0.0);
  auto groups = window.CloseAndGroup(0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->second.size(), 10u);
}

TEST(CaptureWindow, ReopensAfterClose) {
  CaptureWindow window(Limits(100.0, 10));
  window.Add(Obj(1), 5.0);
  window.CloseAndGroup(4);
  EXPECT_TRUE(window.Empty());
  window.Add(Obj(2), 500.0);
  EXPECT_DOUBLE_EQ(window.OpenedAt(), 500.0);
  EXPECT_DOUBLE_EQ(window.Deadline(), 600.0);
}

TEST(CaptureWindow, LargePrefixSplitsToSingletons) {
  CaptureWindow window(Limits(1000.0, 100));
  for (int i = 0; i < 16; ++i) window.Add(Obj(i), 0.0);
  auto groups = window.CloseAndGroup(64);
  // 64-bit prefixes: collisions are cryptographically improbable.
  EXPECT_EQ(groups.size(), 16u);
}

}  // namespace
}  // namespace peertrack::tracking
