#include "tracking/grouping.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hash/keyspace.hpp"
#include "tracking/tracking_system.hpp"

namespace peertrack::tracking {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("w-obj-" + std::to_string(i)); }

CaptureWindow::Limits Limits(double tmax, std::size_t nmax) {
  CaptureWindow::Limits limits;
  limits.tmax_ms = tmax;
  limits.nmax = nmax;
  return limits;
}

TEST(CaptureWindow, FullAtNmax) {
  CaptureWindow window(Limits(1000.0, 3));
  EXPECT_FALSE(window.Add(Obj(1), 10.0));
  EXPECT_FALSE(window.Add(Obj(2), 11.0));
  EXPECT_TRUE(window.Add(Obj(3), 12.0));  // Nmax reached.
  EXPECT_EQ(window.Size(), 3u);
}

TEST(CaptureWindow, DeadlineIsOpenPlusTmax) {
  CaptureWindow window(Limits(500.0, 100));
  window.Add(Obj(1), 42.0);
  EXPECT_DOUBLE_EQ(window.OpenedAt(), 42.0);
  EXPECT_DOUBLE_EQ(window.Deadline(), 542.0);
  // Later captures do not extend the deadline.
  window.Add(Obj(2), 100.0);
  EXPECT_DOUBLE_EQ(window.Deadline(), 542.0);
}

TEST(CaptureWindow, CloseGroupsByPrefix) {
  CaptureWindow window(Limits(1000.0, 100));
  constexpr unsigned kLp = 3;
  for (int i = 0; i < 64; ++i) window.Add(Obj(i), 1.0 * i);
  auto groups = window.CloseAndGroup(kLp);
  EXPECT_TRUE(window.Empty());
  EXPECT_EQ(window.WindowsClosed(), 1u);
  // Every member's hashed id must match its group prefix, and totals add up.
  std::size_t total = 0;
  for (const auto& [prefix, members] : groups) {
    EXPECT_EQ(prefix.length, kLp);
    for (const auto& [object, _] : members) {
      EXPECT_TRUE(prefix.Matches(object));
    }
    total += members.size();
  }
  EXPECT_EQ(total, 64u);
  // With 64 uniform objects and 8 possible prefixes, expect several groups.
  EXPECT_GT(groups.size(), 3u);
  EXPECT_LE(groups.size(), 8u);
}

TEST(CaptureWindow, ZeroPrefixLengthMakesOneGroup) {
  CaptureWindow window(Limits(1000.0, 100));
  for (int i = 0; i < 10; ++i) window.Add(Obj(i), 0.0);
  auto groups = window.CloseAndGroup(0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->second.size(), 10u);
}

TEST(CaptureWindow, ReopensAfterClose) {
  CaptureWindow window(Limits(100.0, 10));
  window.Add(Obj(1), 5.0);
  window.CloseAndGroup(4);
  EXPECT_TRUE(window.Empty());
  window.Add(Obj(2), 500.0);
  EXPECT_DOUBLE_EQ(window.OpenedAt(), 500.0);
  EXPECT_DOUBLE_EQ(window.Deadline(), 600.0);
}

TEST(CaptureWindow, LargePrefixSplitsToSingletons) {
  CaptureWindow window(Limits(1000.0, 100));
  for (int i = 0; i < 16; ++i) window.Add(Obj(i), 0.0);
  auto groups = window.CloseAndGroup(64);
  // 64-bit prefixes: collisions are cryptographically improbable.
  EXPECT_EQ(groups.size(), 16u);
}

// --- Adaptive-window boundary behaviour through a live TrackerNode ---------
//
// The pure-state tests above pin CaptureWindow's arithmetic; these pin the
// owner's timer choreography (arm / generation guard / cancel-on-flush) at
// the exact boundaries where it historically goes wrong: a capture landing
// on the Tmax deadline tick, Nmax == 1 (every capture flushes, the timer
// must never fire a stale window), and flush-then-recapture at the same
// timestamp (the re-opened window must get its own timer).

SystemConfig WindowSystemConfig(double tmax, std::size_t nmax) {
  SystemConfig config;
  config.tracker.mode = IndexingMode::kGroup;
  config.tracker.window.tmax_ms = tmax;
  config.tracker.window.nmax = nmax;
  return config;
}

std::size_t TraceOk(TrackingSystem& system, const hash::UInt160& object) {
  std::size_t ok = 0;
  system.TraceQuery(0, object, [&](TrackerNode::TraceResult result) {
    if (result.ok) ++ok;
  });
  system.Run();
  return ok;
}

TEST(TrackerWindow, CaptureOnDeadlineTickJoinsTheClosingWindow) {
  // The second capture is scheduled (at workload setup) for exactly the
  // window's Tmax deadline. The capture event was pushed before the timer
  // (which is armed when the first capture runs), so deterministic FIFO
  // tie-breaking runs the capture first: it joins the window, then the
  // timer flushes both in a single close.
  TrackingSystem system(8, WindowSystemConfig(1000.0, 100));
  const auto first = hash::ObjectKey("deadline-a");
  const auto second = hash::ObjectKey("deadline-b");
  system.CaptureAt(1, first, 0.0);
  system.CaptureAt(1, second, 1000.0);  // Exactly OpenedAt + Tmax.
  system.Run();
  EXPECT_EQ(system.metrics().Counter("track.window_flush"), 1u);
  EXPECT_EQ(TraceOk(system, first), 1u);
  EXPECT_EQ(TraceOk(system, second), 1u);
}

TEST(TrackerWindow, NmaxOneFlushesEveryCaptureWithoutTimerFires) {
  // Nmax == 1: Add() reports full on every capture, so each flush happens
  // synchronously and the armed deadline timer must always find its
  // generation stale. A timer misfire would either flush an empty window
  // (visible as an extra window_flush) or double-report a group.
  TrackingSystem system(8, WindowSystemConfig(500.0, 1));
  std::vector<hash::UInt160> objects;
  for (int i = 0; i < 5; ++i) {
    objects.push_back(hash::ObjectKey("nmax1-" + std::to_string(i)));
    system.CaptureAt(1, objects.back(), 10.0 * (i + 1));
  }
  system.Run();
  EXPECT_EQ(system.metrics().Counter("track.window_flush"), 5u);
  for (const auto& object : objects) {
    EXPECT_EQ(TraceOk(system, object), 1u);
  }
}

TEST(TrackerWindow, FlushThenRecaptureAtSameTimestampReopensWindow) {
  // Two captures at t=10 fill an Nmax=2 window and flush it; a third
  // capture, also at t=10, must open a *fresh* window whose own deadline
  // timer (t=10+Tmax) flushes it — not be swallowed by the cancelled
  // first-window timer or flushed twice.
  TrackingSystem system(8, WindowSystemConfig(700.0, 2));
  const auto a = hash::ObjectKey("same-ts-a");
  const auto b = hash::ObjectKey("same-ts-b");
  const auto c = hash::ObjectKey("same-ts-c");
  system.CaptureAt(1, a, 10.0);
  system.CaptureAt(1, b, 10.0);  // Fills the window: synchronous flush.
  system.CaptureAt(1, c, 10.0);  // Re-opens at the same timestamp.
  system.Run();
  EXPECT_EQ(system.metrics().Counter("track.window_flush"), 2u);
  EXPECT_GE(system.simulator().Now(), 710.0);  // Second flush came from its timer.
  EXPECT_EQ(TraceOk(system, a), 1u);
  EXPECT_EQ(TraceOk(system, b), 1u);
  EXPECT_EQ(TraceOk(system, c), 1u);
}

}  // namespace
}  // namespace peertrack::tracking
