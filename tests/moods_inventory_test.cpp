// Local inventory ("what is here?") and dwell-time statistics over IOP.

#include <gtest/gtest.h>

#include <algorithm>

#include "moods/iop.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::moods {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("inv-" + std::to_string(i)); }

chord::NodeRef Node(sim::ActorId actor) {
  return chord::NodeRef{hash::UInt160(actor), actor};
}

TEST(Inventory, PresentUntilDeparture) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.SetTo(Obj(1), Node(5), 100.0);  // Left, arriving elsewhere at t=100.
  store.RecordArrival(Obj(2), 20.0);    // Never left.

  auto at_50 = store.InventoryAt(50.0);
  std::sort(at_50.begin(), at_50.end());
  EXPECT_EQ(at_50.size(), 2u);  // Both still present at t=50.

  const auto at_150 = store.InventoryAt(150.0);
  ASSERT_EQ(at_150.size(), 1u);
  EXPECT_EQ(at_150[0], Obj(2));

  EXPECT_TRUE(store.InventoryAt(5.0).empty());  // Before any arrival.
}

TEST(Inventory, RevisitCountsCurrentVisitOnly) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.SetTo(Obj(1), Node(9), 50.0);   // Gone at t=50.
  store.RecordArrival(Obj(1), 200.0);   // Back at t=200.

  EXPECT_TRUE(store.InventoryAt(100.0).empty());
  EXPECT_EQ(store.InventoryAt(250.0).size(), 1u);
}

TEST(Dwell, StatsOverCompletedVisits) {
  IopStore store;
  store.RecordArrival(Obj(1), 0.0);
  store.SetTo(Obj(1), Node(2), 100.0);   // Dwell 100.
  store.RecordArrival(Obj(2), 0.0);
  store.SetTo(Obj(2), Node(2), 300.0);   // Dwell 300.
  store.RecordArrival(Obj(3), 0.0);      // Open: excluded.

  const auto stats = store.DwellStatistics();
  EXPECT_EQ(stats.completed_visits, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 200.0);
  EXPECT_DOUBLE_EQ(stats.min_ms, 100.0);
  EXPECT_DOUBLE_EQ(stats.max_ms, 300.0);
}

TEST(Dwell, EmptyStoreIsZero) {
  IopStore store;
  const auto stats = store.DwellStatistics();
  EXPECT_EQ(stats.completed_visits, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 0.0);
}

TEST(Inventory, EndToEndMatchesOracle) {
  // After a full workload, each node's IOP inventory must equal the set of
  // objects the oracle places there "now".
  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kIndividual;
  tracking::TrackingSystem system(10, config);
  workload::MovementParams params;
  params.nodes = 10;
  params.objects_per_node = 40;
  params.move_fraction = 0.3;
  params.trace_length = 4;
  const auto scenario = workload::ExecuteScenario(system, params, 13);

  const double now = 1e12;  // Far after all movements.
  std::size_t total_inventory = 0;
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    const auto inventory = system.Tracker(i).iop().InventoryAt(now);
    total_inventory += inventory.size();
    for (const auto& object : inventory) {
      EXPECT_EQ(system.oracle().Locate(object, now), static_cast<NodeIndex>(i))
          << "object " << object.ToShortHex() << " claimed by node " << i;
    }
  }
  // Every object is somewhere, exactly once.
  EXPECT_EQ(total_inventory, scenario.object_keys.size());
}

}  // namespace
}  // namespace peertrack::moods
