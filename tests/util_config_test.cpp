#include "util/config.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace peertrack::util {
namespace {

Config Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::FromArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, KeyEqualsValue) {
  const auto c = Parse({"--nodes=512", "--alpha=0.5"});
  EXPECT_EQ(c.GetInt("nodes", 0), 512);
  EXPECT_DOUBLE_EQ(c.GetDouble("alpha", 0.0), 0.5);
}

TEST(Config, KeySpaceValue) {
  const auto c = Parse({"--nodes", "128", "--name", "run1"});
  EXPECT_EQ(c.GetInt("nodes", 0), 128);
  EXPECT_EQ(c.GetString("name", ""), "run1");
}

TEST(Config, BareFlag) {
  const auto c = Parse({"--verbose", "--quick"});
  EXPECT_TRUE(c.GetBool("verbose", false));
  EXPECT_TRUE(c.GetBool("quick", false));
  EXPECT_FALSE(c.GetBool("missing", false));
}

TEST(Config, BoolSpellings) {
  const auto c = Parse({"--a=yes", "--b=0", "--c=off", "--d=1"});
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_FALSE(c.GetBool("b", true));
  EXPECT_FALSE(c.GetBool("c", true));
  EXPECT_TRUE(c.GetBool("d", false));
}

TEST(Config, FallbacksOnMissingOrMalformed) {
  const auto c = Parse({"--n=abc"});
  EXPECT_EQ(c.GetInt("n", 7), 7);
  EXPECT_EQ(c.GetInt("absent", -1), -1);
  EXPECT_DOUBLE_EQ(c.GetDouble("absent", 2.5), 2.5);
}

TEST(Config, Positional) {
  const auto c = Parse({"input.txt", "--x=1", "more"});
  ASSERT_EQ(c.Positional().size(), 2u);
  EXPECT_EQ(c.Positional()[0], "input.txt");
  EXPECT_EQ(c.Positional()[1], "more");
}

TEST(Config, IntList) {
  const auto c = Parse({"--sizes=64,128,256,512"});
  const auto sizes = c.GetIntList("sizes", {});
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 64);
  EXPECT_EQ(sizes[3], 512);
  const auto fallback = c.GetIntList("absent", {1, 2});
  ASSERT_EQ(fallback.size(), 2u);
}

TEST(Config, FromString) {
  const auto c = Config::FromString("nodes=4, latency=5.5\nflag");
  EXPECT_EQ(c.GetInt("nodes", 0), 4);
  EXPECT_DOUBLE_EQ(c.GetDouble("latency", 0.0), 5.5);
  EXPECT_TRUE(c.GetBool("flag", false));
}

TEST(Config, FromFileAndMerge) {
  const std::string path = "/tmp/peertrack_config_test.conf";
  {
    std::ofstream out(path);
    out << "# scenario file\n"
        << "nodes=48\n"
        << "mode=group   # trailing comment\n"
        << "tmax-ms=250\n";
  }
  auto file = Config::FromFile(path);
  EXPECT_EQ(file.GetInt("nodes", 0), 48);
  EXPECT_EQ(file.GetString("mode", ""), "group");
  EXPECT_DOUBLE_EQ(file.GetDouble("tmax-ms", 0.0), 250.0);

  // CLI overlay wins.
  const auto cli = Parse({"--nodes=96"});
  file.MergeFrom(cli);
  EXPECT_EQ(file.GetInt("nodes", 0), 96);
  EXPECT_EQ(file.GetString("mode", ""), "group");  // Untouched.

  EXPECT_FALSE(Config::FromFile("/nonexistent/peertrack.conf").Has("nodes"));
}

TEST(Config, LastSetterWins) {
  auto c = Parse({"--x=1", "--x=2"});
  EXPECT_EQ(c.GetInt("x", 0), 2);
  c.Set("x", "9");
  EXPECT_EQ(c.GetInt("x", 0), 9);
}

}  // namespace
}  // namespace peertrack::util
