#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peertrack::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> observed;
  sim.ScheduleAt(5.0, [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAt(2.0, [&] { observed.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(observed, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAfter(5.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAt(3.0, [&] { fired_at = sim.Now(); });  // In the past.
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator sim;
  int count = 0;
  // Self-rescheduling chain of 10 events.
  util::UniqueFunction<void()> tick;
  std::function<void()> step = [&] {
    if (++count < 10) sim.ScheduleAfter(1.0, [&] { step(); });
  };
  sim.ScheduleAfter(1.0, [&] { step(); });
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(static_cast<double>(i), [&] { ++fired; });
  }
  const auto processed = sim.RunUntil(5.0);
  EXPECT_EQ(processed, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(100.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 100.0);
}

TEST(Simulator, MaxEventsBoundsRun) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.ScheduleAt(i, [] {});
  EXPECT_EQ(sim.Run(3), 3u);
  EXPECT_EQ(sim.PendingEvents(), 7u);
}

TEST(Simulator, ProcessedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.ScheduleAt(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.ProcessedEvents(), 4u);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAfter(-5.0, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 0.0);
}

TEST(Simulator, SurvivesWhenOnlyCancelledEventsRemain) {
  // Regression: with every pending event cancelled, Run/RunUntil used to
  // probe the queue's next time without an emptiness re-check after the
  // cancelled entries were dropped (undefined behaviour). Both loops must
  // simply see an empty queue.
  Simulator sim;
  auto only = sim.ScheduleAt(5.0, [] {});
  only.Cancel();
  EXPECT_EQ(sim.RunUntil(10.0), 0u);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
  EXPECT_EQ(sim.PendingEvents(), 0u);

  auto again = sim.ScheduleAt(20.0, [] {});
  again.Cancel();
  EXPECT_EQ(sim.Run(), 0u);
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace peertrack::sim
