// Unit tests for the typed metric instruments: counter/gauge basics,
// log-bucket boundary math, percentile estimation, and registry identity.

#include <gtest/gtest.h>

#include <cmath>

#include "obs/registry.hpp"

namespace peertrack::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
}

TEST(Histogram, BucketZeroIsUnderflow) {
  Histogram h;  // min_bound = 0.01
  EXPECT_EQ(h.BucketIndexFor(0.0), 0u);
  EXPECT_EQ(h.BucketIndexFor(0.0099), 0u);
  // A value exactly on the lower edge of bucket 1 lands in bucket 1.
  EXPECT_EQ(h.BucketIndexFor(0.01), 1u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), h.options().min_bound);
}

TEST(Histogram, BucketBoundsAreContiguousAndGeometric) {
  Histogram h;
  const double growth =
      std::exp2(1.0 / static_cast<double>(h.options().buckets_per_octave));
  for (std::size_t b = 1; b + 1 < h.BucketCount(); ++b) {
    // Each bucket starts where the previous one ends...
    EXPECT_DOUBLE_EQ(h.BucketLow(b), h.BucketHigh(b - 1)) << "bucket " << b;
    // ...and spans one growth factor.
    EXPECT_NEAR(h.BucketHigh(b) / h.BucketLow(b), growth, 1e-12) << "bucket " << b;
  }
  EXPECT_TRUE(std::isinf(h.BucketHigh(h.BucketCount() - 1)));
}

TEST(Histogram, BucketMidpointsRoundTrip) {
  Histogram h;
  for (std::size_t b = 1; b + 1 < h.BucketCount(); ++b) {
    const double mid = 0.5 * (h.BucketLow(b) + h.BucketHigh(b));
    EXPECT_EQ(h.BucketIndexFor(mid), b) << "midpoint of bucket " << b;
  }
}

TEST(Histogram, OverflowClampsToLastBucket) {
  Histogram h;
  EXPECT_EQ(h.BucketIndexFor(1e30), h.BucketCount() - 1);
  h.Add(1e30);
  EXPECT_EQ(h.BucketValue(h.BucketCount() - 1), 1u);
  EXPECT_DOUBLE_EQ(h.Max(), 1e30);
  // The overflow bucket caps interpolation at the observed max.
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 1e30);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.BucketValue(0), 1u);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
}

TEST(Histogram, PercentilesWithinBucketError) {
  // 4 buckets/octave gives growth 2^(1/4) ~ 1.19, so any percentile
  // estimate is within ~19% of the true order statistic.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.P50(), 500.0, 500.0 * 0.19);
  EXPECT_NEAR(h.P95(), 950.0, 950.0 * 0.19);
  EXPECT_NEAR(h.P99(), 990.0, 990.0 * 0.19);
  // Percentiles are monotone in p and clamped to [Min, Max].
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  EXPECT_GE(h.Percentile(0.0), h.Min());
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1000.0);
}

TEST(Histogram, SingleSamplePercentilesCollapse) {
  Histogram h;
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.P50(), 7.0);
  EXPECT_DOUBLE_EQ(h.P99(), 7.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  for (std::size_t b = 0; b < h.BucketCount(); ++b) {
    EXPECT_EQ(h.BucketValue(b), 0u);
  }
}

TEST(Histogram, CustomOptionsRespected) {
  HistogramOptions options;
  options.min_bound = 1.0;
  options.buckets_per_octave = 1;
  options.max_buckets = 8;
  Histogram h(options);
  EXPECT_EQ(h.BucketCount(), 8u);
  EXPECT_EQ(h.BucketIndexFor(0.5), 0u);
  EXPECT_EQ(h.BucketIndexFor(1.0), 1u);   // [1, 2)
  EXPECT_EQ(h.BucketIndexFor(3.0), 2u);   // [2, 4)
  EXPECT_EQ(h.BucketIndexFor(1000.0), 7u);
}

TEST(Registry, SameNameSameInstrument) {
  Registry registry;
  Counter& a = registry.GetCounter("x");
  a.Add(3);
  EXPECT_EQ(&registry.GetCounter("x"), &a);
  EXPECT_EQ(registry.CounterValue("x"), 3u);
  EXPECT_EQ(registry.CounterValue("never-created"), 0u);

  Histogram& h = registry.GetHistogram("lat");
  h.Add(1.0);
  EXPECT_EQ(&registry.GetHistogram("lat"), &h);
  EXPECT_EQ(registry.FindHistogram("lat"), &h);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
}

TEST(Registry, IterationIsSortedByName) {
  Registry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  std::string previous;
  for (const auto& [name, counter] : registry.counters()) {
    EXPECT_LT(previous, name);
    previous = name;
  }
  EXPECT_EQ(registry.counters().size(), 3u);
}

}  // namespace
}  // namespace peertrack::obs
