// Protocol-level membership: join, stabilize convergence, graceful leave,
// crash failover.

#include <gtest/gtest.h>

#include "chord/chord_ring.hpp"
#include "util/format.hpp"

namespace peertrack::chord {
namespace {

class ChurnFixture {
 public:
  ChurnFixture()
      : latency_(5.0), rng_(17), net_(sim_, latency_, rng_), ring_(net_, RingOptions()) {}

  static ChordRing::Options RingOptions() {
    ChordRing::Options options;
    options.stabilize_every_ms = 100.0;
    options.fix_fingers_every_ms = 10.0;
    return options;
  }

  void Settle(double ms) { sim_.RunUntil(sim_.Now() + ms); }

  sim::Simulator sim_;
  sim::ConstantLatency latency_;
  util::Rng rng_;
  sim::Network net_;
  ChordRing ring_;
};

TEST(ChordChurn, ProtocolBootstrapConverges) {
  ChurnFixture f;
  for (int i = 0; i < 12; ++i) f.ring_.AddNode(util::Format("boot-{}", i));
  f.ring_.ProtocolBootstrap(/*settle_ms=*/30000.0);
  EXPECT_TRUE(f.ring_.IsConverged());
}

TEST(ChordChurn, LateJoinIsAbsorbed) {
  ChurnFixture f;
  for (int i = 0; i < 8; ++i) f.ring_.AddNode(util::Format("base-{}", i));
  f.ring_.ProtocolBootstrap(20000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  f.ring_.ProtocolJoin("latecomer");
  f.Settle(20000.0);
  EXPECT_TRUE(f.ring_.IsConverged());
  EXPECT_EQ(f.ring_.AliveCount(), 9u);
}

TEST(ChordChurn, GracefulLeaveRepairsRing) {
  ChurnFixture f;
  for (int i = 0; i < 8; ++i) f.ring_.AddNode(util::Format("n-{}", i));
  f.ring_.ProtocolBootstrap(20000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  f.ring_.Node(3).Leave();
  f.Settle(20000.0);
  EXPECT_EQ(f.ring_.AliveCount(), 7u);
  EXPECT_TRUE(f.ring_.IsConverged());
}

TEST(ChordChurn, CrashFailoverViaSuccessorList) {
  ChurnFixture f;
  for (int i = 0; i < 10; ++i) f.ring_.AddNode(util::Format("c-{}", i));
  f.ring_.ProtocolBootstrap(20000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  f.ring_.Node(5).Crash();
  // Stabilization timeouts detect the dead successor and fail over.
  f.Settle(60000.0);
  EXPECT_EQ(f.ring_.AliveCount(), 9u);
  EXPECT_TRUE(f.ring_.IsConverged());
}

TEST(ChordChurn, MultipleCrashesStillConverge) {
  ChurnFixture f;
  for (int i = 0; i < 12; ++i) f.ring_.AddNode(util::Format("m-{}", i));
  f.ring_.ProtocolBootstrap(20000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  f.ring_.Node(2).Crash();
  f.ring_.Node(7).Crash();
  f.Settle(90000.0);
  EXPECT_EQ(f.ring_.AliveCount(), 10u);
  EXPECT_TRUE(f.ring_.IsConverged());
}

TEST(ChordChurn, LookupsStayCorrectAfterChurn) {
  ChurnFixture f;
  for (int i = 0; i < 10; ++i) f.ring_.AddNode(util::Format("q-{}", i));
  f.ring_.ProtocolBootstrap(20000.0);
  f.ring_.Node(4).Leave();
  f.ring_.ProtocolJoin("fresh");
  f.Settle(60000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  util::Rng keys(5);
  for (int trial = 0; trial < 20; ++trial) {
    hash::UInt160::Words words;
    for (auto& w : words) w = static_cast<std::uint32_t>(keys.Next());
    const Key key{words};
    // Pick an alive origin.
    ChordNode* origin = nullptr;
    for (const auto& node : f.ring_.Nodes()) {
      if (node->Alive()) origin = node.get();
    }
    ASSERT_NE(origin, nullptr);
    NodeRef resolved;
    origin->Lookup(key, [&](const NodeRef& owner, std::size_t) { resolved = owner; });
    f.Settle(10000.0);
    EXPECT_EQ(resolved.actor, f.ring_.ExpectedSuccessor(key).actor);
  }
}

TEST(ChordChurn, RangeTransferFiresOnJoin) {
  // When a predecessor joins, the successor's app is told which range it
  // lost (the hook the tracking layer uses to re-home index entries).
  struct RecordingApp final : ChordNode::AppHandler {
    std::vector<std::pair<Key, Key>> transfers;
    void OnAppMessage(sim::ActorId, std::unique_ptr<sim::Message>) override {}
    void OnRangeTransfer(const Key& lo, const Key& hi, const NodeRef&) override {
      transfers.emplace_back(lo, hi);
    }
  };

  ChurnFixture f;
  for (int i = 0; i < 6; ++i) f.ring_.AddNode(util::Format("r-{}", i));
  f.ring_.ProtocolBootstrap(20000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  ChordNode& newcomer = f.ring_.ProtocolJoin("newcomer");
  f.Settle(20000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  // The newcomer's successor must have adopted it as predecessor; attach a
  // recorder and force one more join to observe a transfer event.
  ChordNode* successor = f.ring_.FindByActor(newcomer.Successor().actor);
  ASSERT_NE(successor, nullptr);
  RecordingApp app;
  successor->SetAppHandler(&app);

  // A second newcomer that lands between `newcomer` and `successor` would
  // trigger another transfer; instead we simply verify the adopt path by
  // checking the successor already adopted the first newcomer.
  ASSERT_TRUE(successor->Predecessor().has_value());
  EXPECT_EQ(successor->Predecessor()->actor, newcomer.Self().actor);
}

}  // namespace
}  // namespace peertrack::chord
