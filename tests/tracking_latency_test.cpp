// Queries and indexing remain correct under non-constant latency models —
// message reordering across flows must not corrupt IOP chains at the
// paper's movement time scales.

#include <gtest/gtest.h>

#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

class LatencyModels : public ::testing::TestWithParam<const char*> {};

TEST_P(LatencyModels, TracesMatchOracle) {
  SystemConfig config;
  config.tracker.mode = IndexingMode::kGroup;
  config.tracker.window.tmax_ms = 100.0;
  config.latency = GetParam();
  config.seed = 0x1a7e ^ std::string_view(GetParam()).size();
  TrackingSystem system(16, config);

  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 30;
  params.move_fraction = 0.3;
  params.trace_length = 5;
  params.step_ms = 5000.0;  // Dwells far above any latency tail.
  const auto scenario = workload::ExecuteScenario(system, params, 3);

  util::Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    const auto& object =
        scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    bool done = false;
    system.TraceQuery(rng.NextBelow(16), object, [&](TrackerNode::TraceResult result) {
      ASSERT_TRUE(result.ok) << GetParam();
      const auto* expected = system.oracle().FullTrace(object);
      ASSERT_NE(expected, nullptr);
      EXPECT_EQ(result.path.size(), expected->size()) << GetParam();
      done = true;
    });
    system.Run();
    ASSERT_TRUE(done);
  }
}

TEST_P(LatencyModels, QueryDurationsArePositiveAndBounded) {
  SystemConfig config;
  config.tracker.mode = IndexingMode::kIndividual;
  config.latency = GetParam();
  TrackingSystem system(24, config);
  const auto object = hash::ObjectKey("epc:latency-probe");
  workload::InjectTrajectory(system, object, {1, 5, 9}, 10.0, 5000.0);
  system.Run();

  bool done = false;
  system.TraceQuery(20, object, [&](TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.DurationMs(), 0.0);
    EXPECT_LT(result.DurationMs(), 10'000.0);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Models, LatencyModels,
                         ::testing::Values("constant:5", "uniform:2:10",
                                           "lognormal:5:0.5"));

TEST(LatencyDeterminism, SameSeedSameResultPerModel) {
  auto run = [](const char* latency) {
    SystemConfig config;
    config.latency = latency;
    config.seed = 0xd5ULL;
    TrackingSystem system(12, config);
    workload::MovementParams params;
    params.nodes = 12;
    params.objects_per_node = 40;
    params.move_fraction = 0.2;
    params.trace_length = 3;
    const auto result = workload::ExecuteScenario(system, params, 2);
    return result.indexing_messages;
  };
  for (const char* model : {"uniform:2:10", "lognormal:5:0.5"}) {
    EXPECT_EQ(run(model), run(model)) << model;
  }
}

}  // namespace
}  // namespace peertrack::tracking
