// Trace auditing (clone / dwell anomaly detection).

#include <gtest/gtest.h>

#include "tracking/audit.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

TrackerNode::TraceStep Step(sim::ActorId actor, moods::Time at) {
  TrackerNode::TraceStep step;
  step.node = chord::NodeRef{hash::UInt160(actor), actor};
  step.arrived = at;
  return step;
}

TEST(TraceAuditor, CleanTraceHasNoAnomalies) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 5000.0), Step(3, 12000.0)};
  EXPECT_TRUE(auditor.Audit(path).empty());
  EXPECT_FALSE(auditor.LooksCloned(path));
}

TEST(TraceAuditor, DetectsImpossibleTransit) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 100.0),  // 100 ms between sites: impossible.
      Step(3, 5000.0)};
  const auto anomalies = auditor.Audit(path);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, TraceAuditor::AnomalyKind::kImpossibleTransit);
  EXPECT_EQ(anomalies[0].step_index, 1u);
  EXPECT_DOUBLE_EQ(anomalies[0].gap_ms, 100.0);
  EXPECT_TRUE(auditor.LooksCloned(path));
  EXPECT_FALSE(anomalies[0].Describe().empty());
}

TEST(TraceAuditor, RevisitAtSameSiteIsNotTransit) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  TraceAuditor auditor(limits);
  // Two captures at the SAME site 100 ms apart (second reader): fine.
  const std::vector<TrackerNode::TraceStep> path = {Step(4, 0.0), Step(4, 100.0)};
  EXPECT_FALSE(auditor.LooksCloned(path));
}

TEST(TraceAuditor, DetectsExcessiveDwell) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 100.0;
  limits.max_dwell_ms = 10'000.0;
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 50'000.0)};  // 50 s at site 1.
  const auto anomalies = auditor.Audit(path);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, TraceAuditor::AnomalyKind::kExcessiveDwell);
  EXPECT_EQ(anomalies[0].step_index, 0u);
}

TEST(TraceAuditor, DwellCheckDisabledByDefault) {
  TraceAuditor auditor;  // max_dwell_ms == 0.
  const std::vector<TrackerNode::TraceStep> path = {Step(1, 0.0), Step(2, 1e9)};
  EXPECT_TRUE(auditor.Audit(path).empty());
}

TEST(TraceAuditor, EndToEndCloneInjection) {
  // Full-stack version of examples/counterfeit_detection: a clone's capture
  // inside the genuine item's transit window is flagged from a distributed
  // trace query result.
  tracking::SystemConfig config;
  config.tracker.mode = IndexingMode::kIndividual;
  TrackingSystem system(16, config);
  const auto genuine = hash::ObjectKey("epc:audited");
  system.CaptureAt(2, genuine, 10.0);
  system.CaptureAt(5, genuine, 10.0 + 1'200'000.0);   // Legit transit.
  system.CaptureAt(11, genuine, 10.0 + 1'201'000.0);  // Clone: 1 s later.
  system.Run();
  system.FlushAllWindows();

  TraceAuditor::Limits limits;
  limits.min_transit_ms = 600'000.0;
  TraceAuditor auditor(limits);
  bool done = false;
  system.TraceQuery(0, genuine, [&](TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(auditor.LooksCloned(result.path));
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace peertrack::tracking
