// Trace auditing (clone / dwell anomaly detection).

#include <gtest/gtest.h>

#include "tracking/audit.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

TrackerNode::TraceStep Step(sim::ActorId actor, moods::Time at) {
  TrackerNode::TraceStep step;
  step.node = chord::NodeRef{hash::UInt160(actor), actor};
  step.arrived = at;
  return step;
}

TEST(TraceAuditor, CleanTraceHasNoAnomalies) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 5000.0), Step(3, 12000.0)};
  EXPECT_TRUE(auditor.Audit(path).empty());
  EXPECT_FALSE(auditor.LooksCloned(path));
}

TEST(TraceAuditor, DetectsImpossibleTransit) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 100.0),  // 100 ms between sites: impossible.
      Step(3, 5000.0)};
  const auto anomalies = auditor.Audit(path);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, TraceAuditor::AnomalyKind::kImpossibleTransit);
  EXPECT_EQ(anomalies[0].step_index, 1u);
  EXPECT_DOUBLE_EQ(anomalies[0].gap_ms, 100.0);
  EXPECT_TRUE(auditor.LooksCloned(path));
  EXPECT_FALSE(anomalies[0].Describe().empty());
}

TEST(TraceAuditor, RevisitAtSameSiteIsNotTransit) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  TraceAuditor auditor(limits);
  // Two captures at the SAME site 100 ms apart (second reader): fine.
  const std::vector<TrackerNode::TraceStep> path = {Step(4, 0.0), Step(4, 100.0)};
  EXPECT_FALSE(auditor.LooksCloned(path));
}

TEST(TraceAuditor, DetectsExcessiveDwell) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 100.0;
  limits.max_dwell_ms = 10'000.0;
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 50'000.0)};  // 50 s at site 1.
  const auto anomalies = auditor.Audit(path);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, TraceAuditor::AnomalyKind::kExcessiveDwell);
  EXPECT_EQ(anomalies[0].step_index, 0u);
}

TEST(TraceAuditor, DwellCheckDisabledByDefault) {
  TraceAuditor auditor;  // max_dwell_ms == 0.
  const std::vector<TrackerNode::TraceStep> path = {Step(1, 0.0), Step(2, 1e9)};
  EXPECT_TRUE(auditor.Audit(path).empty());
}

TEST(TraceAuditor, DetectsSilenceGap) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  limits.max_silence_ms = 3'600'000.0;  // An hour off the books is suspicious.
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {
      Step(1, 0.0), Step(2, 7'200'000.0)};  // Reappears elsewhere 2 h later.
  const auto anomalies = auditor.Audit(path);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, TraceAuditor::AnomalyKind::kSilenceGap);
  EXPECT_EQ(anomalies[0].step_index, 1u);
  EXPECT_DOUBLE_EQ(anomalies[0].gap_ms, 7'200'000.0);
  EXPECT_FALSE(anomalies[0].Describe().empty());
}

TEST(TraceAuditor, SilenceAtSameSiteIsDwellNotGap) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;
  limits.max_silence_ms = 3'600'000.0;
  TraceAuditor auditor(limits);
  // A long pause between two reads at the SAME site is a dwell question,
  // not a silence gap (the object never left the books).
  const std::vector<TrackerNode::TraceStep> path = {
      Step(3, 0.0), Step(3, 7'200'000.0)};
  EXPECT_TRUE(auditor.Audit(path).empty());
}

TEST(TraceAuditor, SilenceCheckDisabledByDefault) {
  TraceAuditor::Limits limits;
  limits.min_transit_ms = 1000.0;  // max_silence_ms stays 0.
  TraceAuditor auditor(limits);
  const std::vector<TrackerNode::TraceStep> path = {Step(1, 0.0), Step(2, 1e9)};
  EXPECT_TRUE(auditor.Audit(path).empty());
}

TEST(TraceAuditor, FlagsBrokenChainFromTraceResult) {
  TraceAuditor auditor;
  TrackerNode::TraceResult result;
  result.ok = true;  // Partial path still "succeeds"...
  result.chain_broken = true;  // ...but the walk hit a dead link.
  result.path = {Step(1, 0.0), Step(2, 1'200'000.0)};
  const auto anomalies = auditor.Audit(result);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, TraceAuditor::AnomalyKind::kMissingLink);
  EXPECT_EQ(anomalies[0].step_index, 1u);
  EXPECT_EQ(anomalies[0].site.actor, 2u);
  EXPECT_FALSE(anomalies[0].Describe().empty());
}

TEST(TraceAuditor, CleanResultHasNoMissingLink) {
  TraceAuditor auditor;
  TrackerNode::TraceResult result;
  result.ok = true;
  result.path = {Step(1, 0.0), Step(2, 1'200'000.0)};
  EXPECT_TRUE(auditor.Audit(result).empty());
}

TEST(TraceAuditor, EndToEndMissingLinkDetection) {
  // Corrupt a to-link so the IOP walk dereferences a visit that does not
  // exist; the walk degrades to a partial path with chain_broken set and
  // the auditor flags kMissingLink.
  tracking::SystemConfig config;
  config.tracker.mode = IndexingMode::kIndividual;
  TrackingSystem system(16, config);
  const auto object = hash::ObjectKey("epc:diverted");
  system.CaptureAt(2, object, 10.0);
  system.CaptureAt(5, object, 10.0 + 1'200'000.0);
  system.CaptureAt(9, object, 10.0 + 2'400'000.0);
  system.Run();
  system.FlushAllWindows();

  // Splice a ghost hop into the middle of the chain: node 5's to-link and
  // node 9's from-link both reference a visit at node 12, which has no
  // record of the object — the "records missing or diverted" scenario.
  // Whichever node intercepts the probe, the walk dereferences the ghost.
  const chord::NodeRef ghost = system.Tracker(12).Self();
  const moods::Time ghost_arrived = 10.0 + 1'800'000.0;
  system.Tracker(5).mutable_iop().SetTo(object, ghost, ghost_arrived);
  system.Tracker(9).mutable_iop().SetFrom(object, 10.0 + 2'400'000.0, ghost,
                                          ghost_arrived);

  TraceAuditor auditor;
  bool done = false;
  system.TraceQuery(0, object, [&](TrackerNode::TraceResult result) {
    EXPECT_TRUE(result.chain_broken);
    const auto anomalies = auditor.Audit(result);
    bool missing_link = false;
    for (const auto& anomaly : anomalies) {
      if (anomaly.kind == TraceAuditor::AnomalyKind::kMissingLink) {
        missing_link = true;
      }
    }
    EXPECT_TRUE(missing_link);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(TraceAuditor, EndToEndCloneInjection) {
  // Full-stack version of examples/counterfeit_detection: a clone's capture
  // inside the genuine item's transit window is flagged from a distributed
  // trace query result.
  tracking::SystemConfig config;
  config.tracker.mode = IndexingMode::kIndividual;
  TrackingSystem system(16, config);
  const auto genuine = hash::ObjectKey("epc:audited");
  system.CaptureAt(2, genuine, 10.0);
  system.CaptureAt(5, genuine, 10.0 + 1'200'000.0);   // Legit transit.
  system.CaptureAt(11, genuine, 10.0 + 1'201'000.0);  // Clone: 1 s later.
  system.Run();
  system.FlushAllWindows();

  TraceAuditor::Limits limits;
  limits.min_transit_ms = 600'000.0;
  TraceAuditor auditor(limits);
  bool done = false;
  system.TraceQuery(0, genuine, [&](TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(auditor.LooksCloned(result.path));
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace peertrack::tracking
