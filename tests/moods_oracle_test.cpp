#include "moods/oracle.hpp"

#include <gtest/gtest.h>

namespace peertrack::moods {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("oracle-obj-" + std::to_string(i)); }

TEST(Oracle, LocateFollowsMovements) {
  TrajectoryOracle oracle;
  oracle.RecordMovement(Obj(1), 3, 10.0);
  oracle.RecordMovement(Obj(1), 7, 50.0);
  EXPECT_EQ(oracle.Locate(Obj(1), 5.0), kNowhere);   // Before first capture.
  EXPECT_EQ(oracle.Locate(Obj(1), 10.0), 3u);
  EXPECT_EQ(oracle.Locate(Obj(1), 49.9), 3u);
  EXPECT_EQ(oracle.Locate(Obj(1), 50.0), 7u);
  EXPECT_EQ(oracle.Locate(Obj(1), 1e9), 7u);
  EXPECT_EQ(oracle.Locate(Obj(2), 10.0), kNowhere);  // Unknown object.
}

TEST(Oracle, TraceWindowSemantics) {
  TrajectoryOracle oracle;
  oracle.RecordMovement(Obj(1), 1, 10.0);
  oracle.RecordMovement(Obj(1), 2, 20.0);
  oracle.RecordMovement(Obj(1), 3, 30.0);

  // Full window.
  auto trace = oracle.Trace(Obj(1), 0.0, 100.0);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].node, 1u);
  EXPECT_EQ(trace[2].node, 3u);

  // Window starting mid-visit includes the current visit.
  trace = oracle.Trace(Obj(1), 15.0, 25.0);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].node, 1u);
  EXPECT_EQ(trace[1].node, 2u);

  // Empty/invalid windows.
  EXPECT_TRUE(oracle.Trace(Obj(1), 50.0, 40.0).empty());
  EXPECT_TRUE(oracle.Trace(Obj(2), 0.0, 100.0).empty());
}

TEST(Oracle, OutOfOrderRecordingSorts) {
  TrajectoryOracle oracle;
  oracle.RecordMovement(Obj(1), 2, 20.0);
  oracle.RecordMovement(Obj(1), 1, 10.0);
  const auto* trace = oracle.FullTrace(Obj(1));
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ((*trace)[0].node, 1u);
  EXPECT_EQ((*trace)[1].node, 2u);
}

TEST(Oracle, FullTraceUnknownIsNull) {
  TrajectoryOracle oracle;
  EXPECT_EQ(oracle.FullTrace(Obj(9)), nullptr);
  EXPECT_EQ(oracle.ObjectCount(), 0u);
}

}  // namespace
}  // namespace peertrack::moods
