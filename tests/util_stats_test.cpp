#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peertrack::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.Count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.Sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.Count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats whole;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3.0;
    (i % 2 ? left : right).Add(v);
    whole.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), whole.Count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(left.Max(), whole.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.Count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 1.0);
}

TEST(Percentiles, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Percentile(100), 100.0);
  EXPECT_NEAR(p.Median(), 50.5, 1e-9);
  EXPECT_NEAR(p.Percentile(90), 90.1, 1e-9);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.Median(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);   // Clamps to first bucket.
  h.Add(0.0);
  h.Add(3.9);
  h.Add(10.0);   // Clamps to last bucket.
  h.Add(99.0);
  EXPECT_EQ(h.Total(), 5u);
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(1), 1u);
  EXPECT_EQ(h.Count(4), 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(1), 4.0);
  EXPECT_FALSE(h.Render().empty());
}

TEST(Lorenz, PerfectBalanceIsDiagonal) {
  std::vector<std::uint64_t> loads(100, 5);
  const auto curve = LorenzCurve(loads, 10);
  ASSERT_EQ(curve.size(), 11u);
  for (const auto& point : curve) {
    EXPECT_NEAR(point.load_fraction, point.node_fraction, 1e-9);
  }
}

TEST(Lorenz, TotalImbalance) {
  std::vector<std::uint64_t> loads(10, 0);
  loads[3] = 100;
  const auto curve = LorenzCurve(loads, 10);
  // Bottom 90% of nodes carry nothing.
  EXPECT_NEAR(curve[9].load_fraction, 0.0, 1e-9);
  EXPECT_NEAR(curve[10].load_fraction, 1.0, 1e-9);
}

TEST(Gini, KnownValues) {
  std::vector<std::uint64_t> equal(10, 7);
  EXPECT_NEAR(GiniCoefficient(equal), 0.0, 1e-9);

  std::vector<std::uint64_t> skewed(10, 0);
  skewed[9] = 100;
  // One node holds everything among 10: Gini = (n-1)/n = 0.9.
  EXPECT_NEAR(GiniCoefficient(skewed), 0.9, 1e-9);

  EXPECT_DOUBLE_EQ(GiniCoefficient(std::vector<std::uint64_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient(std::vector<std::uint64_t>{5}), 0.0);
}

TEST(LoadMetrics, PeakToMeanAndNonZero) {
  std::vector<std::uint64_t> loads{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(PeakToMeanRatio(loads), 2.0);
  EXPECT_DOUBLE_EQ(NonZeroFraction(loads), 0.5);
  EXPECT_DOUBLE_EQ(PeakToMeanRatio(std::vector<std::uint64_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(NonZeroFraction(std::vector<std::uint64_t>{0, 0}), 0.0);
}

}  // namespace
}  // namespace peertrack::util
