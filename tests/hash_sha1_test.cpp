#include "hash/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace peertrack::hash {
namespace {

// FIPS 180-1 / RFC 3174 reference vectors.
TEST(Sha1, FipsVectors) {
  EXPECT_EQ(ToHex(Sha1Hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(ToHex(Sha1Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(ToHex(Sha1Hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(ToHex(hasher.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= text.size(); ++split) {
    Sha1 hasher;
    hasher.Update(std::string_view(text).substr(0, split));
    hasher.Update(std::string_view(text).substr(split));
    EXPECT_EQ(hasher.Finish(), Sha1Hash(text)) << "split=" << split;
  }
}

TEST(Sha1, BlockBoundaryLengths) {
  // Lengths straddling the 64-byte block and 56-byte padding boundaries.
  for (std::size_t length : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string text(length, 'x');
    const auto reference = Sha1Hash(text);
    Sha1 hasher;
    for (char c : text) hasher.Update(std::string_view(&c, 1));
    EXPECT_EQ(hasher.Finish(), reference) << "length=" << length;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.Update("garbage");
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(ToHex(hasher.Finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, BytesOverloadMatchesText) {
  const std::string text = "binary-equivalence";
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  EXPECT_EQ(Sha1Hash(bytes), Sha1Hash(text));
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1Hash("object:001"), Sha1Hash("object:002"));
  EXPECT_NE(Sha1Hash("0"), Sha1Hash("00"));
}

}  // namespace
}  // namespace peertrack::hash
