#include "tracking/gateway_index.hpp"

#include <gtest/gtest.h>

namespace peertrack::tracking {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("gi-obj-" + std::to_string(i)); }

chord::NodeRef Node(sim::ActorId actor) {
  return chord::NodeRef{hash::UInt160(actor), actor};
}

TEST(PrefixBucket, UpsertFindExtract) {
  PrefixBucket bucket;
  bucket.Upsert(Obj(1), IndexEntry{Node(3), 10.0});
  ASSERT_NE(bucket.Find(Obj(1)), nullptr);
  EXPECT_EQ(bucket.Find(Obj(1))->latest_node.actor, 3u);
  EXPECT_EQ(bucket.Find(Obj(2)), nullptr);

  bucket.Upsert(Obj(1), IndexEntry{Node(5), 20.0});
  EXPECT_EQ(bucket.Find(Obj(1))->latest_node.actor, 5u);
  EXPECT_EQ(bucket.Size(), 1u);

  auto extracted = bucket.Extract(Obj(1));
  ASSERT_TRUE(extracted.has_value());
  EXPECT_DOUBLE_EQ(extracted->latest_arrived, 20.0);
  EXPECT_TRUE(bucket.Empty());
  EXPECT_FALSE(bucket.Extract(Obj(1)).has_value());
}

TEST(PrefixBucket, ExtractEarliestIsFifoByUpdateTime) {
  PrefixBucket bucket;
  for (int i = 0; i < 10; ++i) {
    bucket.Upsert(Obj(i), IndexEntry{Node(1), 100.0 - i});  // Obj(9) oldest.
  }
  auto oldest = bucket.ExtractEarliest(3);
  ASSERT_EQ(oldest.size(), 3u);
  for (const auto& [_, entry] : oldest) {
    EXPECT_LE(entry.latest_arrived, 93.0);
  }
  EXPECT_EQ(bucket.Size(), 7u);
}

TEST(PrefixBucket, ExtractEarliestDeterministicOnTies) {
  // Equal timestamps: ties broken by object key, independent of hash-map
  // iteration order.
  PrefixBucket a;
  PrefixBucket b;
  for (int i = 0; i < 20; ++i) a.Upsert(Obj(i), IndexEntry{Node(1), 5.0});
  for (int i = 19; i >= 0; --i) b.Upsert(Obj(i), IndexEntry{Node(1), 5.0});
  auto ea = a.ExtractEarliest(7);
  auto eb = b.ExtractEarliest(7);
  std::sort(ea.begin(), ea.end(), [](auto& x, auto& y) { return x.first < y.first; });
  std::sort(eb.begin(), eb.end(), [](auto& x, auto& y) { return x.first < y.first; });
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].first, eb[i].first);
  }
}

TEST(PrefixBucket, ExtractEarliestClampsToSize) {
  PrefixBucket bucket;
  bucket.Upsert(Obj(1), IndexEntry{Node(1), 1.0});
  EXPECT_EQ(bucket.ExtractEarliest(100).size(), 1u);
  EXPECT_TRUE(bucket.Empty());
  EXPECT_TRUE(bucket.ExtractEarliest(5).empty());
}

TEST(PrefixBucket, ExtractAll) {
  PrefixBucket bucket;
  for (int i = 0; i < 5; ++i) bucket.Upsert(Obj(i), IndexEntry{Node(1), 1.0 * i});
  auto all = bucket.ExtractAll();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(bucket.Empty());
}

TEST(PrefixIndexStore, BucketsByPrefix) {
  PrefixIndexStore store;
  const auto p0 = hash::Prefix::FromString("010");
  const auto p1 = hash::Prefix::FromString("0101");
  store.BucketFor(p0).Upsert(Obj(1), IndexEntry{Node(1), 1.0});
  store.BucketFor(p1).Upsert(Obj(2), IndexEntry{Node(2), 2.0});

  EXPECT_NE(store.TryBucket(p0), nullptr);
  EXPECT_EQ(store.TryBucket(hash::Prefix::FromString("111")), nullptr);
  EXPECT_EQ(store.TotalEntries(), 2u);
  EXPECT_EQ(store.Prefixes().size(), 2u);
}

TEST(PrefixIndexStore, DropIfEmptyOnlyDropsEmpty) {
  PrefixIndexStore store;
  const auto p = hash::Prefix::FromString("00");
  store.BucketFor(p).Upsert(Obj(1), IndexEntry{Node(1), 1.0});
  store.DropIfEmpty(p);
  EXPECT_NE(store.TryBucket(p), nullptr);
  store.BucketFor(p).ExtractAll();
  store.DropIfEmpty(p);
  EXPECT_EQ(store.TryBucket(p), nullptr);
}

TEST(PrefixIndexStore, PrefixesSkipsEmptyBuckets) {
  PrefixIndexStore store;
  store.BucketFor(hash::Prefix::FromString("1"));  // Created but empty.
  store.BucketFor(hash::Prefix::FromString("0"))
      .Upsert(Obj(1), IndexEntry{Node(1), 1.0});
  const auto prefixes = store.Prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].ToString(), "0");
}

}  // namespace
}  // namespace peertrack::tracking
