// Tracer unit tests plus end-to-end span-tree assertions: a completed
// trace/locate query must reconstruct as a causal tree — chord/probe hops,
// the gateway read, and the IOP walk — even under wire loss and rpc retry.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "obs/trace.hpp"
#include "tracking/tracking_system.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace peertrack::obs {
namespace {

TEST(Tracer, DisabledByDefaultAndOpsNoOp) {
  Tracer tracer;
  EXPECT_FALSE(tracer.Enabled());
  const TraceContext ctx = tracer.StartTrace("x", 1, 0.0);
  EXPECT_FALSE(ctx.Valid());
  tracer.EndSpan(ctx, 1.0);
  tracer.AddEvent(ctx, "e", 1, 1.0);
  EXPECT_TRUE(tracer.Spans().empty());
}

TEST(Tracer, SpanParentageAndStatus) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext root = tracer.StartTrace("root", 1, 10.0);
  ASSERT_TRUE(root.Valid());
  const TraceContext child = tracer.StartSpan(root, "child", 2, 11.0);
  ASSERT_TRUE(child.Valid());
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_EQ(tracer.OpenSpanCount(), 2u);

  tracer.EndSpan(child, 15.0, "ok");
  tracer.EndSpan(root, 20.0, "failed");
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);

  ASSERT_EQ(tracer.Spans().size(), 2u);
  const SpanRecord& r = tracer.Spans()[0];
  const SpanRecord& c = tracer.Spans()[1];
  EXPECT_EQ(r.parent_id, 0u);
  EXPECT_EQ(c.parent_id, r.span_id);
  EXPECT_DOUBLE_EQ(c.end_ms, 15.0);
  EXPECT_EQ(r.status, "failed");
  EXPECT_EQ(c.status, "ok");
}

TEST(Tracer, EndSpanIsIdempotent) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext root = tracer.StartTrace("root", 1, 0.0);
  tracer.EndSpan(root, 5.0, "ok");
  tracer.EndSpan(root, 99.0, "late");  // Must not overwrite.
  EXPECT_DOUBLE_EQ(tracer.Spans()[0].end_ms, 5.0);
  EXPECT_EQ(tracer.Spans()[0].status, "ok");
}

TEST(Tracer, StartSpanFromInvalidParentStaysInvalid) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext child = tracer.StartSpan(TraceContext{}, "orphan", 1, 0.0);
  EXPECT_FALSE(child.Valid());
  EXPECT_TRUE(tracer.Spans().empty());
}

TEST(Tracer, AddEventRecordsZeroDurationChild) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext root = tracer.StartTrace("root", 1, 0.0);
  tracer.AddEvent(root, "gateway.read", 7, 3.0);
  ASSERT_EQ(tracer.Spans().size(), 2u);
  const SpanRecord& event = tracer.Spans()[1];
  EXPECT_EQ(event.name, "gateway.read");
  EXPECT_EQ(event.parent_id, root.span_id);
  EXPECT_EQ(event.actor, 7u);
  EXPECT_FALSE(event.open);
  EXPECT_DOUBLE_EQ(event.start_ms, 3.0);
  EXPECT_DOUBLE_EQ(event.end_ms, 3.0);
}

TEST(Tracer, SpansOfFiltersByTrace) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext a = tracer.StartTrace("a", 1, 0.0);
  const TraceContext b = tracer.StartTrace("b", 2, 0.0);
  tracer.StartSpan(a, "a.child", 1, 1.0);
  EXPECT_EQ(tracer.SpansOf(a.trace_id).size(), 2u);
  EXPECT_EQ(tracer.SpansOf(b.trace_id).size(), 1u);
}

TEST(ScopedLogTrace, SetsAndRestoresAmbientIds) {
  util::SetLogTrace(0, 0);
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext outer = tracer.StartTrace("outer", 1, 0.0);
  const TraceContext inner = tracer.StartSpan(outer, "inner", 1, 0.0);
  {
    ScopedLogTrace a(outer);
    EXPECT_EQ(util::GetLogTrace().first, outer.trace_id);
    EXPECT_EQ(util::GetLogTrace().second, outer.span_id);
    {
      ScopedLogTrace b(inner);
      EXPECT_EQ(util::GetLogTrace().second, inner.span_id);
    }
    EXPECT_EQ(util::GetLogTrace().second, outer.span_id);
  }
  EXPECT_EQ(util::GetLogTrace().first, 0u);

  // An invalid context leaves the ambient ids untouched.
  {
    ScopedLogTrace c(outer);
    ScopedLogTrace d{TraceContext{}};
    EXPECT_EQ(util::GetLogTrace().first, outer.trace_id);
  }
}

// --- End-to-end span trees --------------------------------------------------

tracking::SystemConfig MakeConfig(tracking::IndexingMode mode) {
  tracking::SystemConfig config;
  config.tracker.mode = mode;
  config.tracker.window.tmax_ms = 100.0;
  config.tracker.window.nmax = 64;
  config.seed = 0xfeedULL;
  return config;
}

std::map<SpanId, const SpanRecord*> IndexBySpanId(
    const std::vector<const SpanRecord*>& spans) {
  std::map<SpanId, const SpanRecord*> by_id;
  for (const SpanRecord* span : spans) by_id.emplace(span->span_id, span);
  return by_id;
}

/// Every non-root span's parent must exist in the same trace, and the trace
/// must have exactly one root.
void ExpectWellFormedTree(const std::vector<const SpanRecord*>& spans) {
  ASSERT_FALSE(spans.empty());
  const auto by_id = IndexBySpanId(spans);
  std::size_t roots = 0;
  for (const SpanRecord* span : spans) {
    if (span->parent_id == 0) {
      ++roots;
      continue;
    }
    const auto parent = by_id.find(span->parent_id);
    ASSERT_NE(parent, by_id.end())
        << "span " << span->name << " has a dangling parent";
    EXPECT_EQ(parent->second->trace_id, span->trace_id);
  }
  EXPECT_EQ(roots, 1u) << "a trace must have exactly one root span";
}

/// Pick an object whose gateway is on neither the trajectory nor the query
/// origin, so the query is forced through remote probe hops.
hash::UInt160 RemoteGatewayObject(tracking::TrackingSystem& system,
                                  std::initializer_list<std::size_t> exclude) {
  for (int salt = 0;; ++salt) {
    const auto object = hash::ObjectKey("epc:traced-" + std::to_string(salt));
    const auto* gateway = system.OwnerOf(object);
    const auto index = system.NodeIndexOfActor(gateway->Self().actor);
    bool excluded = false;
    for (const std::size_t e : exclude) excluded |= (index == e);
    if (!excluded) return object;
  }
}

TEST(QueryTracing, TraceQueryYieldsProbeGatewayWalkTree) {
  tracking::TrackingSystem system(16, MakeConfig(tracking::IndexingMode::kIndividual));
  const auto object = RemoteGatewayObject(system, {0, 3, 7, 12});
  workload::InjectTrajectory(system, object, {3, 7, 12}, 10.0, 500.0);
  system.Run();

  system.network().tracer().SetEnabled(true);
  bool done = false;
  system.TraceQuery(0, object, [&](tracking::TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    done = true;
  });
  system.Run();
  ASSERT_TRUE(done);

  const Tracer& tracer = system.network().tracer();
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);

  // Find the query root and collect its trace.
  const SpanRecord* root = nullptr;
  for (const SpanRecord& span : tracer.Spans()) {
    if (span.name == "query.trace") root = &span;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->status, "ok");
  EXPECT_FALSE(root->open);

  const auto spans = tracer.SpansOf(root->trace_id);
  ExpectWellFormedTree(spans);
  const auto by_id = IndexBySpanId(spans);

  std::size_t probes = 0;
  std::size_t walks = 0;
  std::size_t rpc_attempts = 0;
  bool gateway_read = false;
  bool iop_read = false;
  for (const SpanRecord* span : spans) {
    const std::string& name = span->name;
    if (name.rfind("query.probe#", 0) == 0) {
      ++probes;
      EXPECT_EQ(span->parent_id, root->span_id);
    } else if (name.rfind("query.walk.", 0) == 0) {
      ++walks;
      EXPECT_EQ(span->parent_id, root->span_id);
    } else if (name.rfind("rpc.", 0) == 0) {
      ++rpc_attempts;
      // Attempt spans hang off a probe or walk stage span.
      const SpanRecord* parent = by_id.at(span->parent_id);
      EXPECT_TRUE(parent->name.rfind("query.probe#", 0) == 0 ||
                  parent->name.rfind("query.walk.", 0) == 0)
          << "rpc attempt parented on " << parent->name;
    } else if (name == "gateway.read") {
      gateway_read = true;
      // The gateway read happened while serving some rpc attempt.
      EXPECT_EQ(by_id.at(span->parent_id)->name.rfind("rpc.", 0), 0u);
    } else if (name == "iop.read") {
      iop_read = true;
    }
  }
  // The gateway is remote, so the query probed at least once, read the
  // gateway index, and walked the IOP list (3 visits = >= 3 walk reads).
  EXPECT_GE(probes, 1u);
  EXPECT_TRUE(gateway_read);
  EXPECT_GE(walks, 3u);
  EXPECT_TRUE(iop_read);
  EXPECT_GE(rpc_attempts, probes + walks);
}

TEST(QueryTracing, LocateQueryReadsGatewayWithoutWalking) {
  tracking::TrackingSystem system(16, MakeConfig(tracking::IndexingMode::kIndividual));
  const auto object = RemoteGatewayObject(system, {0, 3, 7});
  workload::InjectTrajectory(system, object, {3, 7}, 10.0, 500.0);
  system.Run();

  system.network().tracer().SetEnabled(true);
  bool done = false;
  system.LocateQuery(0, object, [&](tracking::TrackerNode::LocateResult result) {
    ASSERT_TRUE(result.ok);
    done = true;
  });
  system.Run();
  ASSERT_TRUE(done);

  const Tracer& tracer = system.network().tracer();
  const SpanRecord* root = nullptr;
  for (const SpanRecord& span : tracer.Spans()) {
    if (span.name == "query.locate") root = &span;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, "ok");

  const auto spans = tracer.SpansOf(root->trace_id);
  ExpectWellFormedTree(spans);
  std::size_t probes = 0;
  bool gateway_read = false;
  for (const SpanRecord* span : spans) {
    if (span->name.rfind("query.probe#", 0) == 0) ++probes;
    if (span->name == "gateway.read") gateway_read = true;
    EXPECT_EQ(span->name.rfind("query.walk.", 0), std::string::npos)
        << "locate must not walk the IOP list";
  }
  EXPECT_GE(probes, 1u);
  EXPECT_TRUE(gateway_read);
}

TEST(QueryTracing, TreesStayWellFormedUnderLoss) {
  tracking::TrackingSystem system(16, MakeConfig(tracking::IndexingMode::kGroup));
  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 20;
  params.move_fraction = 0.3;
  params.trace_length = 4;
  params.move_in_groups = true;
  const auto scenario = workload::ExecuteScenario(system, params, 7);

  system.network().tracer().SetEnabled(true);
  system.network().SetLossRate(0.05);
  util::Rng rng(21);
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    const auto origin = static_cast<std::size_t>(rng.NextBelow(system.NodeCount()));
    bool done = false;
    if (i % 2 == 0) {
      system.TraceQuery(origin, object,
                        [&](tracking::TrackerNode::TraceResult) { done = true; });
    } else {
      system.LocateQuery(origin, object,
                         [&](tracking::TrackerNode::LocateResult) { done = true; });
    }
    system.Run();
    ASSERT_TRUE(done);
  }

  const Tracer& tracer = system.network().tracer();
  std::set<TraceId> query_traces;
  for (const SpanRecord& span : tracer.Spans()) {
    if (span.parent_id == 0) {
      EXPECT_TRUE(span.name.rfind("query.", 0) == 0 ||
                  span.name.rfind("index.", 0) == 0)
          << "unexpected root " << span.name;
      if (span.name.rfind("query.", 0) == 0) query_traces.insert(span.trace_id);
    }
  }
  EXPECT_EQ(query_traces.size(), 30u);
  for (const TraceId trace : query_traces) {
    ExpectWellFormedTree(tracer.SpansOf(trace));
  }
  // Every query completed, so nothing may be left open.
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);
}

TEST(QueryTracing, RetriesAppearAsSiblingAttemptSpans) {
  tracking::TrackingSystem system(16, MakeConfig(tracking::IndexingMode::kIndividual));
  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 20;
  params.move_fraction = 0.3;
  params.trace_length = 4;
  const auto scenario = workload::ExecuteScenario(system, params, 9);

  system.network().tracer().SetEnabled(true);
  system.network().SetLossRate(0.5);
  util::Rng rng(33);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    bool done = false;
    system.TraceQuery(static_cast<std::size_t>(rng.NextBelow(system.NodeCount())),
                      object,
                      [&](tracking::TrackerNode::TraceResult) { done = true; });
    system.Run();
    ASSERT_TRUE(done);
  }
  ASSERT_GT(system.metrics().RpcRetries(), 0u) << "50% loss must cause retries";

  // Every second attempt ("...#1") must have a first attempt ("...#0")
  // under the same parent — retries are sibling children of the caller's
  // stage span, not a new trace.
  const Tracer& tracer = system.network().tracer();
  std::size_t second_attempts = 0;
  for (const SpanRecord& span : tracer.Spans()) {
    if (span.name.rfind("rpc.", 0) != 0 || span.name.rfind("#1") == std::string::npos ||
        span.name.rfind("#1") != span.name.size() - 2) {
      continue;
    }
    ++second_attempts;
    const std::string first_name = span.name.substr(0, span.name.size() - 1) + "0";
    bool found_sibling = false;
    for (const SpanRecord& other : tracer.Spans()) {
      if (other.parent_id == span.parent_id && other.name == first_name) {
        found_sibling = true;
        break;
      }
    }
    EXPECT_TRUE(found_sibling) << "no first attempt next to " << span.name;
  }
  EXPECT_GT(second_attempts, 0u);
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);
}

TEST(QueryTracing, IndexingEmitsRootMarkersThatTagWireMessages) {
  tracking::TrackingSystem system(8, MakeConfig(tracking::IndexingMode::kIndividual));
  system.network().tracer().SetEnabled(true);
  // Keep the gateway off the trajectory so the M2/M3 updates are remote
  // wire messages (self-sends are not recorded as MessageEvents).
  const auto object = RemoteGatewayObject(system, {2, 5});
  workload::InjectTrajectory(system, object, {2, 5}, 10.0, 500.0);
  system.Run();

  const Tracer& tracer = system.network().tracer();
  std::set<TraceId> index_traces;
  for (const SpanRecord& span : tracer.Spans()) {
    if (span.name == "index.m1") {
      EXPECT_EQ(span.parent_id, 0u);
      EXPECT_FALSE(span.open);
      index_traces.insert(span.trace_id);
    }
  }
  ASSERT_GE(index_traces.size(), 2u);  // One marker per arrival report.

  // The M3 (and for the second hop M2) updates carry the marker's context.
  std::size_t tagged_updates = 0;
  for (const MessageEvent& msg : tracer.Messages()) {
    if ((msg.type == "track.iop_from" || msg.type == "track.iop_to") &&
        index_traces.contains(msg.trace.trace_id)) {
      ++tagged_updates;
    }
  }
  EXPECT_GE(tagged_updates, 2u);
}

}  // namespace
}  // namespace peertrack::obs
