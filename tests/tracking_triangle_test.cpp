// Data-Triangle behaviour: delegation, refresh-from-ascent/descent, and the
// splitting-merging process when Lp changes.

#include <gtest/gtest.h>

#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

SystemConfig TriangleConfig(std::size_t delegation_threshold, double alpha = 0.5) {
  SystemConfig config;
  config.tracker.mode = IndexingMode::kGroup;
  config.tracker.window.tmax_ms = 100.0;
  config.tracker.window.nmax = 64;
  config.tracker.lmin = 2;
  config.tracker.delegation_threshold = delegation_threshold;
  config.tracker.alpha = alpha;
  config.seed = 0x7777ULL;
  return config;
}

workload::MovementParams SmallWorkload(std::size_t nodes, std::size_t per_node) {
  workload::MovementParams params;
  params.nodes = nodes;
  params.objects_per_node = per_node;
  params.move_fraction = 0.0;
  params.trace_length = 1;
  return params;
}

TEST(DataTriangle, DelegationTriggersAboveThreshold) {
  // A tiny threshold forces delegation; entries appear in Lp+1 buckets.
  TrackingSystem system(8, TriangleConfig(/*delegation_threshold=*/10));
  workload::ExecuteScenario(system, SmallWorkload(8, 400), 5);

  EXPECT_GT(system.metrics().Counter("track.triangle_delegation"), 0u);

  const unsigned lp = system.CurrentLp();
  bool found_child_bucket = false;
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    for (const auto& prefix : system.Tracker(i).prefix_store().Prefixes()) {
      EXPECT_GE(prefix.length, lp);
      EXPECT_LE(prefix.length, lp + 1);
      if (prefix.length == lp + 1) found_child_bucket = true;
    }
  }
  EXPECT_TRUE(found_child_bucket);
}

TEST(DataTriangle, NoDelegationBelowThreshold) {
  TrackingSystem system(8, TriangleConfig(/*delegation_threshold=*/1 << 20));
  workload::ExecuteScenario(system, SmallWorkload(8, 200), 5);
  EXPECT_EQ(system.metrics().Counter("track.triangle_delegation"), 0u);
}

TEST(DataTriangle, QueriesStillCorrectAfterDelegation) {
  // Delegated entries must remain findable through the triangle lookup.
  TrackingSystem system(8, TriangleConfig(/*delegation_threshold=*/8, /*alpha=*/0.8));
  const auto scenario = workload::ExecuteScenario(system, SmallWorkload(8, 300), 5);
  ASSERT_GT(system.metrics().Counter("track.triangle_delegation"), 0u);

  util::Rng rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    bool done = false;
    system.LocateQuery(rng.NextBelow(system.NodeCount()), object,
                       [&](TrackerNode::LocateResult result) {
                         EXPECT_TRUE(result.ok) << object.ToShortHex();
                         done = true;
                       });
    system.Run();
    ASSERT_TRUE(done);
  }
}

TEST(DataTriangle, MovementAfterDelegationRefreshesFromDescent) {
  // Index an object, force its entry to be delegated down, then move the
  // object: the gateway must pull the entry back (refresh_from_descent) so
  // the IOP chain links instead of treating the arrival as new.
  TrackingSystem system(8, TriangleConfig(/*delegation_threshold=*/4, /*alpha=*/1.0));
  const auto scenario = workload::ExecuteScenario(system, SmallWorkload(8, 200), 5);
  ASSERT_GT(system.metrics().Counter("track.triangle_delegation"), 0u);

  // Move 40 random objects to new nodes.
  util::Rng rng(8);
  std::vector<std::pair<hash::UInt160, std::uint32_t>> moved;
  for (int i = 0; i < 40; ++i) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    const auto dest = static_cast<std::uint32_t>(rng.NextBelow(system.NodeCount()));
    system.CaptureAt(dest, object, 1e6 + i * 200.0);
    moved.emplace_back(object, dest);
  }
  system.Run();
  system.FlushAllWindows();

  // Every moved object's trace must contain BOTH its birth node and the
  // destination (i.e. the chain was linked, not restarted).
  for (const auto& [object, dest] : moved) {
    bool done = false;
    system.TraceQuery(0, object, [&, obj = object](TrackerNode::TraceResult result) {
      ASSERT_TRUE(result.ok);
      const auto* expected = system.oracle().FullTrace(obj);
      ASSERT_NE(expected, nullptr);
      EXPECT_EQ(result.path.size(), expected->size())
          << "IOP chain broken for " << obj.ToShortHex();
      done = true;
    });
    system.Run();
    ASSERT_TRUE(done);
  }
}

TEST(DataTriangle, NetworkGrowthSplitsBucketsAndKeepsQueriesCorrect) {
  TrackingSystem system(24, TriangleConfig(1 << 20));
  const auto scenario = workload::ExecuteScenario(system, SmallWorkload(24, 80), 5);
  const unsigned lp_before = system.CurrentLp();
  const std::size_t entries_before = [&] {
    std::size_t total = 0;
    for (const auto load : system.StoredEntriesPerNode()) total += load;
    return total;
  }();

  // Grow until Scheme-2 Lp increments (paper Eq. 7's ΔNn).
  system.GrowNetwork(40);
  const unsigned lp_after = system.RecomputePrefixLength();
  ASSERT_GT(lp_after, lp_before);
  EXPECT_GT(system.metrics().Counter("track.triangle_split"), 0u);

  // Splitting relocates entries but never loses them.
  std::size_t entries_after = 0;
  for (const auto load : system.StoredEntriesPerNode()) entries_after += load;
  EXPECT_EQ(entries_after, entries_before);

  // Bucket shape invariant holds at the new Lp.
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    for (const auto& prefix : system.Tracker(i).prefix_store().Prefixes()) {
      EXPECT_GE(prefix.length, lp_after);
      EXPECT_LE(prefix.length, lp_after + 1);
    }
  }

  // Old objects remain locatable after the split cascade.
  util::Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    bool done = false;
    system.LocateQuery(rng.NextBelow(system.NodeCount()), object,
                       [&](TrackerNode::LocateResult result) {
                         EXPECT_TRUE(result.ok) << object.ToShortHex();
                         done = true;
                       });
    system.Run();
    ASSERT_TRUE(done);
  }
}

TEST(DataTriangle, SplitMergeRoundTripPreservesEntries) {
  // Exercise OnPrefixLengthChanged directly through RecomputePrefixLength:
  // crash enough nodes that Scheme-2 Lp drops, forcing merges; entries must
  // survive and queries must still resolve.
  TrackingSystem system(64, TriangleConfig(1 << 20));
  const auto scenario = workload::ExecuteScenario(system, SmallWorkload(64, 40), 5);
  const unsigned lp_before = system.CurrentLp();

  // Crash three quarters of the ring so Scheme-2 Lp drops by more than one
  // level (a one-level drop legitimately needs no merges: old gateway
  // buckets become valid Lp+1 children). Then rewire the survivors.
  for (std::size_t i = 0; i < 64; ++i) {
    if (i % 4 != 1) system.Tracker(i).chord().Crash();
  }
  system.ring().OracleBootstrap();
  const unsigned lp_after = system.RecomputePrefixLength();
  ASSERT_LT(lp_after, lp_before);
  EXPECT_GT(system.metrics().Counter("track.triangle_merge"), 0u);

  // All buckets now at the new shape.
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    if (!system.Tracker(i).chord().Alive()) continue;
    for (const auto& prefix : system.Tracker(i).prefix_store().Prefixes()) {
      EXPECT_GE(prefix.length, lp_after);
      EXPECT_LE(prefix.length, lp_after + 1);
    }
  }

  // Entries survived on alive nodes (dead nodes' entries are lost, as in
  // Chord without replication; check only that a live-gateway object still
  // resolves).
  util::Rng rng(3);
  std::size_t resolved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    std::size_t origin = 1;  // Index 1 stayed alive (i % 4 == 1).
    bool done = false;
    system.LocateQuery(origin, object, [&](TrackerNode::LocateResult result) {
      if (result.ok) ++resolved;
      done = true;
    });
    system.Run();
    ASSERT_TRUE(done);
  }
  // Three quarters of the gateways died with their entries (Chord without
  // replication loses crashed state); require a sane floor, not an exact
  // count.
  EXPECT_GT(resolved, 2u);
}

TEST(DataTriangle, DisabledTriangleStillCorrectJustUnbalanced) {
  SystemConfig config = TriangleConfig(16);
  config.tracker.enable_triangle = false;
  TrackingSystem system(8, config);
  const auto scenario = workload::ExecuteScenario(system, SmallWorkload(8, 150), 5);
  EXPECT_EQ(system.metrics().Counter("track.triangle_delegation"), 0u);

  util::Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    bool done = false;
    system.LocateQuery(rng.NextBelow(system.NodeCount()), object,
                       [&](TrackerNode::LocateResult result) {
                         EXPECT_TRUE(result.ok);
                         done = true;
                       });
    system.Run();
    ASSERT_TRUE(done);
  }
}

}  // namespace
}  // namespace peertrack::tracking
