// End-to-end tests: captures flow through indexing (both modes), IOP links
// form, and distributed queries agree with the ground-truth oracle.

#include <gtest/gtest.h>

#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

using moods::NodeIndex;

SystemConfig MakeConfig(IndexingMode mode, std::uint64_t seed = 0xfeedULL) {
  SystemConfig config;
  config.tracker.mode = mode;
  config.tracker.window.tmax_ms = 100.0;
  config.tracker.window.nmax = 64;
  config.tracker.lmin = 2;
  config.seed = seed;
  return config;
}

/// Compare a distributed trace result against the oracle's full trajectory.
void ExpectMatchesOracle(TrackingSystem& system, const hash::UInt160& object,
                         const TrackerNode::TraceResult& result) {
  const auto* expected = system.oracle().FullTrace(object);
  ASSERT_NE(expected, nullptr);
  ASSERT_TRUE(result.ok) << "query failed for " << object.ToShortHex();
  ASSERT_EQ(result.path.size(), expected->size());
  for (std::size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(system.NodeIndexOfActor(result.path[i].node.actor), (*expected)[i].node)
        << "step " << i;
    EXPECT_DOUBLE_EQ(result.path[i].arrived, (*expected)[i].arrived) << "step " << i;
  }
}

class TraceModes : public ::testing::TestWithParam<IndexingMode> {};

TEST_P(TraceModes, SingleObjectFullTrace) {
  TrackingSystem system(16, MakeConfig(GetParam()));
  const auto object = hash::ObjectKey("epc:solo");
  workload::InjectTrajectory(system, object, {3, 7, 1, 12, 5}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  bool done = false;
  system.TraceQuery(0, object, [&](TrackerNode::TraceResult result) {
    ExpectMatchesOracle(system, object, result);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST_P(TraceModes, UnmovedObjectHasSingleStepTrace) {
  TrackingSystem system(8, MakeConfig(GetParam()));
  const auto object = hash::ObjectKey("epc:static");
  workload::InjectTrajectory(system, object, {4}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  bool done = false;
  system.TraceQuery(2, object, [&](TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    ASSERT_EQ(result.path.size(), 1u);
    EXPECT_EQ(system.NodeIndexOfActor(result.path[0].node.actor), 4u);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST_P(TraceModes, UnknownObjectReportsNotFound) {
  TrackingSystem system(8, MakeConfig(GetParam()));
  system.Run();
  bool done = false;
  system.TraceQuery(1, hash::ObjectKey("epc:ghost"), [&](TrackerNode::TraceResult r) {
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.path.empty());
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST_P(TraceModes, LocateReturnsLatestLocation) {
  TrackingSystem system(16, MakeConfig(GetParam()));
  const auto object = hash::ObjectKey("epc:locate-me");
  workload::InjectTrajectory(system, object, {2, 9, 14}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  bool done = false;
  system.LocateQuery(5, object, [&](TrackerNode::LocateResult result) {
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(system.NodeIndexOfActor(result.node.actor), 14u);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST_P(TraceModes, ManyObjectsAllTracesMatchOracle) {
  TrackingSystem system(24, MakeConfig(GetParam()));
  workload::MovementParams params;
  params.nodes = 24;
  params.objects_per_node = 40;
  params.move_fraction = 0.25;
  params.trace_length = 6;
  params.move_in_groups = (GetParam() == IndexingMode::kGroup);
  params.step_ms = 1000.0;
  const auto scenario = workload::ExecuteScenario(system, params, /*epc_seed=*/7);

  // Query a sample of movers and non-movers from random origins.
  util::Rng rng(99);
  std::size_t checked = 0;
  for (std::size_t trial = 0; trial < 30; ++trial) {
    const bool pick_mover = trial % 2 == 0 && !scenario.movers.empty();
    const std::uint64_t seq =
        pick_mover
            ? scenario.movers[rng.NextBelow(scenario.movers.size())]
            : rng.NextBelow(scenario.object_keys.size());
    const auto& object = scenario.object_keys[seq];
    const auto origin = static_cast<std::size_t>(rng.NextBelow(system.NodeCount()));
    bool done = false;
    system.TraceQuery(origin, object, [&](TrackerNode::TraceResult result) {
      ExpectMatchesOracle(system, object, result);
      done = true;
    });
    system.Run();
    ASSERT_TRUE(done);
    ++checked;
  }
  EXPECT_EQ(checked, 30u);
}

TEST_P(TraceModes, QueryTimeIncludesNetworkLatency) {
  TrackingSystem system(32, MakeConfig(GetParam()));
  const auto object = hash::ObjectKey("epc:timed");
  workload::InjectTrajectory(system, object, {1, 2, 3}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  bool done = false;
  system.TraceQuery(17, object, [&](TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    // At least one network round-trip at 5 ms per message (unless node 17
    // handled everything locally, which the chosen object avoids).
    EXPECT_GT(result.DurationMs(), 0.0);
    EXPECT_LT(result.DurationMs(), 1000.0);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceModes,
                         ::testing::Values(IndexingMode::kIndividual,
                                           IndexingMode::kGroup));

TEST(TrackingSystem, IopLinksFormDoublyLinkedList) {
  TrackingSystem system(8, MakeConfig(IndexingMode::kIndividual));
  const auto object = hash::ObjectKey("epc:links");
  workload::InjectTrajectory(system, object, {0, 3, 6}, 10.0, 500.0);
  system.Run();

  // Node 0: first appearance, to -> node 3.
  const auto* v0 = system.Tracker(0).iop().VisitsOf(object);
  ASSERT_NE(v0, nullptr);
  ASSERT_EQ(v0->size(), 1u);
  ASSERT_TRUE(v0->front().from.has_value());
  EXPECT_FALSE(v0->front().from->Valid());  // nil: first node of the trace.
  ASSERT_TRUE(v0->front().to.has_value());
  EXPECT_EQ(system.NodeIndexOfActor(v0->front().to->actor), 3u);

  // Node 3: from node 0, to node 6.
  const auto* v3 = system.Tracker(3).iop().VisitsOf(object);
  ASSERT_NE(v3, nullptr);
  EXPECT_EQ(system.NodeIndexOfActor((*v3)[0].from->actor), 0u);
  EXPECT_EQ(system.NodeIndexOfActor((*v3)[0].to->actor), 6u);

  // Node 6: from node 3, still here.
  const auto* v6 = system.Tracker(6).iop().VisitsOf(object);
  ASSERT_NE(v6, nullptr);
  EXPECT_EQ(system.NodeIndexOfActor((*v6)[0].from->actor), 3u);
  EXPECT_FALSE((*v6)[0].to.has_value());
}

TEST(TrackingSystem, GroupModeBatchesIndexMessages) {
  // Same workload, both modes: group indexing must send substantially
  // fewer routed index messages (the paper's core claim).
  // Group indexing pays off when windows hold many more objects than there
  // are prefix groups (paper Section IV-C1: No >> 2^Lp); size the windows
  // accordingly.
  workload::MovementParams params;
  params.nodes = 16;
  params.objects_per_node = 500;
  params.move_fraction = 0.1;
  params.trace_length = 4;
  params.move_in_groups = true;

  auto individual_config = MakeConfig(IndexingMode::kIndividual);
  TrackingSystem individual(16, individual_config);
  const auto r1 = workload::ExecuteScenario(individual, params, 7);

  auto group_config = MakeConfig(IndexingMode::kGroup);
  group_config.tracker.window.nmax = 1024;
  TrackingSystem group(16, group_config);
  const auto r2 = workload::ExecuteScenario(group, params, 7);

  EXPECT_GT(r1.indexing_messages, r2.indexing_messages);
  EXPECT_LT(static_cast<double>(r2.indexing_messages),
            0.8 * static_cast<double>(r1.indexing_messages));
}

TEST(TrackingSystem, IntermediateNodeCanAnswerTraceQuery) {
  TrackingSystem system(16, MakeConfig(IndexingMode::kIndividual));
  const auto object = hash::ObjectKey("epc:intercept");
  workload::InjectTrajectory(system, object, {2, 11}, 10.0, 500.0);
  system.Run();

  // Query from node 2 itself — it witnessed the object, so the query is
  // answered without routing to the gateway (0 probe hops) and must still
  // produce the full, forward-walked trace.
  bool done = false;
  system.TraceQuery(2, object, [&](TrackerNode::TraceResult result) {
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.probe_hops, 0u);
    ASSERT_EQ(result.path.size(), 2u);
    EXPECT_EQ(system.NodeIndexOfActor(result.path[0].node.actor), 2u);
    EXPECT_EQ(system.NodeIndexOfActor(result.path[1].node.actor), 11u);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(TrackingSystem, GatewayLoadSpreadAcrossNodes) {
  // With Scheme 2, nearly every node should carry some indexing load
  // (δ ≈ 1, Eq. 5).
  TrackingSystem system(32, MakeConfig(IndexingMode::kGroup));
  workload::MovementParams params;
  params.nodes = 32;
  params.objects_per_node = 300;
  params.move_fraction = 0.0;
  params.trace_length = 1;
  workload::ExecuteScenario(system, params, 11);

  const auto loads = system.IndexLoadPerNode();
  EXPECT_GT(util::NonZeroFraction(loads), 0.75);
}

TEST(TrackingSystem, WindowTimerFlushesWithoutManualFlush) {
  TrackingSystem system(8, MakeConfig(IndexingMode::kGroup));
  const auto object = hash::ObjectKey("epc:timer");
  system.CaptureAt(3, object, 10.0);
  // Run far past the Tmax deadline; no manual FlushAllWindows.
  system.Run();
  EXPECT_GE(system.Tracker(3).WindowsFlushed(), 1u);

  bool done = false;
  system.LocateQuery(0, object, [&](TrackerNode::LocateResult result) {
    EXPECT_TRUE(result.ok);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(TrackingSystem, NmaxCausesImmediateFlush) {
  auto config = MakeConfig(IndexingMode::kGroup);
  config.tracker.window.nmax = 5;
  config.tracker.window.tmax_ms = 1e9;  // Timer effectively disabled.
  TrackingSystem system(8, config);
  for (int i = 0; i < 5; ++i) {
    system.CaptureAt(2, hash::ObjectKey("epc:burst-" + std::to_string(i)), 10.0);
  }
  system.Run();
  EXPECT_EQ(system.Tracker(2).WindowsFlushed(), 1u);
}

TEST(TrackingSystem, ConsecutiveCapturesAtSameNodeDoNotSelfLoop) {
  // Regression: an object re-captured at the node it is already at (e.g. a
  // second reader in the same warehouse) once created a to-link pointing at
  // its own visit, cycling trace walks forever.
  for (const IndexingMode mode : {IndexingMode::kIndividual, IndexingMode::kGroup}) {
    TrackingSystem system(8, MakeConfig(mode));
    const auto object = hash::ObjectKey("epc:sessile");
    workload::InjectTrajectory(system, object, {4, 4, 4}, 10.0, 500.0);
    system.Run();
    system.FlushAllWindows();

    bool done = false;
    system.TraceQuery(1, object, [&](TrackerNode::TraceResult result) {
      ExpectMatchesOracle(system, object, result);
      done = true;
    });
    system.Run();
    ASSERT_TRUE(done);
  }
}

TEST(TrackingSystem, ObjectRevisitingANodeTracesCorrectly) {
  TrackingSystem system(8, MakeConfig(IndexingMode::kIndividual));
  const auto object = hash::ObjectKey("epc:boomerang");
  // 2 -> 5 -> 2: returns to its origin.
  workload::InjectTrajectory(system, object, {2, 5, 2}, 10.0, 500.0);
  system.Run();

  bool done = false;
  system.TraceQuery(7, object, [&](TrackerNode::TraceResult result) {
    ExpectMatchesOracle(system, object, result);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(TrackingSystem, SingleNodeNetworkWorks) {
  TrackingSystem system(1, MakeConfig(IndexingMode::kGroup));
  const auto object = hash::ObjectKey("epc:lonely");
  system.CaptureAt(0, object, 10.0);
  system.Run();
  system.FlushAllWindows();
  bool done = false;
  system.TraceQuery(0, object, [&](TrackerNode::TraceResult result) {
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.path.size(), 1u);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
}

TEST(TrackingSystem, QueryToDownGatewayFailsWithErrorInsteadOfHanging) {
  TrackingSystem system(16, MakeConfig(IndexingMode::kIndividual));

  // Pick an object whose gateway is neither on its trajectory {1, 2} nor
  // the query origin 0, so the query genuinely depends on the gateway.
  hash::UInt160 object;
  TrackerNode* gateway = nullptr;
  for (int salt = 0;; ++salt) {
    object = hash::ObjectKey("epc:down-gw-" + std::to_string(salt));
    gateway = system.OwnerOf(object);
    ASSERT_NE(gateway, nullptr);
    const auto index = system.NodeIndexOfActor(gateway->Self().actor);
    if (index != 0 && index != 1 && index != 2) break;
  }
  workload::InjectTrajectory(system, object, {1, 2}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();

  system.network().SetUp(gateway->Self().actor, false);

  bool trace_done = false;
  system.TraceQuery(0, object, [&](TrackerNode::TraceResult result) {
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.path.empty());
    trace_done = true;
  });
  system.Run();
  EXPECT_TRUE(trace_done);

  bool locate_done = false;
  system.LocateQuery(0, object, [&](TrackerNode::LocateResult result) {
    EXPECT_FALSE(result.ok);
    locate_done = true;
  });
  system.Run();
  EXPECT_TRUE(locate_done);

  // The failures came from exhausted RPC attempts, not the global safety
  // timer: the per-hop deadlines fail the query long before 60 s.
  EXPECT_GE(system.metrics().RpcTimeouts(), 1u);
  EXPECT_GE(system.metrics().Counter("track.probe_timeout"), 1u);
  EXPECT_EQ(system.metrics().Counter("track.query_timeout"), 0u);
}

TEST(TrackingSystem, DeterministicAcrossRuns) {
  auto run_once = [] {
    TrackingSystem system(16, MakeConfig(IndexingMode::kGroup, 0xabcdULL));
    workload::MovementParams params;
    params.nodes = 16;
    params.objects_per_node = 50;
    params.move_fraction = 0.2;
    params.trace_length = 4;
    const auto result = workload::ExecuteScenario(system, params, 3);
    return std::make_pair(result.indexing_messages, result.indexing_bytes);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace peertrack::tracking
