// Exporter tests: the time-series sampler must emit monotone sim-time rows
// with the expected instruments, and the Perfetto exporter must produce
// valid trace-event JSON (checked with a small recursive-descent parser —
// no JSON library in the toolchain, and hand-rolling the check keeps the
// test honest about syntax, not just substrings).

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <string>
#include <string_view>

#include "obs/export.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::obs {
namespace {

// --- Minimal JSON validator -------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool Validate() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

  std::size_t objects_seen = 0;

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return ParseLiteral("true");
      case 'f': return ParseLiteral("false");
      case 'n': return ParseLiteral("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    ++objects_seen;
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(JsonParser, SelfCheck) {
  EXPECT_TRUE(JsonParser(R"({"a":[1,2.5,-3e2],"b":"x\"y","c":null})").Validate());
  EXPECT_FALSE(JsonParser(R"({"a":1)").Validate());
  EXPECT_FALSE(JsonParser(R"({"a":})").Validate());
  EXPECT_FALSE(JsonParser("{} trailing").Validate());
}

// --- Perfetto exporter ------------------------------------------------------

TEST(PerfettoExporter, EmptyTracerIsValidJson) {
  Tracer tracer;
  const std::string json = PerfettoExporter::ToJson(tracer);
  EXPECT_TRUE(JsonParser(json).Validate()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(PerfettoExporter, SpansAndMessagesExportAsEvents) {
  Tracer tracer;
  tracer.SetEnabled(true);
  const TraceContext root = tracer.StartTrace("query.trace", 3, 100.0);
  const TraceContext child = tracer.StartSpan(root, "query.probe#1", 3, 105.0);
  tracer.RecordMessage(106.0, 3, 7, "track.probe", 52, child);
  tracer.EndSpan(child, 115.0, "ok");
  tracer.EndSpan(root, 120.0, "ok");
  // A still-open span and a name needing escaping must not break the JSON.
  tracer.StartTrace("weird\"name\n", 1, 130.0);

  const std::string json = PerfettoExporter::ToJson(tracer);
  JsonParser parser(json);
  ASSERT_TRUE(parser.Validate()) << json;
  EXPECT_GE(parser.objects_seen, 5u);  // document + 3 spans + 1 message
  EXPECT_NE(json.find("\"query.trace\""), std::string::npos);
  EXPECT_NE(json.find("\"msg:track.probe\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // 100 ms -> 100000 us.
  EXPECT_NE(json.find("\"ts\":100000"), std::string::npos);
}

TEST(PerfettoExporter, EndToEndTraceIsValidJson) {
  tracking::TrackingSystem system(16, [] {
    tracking::SystemConfig config;
    config.tracker.mode = tracking::IndexingMode::kGroup;
    config.seed = 0xfeedULL;
    return config;
  }());
  system.network().tracer().SetEnabled(true);
  const auto object = hash::ObjectKey("epc:exported");
  workload::InjectTrajectory(system, object, {3, 7, 1}, 10.0, 500.0);
  system.Run();
  system.FlushAllWindows();
  bool done = false;
  system.TraceQuery(0, object,
                    [&](tracking::TrackerNode::TraceResult) { done = true; });
  system.Run();
  ASSERT_TRUE(done);

  const std::string json = PerfettoExporter::ToJson(system.network().tracer());
  JsonParser parser(json);
  EXPECT_TRUE(parser.Validate());
  EXPECT_GT(parser.objects_seen, 10u);
}

// --- Time-series sampler ----------------------------------------------------

TEST(TimeSeriesSampler, RowsAreMonotoneInSimTime) {
  tracking::TrackingSystem system(8, [] {
    tracking::SystemConfig config;
    config.tracker.mode = tracking::IndexingMode::kIndividual;
    config.seed = 0xfeedULL;
    return config;
  }());
  TimeSeriesSampler sampler(system.simulator(), system.metrics());
  sampler.Start(/*period_ms=*/100.0, /*until_ms=*/2000.0);
  const auto object = hash::ObjectKey("epc:sampled");
  workload::InjectTrajectory(system, object, {1, 4, 6}, 10.0, 500.0);
  system.Run();

  ASSERT_FALSE(sampler.rows().empty());
  double last_t = 0.0;
  std::set<std::string> instruments;
  for (const TimeSeriesSampler::Row& row : sampler.rows()) {
    EXPECT_GE(row.t_ms, last_t);
    last_t = row.t_ms;
    instruments.insert(row.instrument);
  }
  // Ticks every 100 ms up to the 2000 ms horizon, sampling the built-ins.
  EXPECT_GE(last_t, 1000.0);
  EXPECT_LE(last_t, 2000.0);
  EXPECT_TRUE(instruments.contains("total_messages"));
  EXPECT_TRUE(instruments.contains("total_bytes"));
  EXPECT_TRUE(instruments.contains("rpc_retries"));

  // total_messages must itself be non-decreasing over time.
  double last_messages = 0.0;
  for (const TimeSeriesSampler::Row& row : sampler.rows()) {
    if (row.instrument != "total_messages") continue;
    EXPECT_GE(row.value, last_messages);
    last_messages = row.value;
  }
  EXPECT_GT(last_messages, 0.0);
}

TEST(TimeSeriesSampler, DoesNotKeepTheSimulatorAlivePastHorizon) {
  sim::Metrics metrics;
  sim::Simulator simulator;
  // No other events: the sampler's own ticks are the only queue entries and
  // must stop at the horizon instead of rescheduling forever.
  TimeSeriesSampler sampler(simulator, metrics);
  sampler.Start(10.0, 100.0);
  simulator.Run();
  EXPECT_LE(simulator.Now(), 100.0);
  // t=0 plus ten ticks.
  std::size_t samples = 0;
  for (const auto& row : sampler.rows()) {
    if (row.instrument == "total_messages") ++samples;
  }
  EXPECT_EQ(samples, 11u);
}

TEST(TimeSeriesSampler, HistogramsAndCountersAppearInRows) {
  sim::Metrics metrics;
  sim::Simulator simulator;
  metrics.Bump("my.counter", 4);
  metrics.registry().GetGauge("my.gauge").Set(2.5);
  metrics.RecordLatency("op_ms", 12.0);
  TimeSeriesSampler sampler(simulator, metrics);
  sampler.SampleNow();

  std::set<std::string> instruments;
  for (const auto& row : sampler.rows()) instruments.insert(row.instrument);
  EXPECT_TRUE(instruments.contains("counter:my.counter"));
  EXPECT_TRUE(instruments.contains("gauge:my.gauge"));
  EXPECT_TRUE(instruments.contains("latency:op_ms.count"));
  EXPECT_TRUE(instruments.contains("latency:op_ms.p50"));
  EXPECT_TRUE(instruments.contains("latency:op_ms.p99"));
  EXPECT_TRUE(instruments.contains("latency:op_ms.max"));
}

TEST(TimeSeriesSampler, WritesCsvAndJsonl) {
  sim::Metrics metrics;
  sim::Simulator simulator;
  metrics.Bump("c");
  TimeSeriesSampler sampler(simulator, metrics);
  sampler.SampleNow();

  const std::string dir = ::testing::TempDir();
  const std::string csv_path = dir + "/obs_series.csv";
  const std::string jsonl_path = dir + "/obs_series.jsonl";
  ASSERT_TRUE(sampler.WriteCsv(csv_path));
  ASSERT_TRUE(sampler.WriteJsonl(jsonl_path));

  std::ifstream csv(csv_path);
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_EQ(header, "t_ms,instrument,value");
  std::size_t csv_rows = 0;
  for (std::string line; std::getline(csv, line);) ++csv_rows;
  EXPECT_EQ(csv_rows, sampler.rows().size());

  std::ifstream jsonl(jsonl_path);
  std::size_t jsonl_rows = 0;
  for (std::string line; std::getline(jsonl, line);) {
    EXPECT_TRUE(JsonParser(line).Validate()) << line;
    ++jsonl_rows;
  }
  EXPECT_EQ(jsonl_rows, sampler.rows().size());
}

}  // namespace
}  // namespace peertrack::obs
