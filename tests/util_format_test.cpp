#include "util/format.hpp"

#include <gtest/gtest.h>

namespace peertrack::util {
namespace {

TEST(Format, PlainPlaceholders) {
  EXPECT_EQ(Format("hello {}", "world"), "hello world");
  EXPECT_EQ(Format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(Format("no args"), "no args");
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(Format("{{}}"), "{}");
  EXPECT_EQ(Format("{{{}}}", 7), "{7}");
}

TEST(Format, FloatPrecision) {
  EXPECT_EQ(Format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(Format("{:.0f}", 2.718), "3");
  EXPECT_EQ(Format("{:.3e}", 12345.678).substr(0, 5), "1.235");
}

TEST(Format, WidthAndAlignment) {
  EXPECT_EQ(Format("{:>6}", 42), "    42");
  EXPECT_EQ(Format("{:<6}|", 42), "42    |");
  EXPECT_EQ(Format("{:^6}|", "ab"), "  ab  |");
  // Numbers right-align by default, strings left-align.
  EXPECT_EQ(Format("{:6}", 42), "    42");
  EXPECT_EQ(Format("{:6}|", "ab"), "ab    |");
}

TEST(Format, FillCharacter) {
  EXPECT_EQ(Format("{:0>4}", 7), "0007");
  EXPECT_EQ(Format("{:*<5}", "x"), "x****");
}

TEST(Format, IntegerTypes) {
  EXPECT_EQ(Format("{}", std::uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
  EXPECT_EQ(Format("{}", std::int64_t{-42}), "-42");
  EXPECT_EQ(Format("{:x}", 255), "ff");
}

TEST(Format, BoolAndChar) {
  EXPECT_EQ(Format("{} {}", true, false), "true false");
  EXPECT_EQ(Format("{}", 'z'), "z");
}

TEST(Format, StringTypes) {
  const std::string s = "abc";
  const std::string_view sv = "def";
  EXPECT_EQ(Format("{} {} {}", s, sv, "ghi"), "abc def ghi");
}

TEST(Format, TooFewArgumentsRendersMarker) {
  EXPECT_EQ(Format("{} {}", 1), "1 {?}");
}

TEST(Format, FormatDoubleHelper) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace peertrack::util
