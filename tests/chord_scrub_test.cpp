// Successor-list scrubbing via death-certificate gossip (regression).
//
// Pre-fix gap (DESIGN.md §8, PR 4 known-open): successor lists only shed a
// dead node when the holder *itself* probes it — i.e. when the corpse sits
// at the head of the list. Deeper slots are refilled by gossip merges,
// which only ever add, so a node two or more hops upstream of the crash
// keeps the dead entry forever and the ring.successor_list invariant warns
// indefinitely. The fix gossips death certificates on stabilize replies,
// letting every upstream holder evict the corpse without probing it.
//
// `Options::death_cert_ttl_ms = 0` disables the gossip and restores the
// pre-fix behaviour, which the first test pins down as a reproducer.

#include <gtest/gtest.h>

#include "chord/chord_ring.hpp"
#include "obs/invariants.hpp"
#include "util/format.hpp"

namespace peertrack::chord {
namespace {

class ScrubFixture {
 public:
  explicit ScrubFixture(double death_cert_ttl_ms)
      : latency_(5.0),
        rng_(17),
        net_(sim_, latency_, rng_),
        ring_(net_, RingOptions(death_cert_ttl_ms)) {}

  static ChordRing::Options RingOptions(double death_cert_ttl_ms) {
    ChordRing::Options options;
    options.stabilize_every_ms = 100.0;
    options.fix_fingers_every_ms = 10.0;
    options.node.death_cert_ttl_ms = death_cert_ttl_ms;
    return options;
  }

  void Settle(double ms) { sim_.RunUntil(sim_.Now() + ms); }

  /// Deepest zero-based successor-list slot holding `actor` on any alive
  /// node (-1 when fully scrubbed).
  int DeepestRetainedSlot(sim::ActorId actor) const {
    int deepest = -1;
    for (const auto& node : ring_.Nodes()) {
      if (!node->Alive()) continue;
      const auto& entries = node->successors().Entries();
      for (std::size_t slot = 0; slot < entries.size(); ++slot) {
        if (entries[slot].actor == actor) {
          deepest = std::max(deepest, static_cast<int>(slot));
        }
      }
    }
    return deepest;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_;
  util::Rng rng_;
  sim::Network net_;
  ChordRing ring_;
};

TEST(ChordScrub, PreFixPathRetainsCrashedNodeInDeepSlots) {
  // Reproducer: with death-cert gossip disabled, only the crashed node's
  // immediate neighbourhood (whoever probes it as First()) evicts it; a
  // holder that never probed it keeps the corpse at slot >= 2 forever.
  ScrubFixture f(/*death_cert_ttl_ms=*/0.0);
  for (int i = 0; i < 12; ++i) f.ring_.AddNode(util::Format("pre-{}", i));
  f.ring_.ProtocolBootstrap(30000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  const sim::ActorId crashed = f.ring_.Node(5).Self().actor;
  f.ring_.Node(5).Crash();
  f.Settle(120000.0);  // Ample time: the gap never heals, however long.

  EXPECT_TRUE(f.ring_.IsConverged()) << "failover itself still works";
  EXPECT_GE(f.DeepestRetainedSlot(crashed), 2)
      << "expected the pre-fix path to strand the corpse in a deep slot";
  EXPECT_EQ(f.net_.metrics().Counter("chord.death_cert_scrub"), 0u);
}

TEST(ChordScrub, DeathCertGossipScrubsEveryList) {
  // Same scenario with the fix enabled (default TTL): certificates ride
  // stabilize replies upstream and every holder evicts the corpse.
  ScrubFixture f(/*death_cert_ttl_ms=*/30000.0);
  for (int i = 0; i < 12; ++i) f.ring_.AddNode(util::Format("fix-{}", i));
  f.ring_.ProtocolBootstrap(30000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  const sim::ActorId crashed = f.ring_.Node(5).Self().actor;
  f.ring_.Node(5).Crash();
  f.Settle(120000.0);

  EXPECT_TRUE(f.ring_.IsConverged());
  EXPECT_EQ(f.DeepestRetainedSlot(crashed), -1)
      << "a death certificate should have reached every upstream holder";
  EXPECT_GT(f.net_.metrics().Counter("chord.death_cert_scrub"), 0u);
}

TEST(ChordScrub, SuccessorListInvariantHealsWithGossip) {
  // The PR 4 known-open ring.successor_list warning now closes: attach the
  // monitor, crash a node, and require zero open violations at quiesce.
  ScrubFixture f(/*death_cert_ttl_ms=*/30000.0);
  for (int i = 0; i < 12; ++i) f.ring_.AddNode(util::Format("mon-{}", i));
  f.ring_.ProtocolBootstrap(30000.0);
  ASSERT_TRUE(f.ring_.IsConverged());

  obs::InvariantMonitor monitor(f.sim_, f.net_.metrics().registry());
  obs::InstallRingChecks(monitor, f.ring_);
  monitor.Start(/*period_ms=*/500.0, /*until_ms=*/f.sim_.Now() + 120000.0);

  f.ring_.Node(3).Crash();
  f.ring_.Node(8).Crash();
  f.Settle(120000.0);
  monitor.RunOnce();

  EXPECT_TRUE(f.ring_.IsConverged());
  EXPECT_EQ(monitor.ledger().OpenCount("ring.successor_list"), 0u)
      << "deep-slot corpses must be scrubbed, not left as permanent warns";
  EXPECT_EQ(monitor.OpenViolations(), 0u);
}

}  // namespace
}  // namespace peertrack::chord
