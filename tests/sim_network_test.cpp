#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peertrack::sim {
namespace {

struct TestMessage final : MessageBase<TestMessage> {
  explicit TestMessage(int v) : value(v) {}
  int value;
  std::string_view TypeName() const noexcept override { return "test.msg"; }
  std::size_t ApproxBytes() const noexcept override { return 4; }
};

struct Recorder final : Actor {
  std::vector<std::pair<ActorId, int>> received;
  double* clock = nullptr;
  std::vector<double> receive_times;
  Simulator* sim = nullptr;

  void OnMessage(ActorId from, std::unique_ptr<Message> message) override {
    ASSERT_EQ(message->TypeId(), MsgTypeIdOf<TestMessage>());
    auto* msg = static_cast<TestMessage*>(message.get());
    received.emplace_back(from, msg->value);
    if (sim != nullptr) receive_times.push_back(sim->Now());
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : latency_(5.0), rng_(1), net_(sim_, latency_, rng_) {}

  Simulator sim_;
  ConstantLatency latency_;
  util::Rng rng_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  Recorder a, b;
  b.sim = &sim_;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  net_.Send(ida, idb, std::make_unique<TestMessage>(42));
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(b.received[0].second, 42);
  EXPECT_DOUBLE_EQ(b.receive_times[0], 5.0);
}

TEST_F(NetworkTest, RemoteSendIsCounted) {
  Recorder a, b;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  net_.Send(ida, idb, std::make_unique<TestMessage>(1));
  sim_.Run();
  EXPECT_EQ(net_.metrics().TotalMessages(), 1u);
  EXPECT_EQ(net_.metrics().TotalBytes(), kMessageHeaderBytes + 4);
  EXPECT_EQ(net_.metrics().ForType("test.msg").count, 1u);
}

TEST_F(NetworkTest, SelfSendIsFreeAndImmediate) {
  Recorder a;
  a.sim = &sim_;
  const ActorId ida = net_.Register(a);
  net_.Send(ida, ida, std::make_unique<TestMessage>(9));
  sim_.Run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_DOUBLE_EQ(a.receive_times[0], 0.0);
  EXPECT_EQ(net_.metrics().TotalMessages(), 0u);
}

TEST_F(NetworkTest, DownActorDropsAndCounts) {
  Recorder a, b;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  net_.SetUp(idb, false);
  net_.Send(ida, idb, std::make_unique<TestMessage>(3));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net_.metrics().DroppedMessages(), 1u);
  // The send itself was still counted (the sender paid for it).
  EXPECT_EQ(net_.metrics().TotalMessages(), 1u);
}

TEST_F(NetworkTest, MessageInFlightWhenReceiverGoesDownIsDropped) {
  Recorder a, b;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  net_.Send(ida, idb, std::make_unique<TestMessage>(3));
  // Receiver crashes before the 5 ms delivery.
  sim_.ScheduleAt(1.0, [&] { net_.SetUp(idb, false); });
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net_.metrics().DroppedMessages(), 1u);
}

TEST_F(NetworkTest, SendInstantDeliversSynchronously) {
  Recorder a, b;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  net_.SendInstant(ida, idb, std::make_unique<TestMessage>(7));
  // No simulator run needed.
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net_.metrics().TotalMessages(), 1u);
}

TEST_F(NetworkTest, PerActorCountsTrackSendersAndReceivers) {
  Recorder a, b;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  for (int i = 0; i < 3; ++i) net_.Send(ida, idb, std::make_unique<TestMessage>(i));
  sim_.Run();
  ASSERT_GT(net_.metrics().SentPerActor().size(), ida);
  ASSERT_GT(net_.metrics().ReceivedPerActor().size(), idb);
  EXPECT_EQ(net_.metrics().SentPerActor()[ida], 3u);
  EXPECT_EQ(net_.metrics().ReceivedPerActor()[idb], 3u);
}

TEST_F(NetworkTest, MetricsResetClears) {
  Recorder a, b;
  const ActorId ida = net_.Register(a);
  const ActorId idb = net_.Register(b);
  net_.Send(ida, idb, std::make_unique<TestMessage>(0));
  sim_.Run();
  net_.metrics().Reset();
  EXPECT_EQ(net_.metrics().TotalMessages(), 0u);
  EXPECT_EQ(net_.metrics().ForType("test.msg").count, 0u);
}

TEST(LatencyModels, ConstantAndFactory) {
  util::Rng rng(2);
  ConstantLatency c(5.0);
  EXPECT_DOUBLE_EQ(c.Sample(rng), 5.0);

  auto model = MakeLatencyModel("constant:2.5");
  EXPECT_DOUBLE_EQ(model->Sample(rng), 2.5);

  auto uniform = MakeLatencyModel("uniform:1:3");
  for (int i = 0; i < 100; ++i) {
    const double v = uniform->Sample(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 3.0);
  }

  auto lognormal = MakeLatencyModel("lognormal:5:0.5");
  for (int i = 0; i < 100; ++i) EXPECT_GT(lognormal->Sample(rng), 0.0);

  // Unknown spec falls back to constant 5.
  EXPECT_DOUBLE_EQ(MakeLatencyModel("bogus")->Sample(rng), 5.0);
}

}  // namespace
}  // namespace peertrack::sim
