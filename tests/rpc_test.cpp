// Unit tests for the typed RPC layer: dispatcher routing, correlation,
// retry/backoff schedule, timeout semantics, and metrics accounting.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rpc/dispatcher.hpp"
#include "rpc/rpc.hpp"
#include "sim/network.hpp"

namespace peertrack::rpc {
namespace {

struct EchoRequest final : RequestBase<EchoRequest> {
  int payload = 0;
  std::string_view TypeName() const noexcept override { return "rpc_test.echo_req"; }
  std::size_t ApproxBytes() const noexcept override { return kCallIdBytes + 4; }
};

struct EchoResponse final : ResponseBase<EchoResponse> {
  int payload = 0;
  std::string_view TypeName() const noexcept override { return "rpc_test.echo_resp"; }
  std::size_t ApproxBytes() const noexcept override { return kCallIdBytes + 4; }
};

struct OtherMessage final : sim::MessageBase<OtherMessage> {
  std::string_view TypeName() const noexcept override { return "rpc_test.other"; }
  std::size_t ApproxBytes() const noexcept override { return 1; }
};

/// Client-side actor: owns a dispatcher and an RpcClient routed through it.
struct CallerActor final : sim::Actor {
  explicit CallerActor(sim::Network& network) : rpc(network) {
    id = network.Register(*this);
    rpc.Bind(id);
    rpc.RouteResponses<EchoResponse>(dispatcher);
  }
  void OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override {
    dispatcher.Dispatch(from, message);
  }
  sim::ActorId id = sim::kInvalidActor;
  Dispatcher dispatcher;
  RpcClient rpc;
};

/// Server-side actor: doubles the payload; optionally stays silent for the
/// first `ignore_first` requests (to exercise the caller's retry path).
struct EchoActor final : sim::Actor {
  explicit EchoActor(sim::Network& network) : server(network) {
    id = network.Register(*this);
    server.Bind(id);
    server.Handle<EchoRequest>(
        dispatcher, [this](sim::ActorId, std::unique_ptr<EchoRequest> request)
                        -> std::unique_ptr<EchoResponse> {
          ++requests_seen;
          if (ignore_first > 0) {
            --ignore_first;
            return nullptr;
          }
          auto response = std::make_unique<EchoResponse>();
          response->payload = request->payload * 2;
          return response;
        });
  }
  void OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override {
    dispatcher.Dispatch(from, message);
  }
  sim::ActorId id = sim::kInvalidActor;
  int requests_seen = 0;
  int ignore_first = 0;
  Dispatcher dispatcher;
  RpcServer server;
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : latency_(5.0), rng_(17), net_(sim_, latency_, rng_) {}

  std::unique_ptr<EchoRequest> MakeRequest(int payload) {
    auto request = std::make_unique<EchoRequest>();
    request->payload = payload;
    return request;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_;
  util::Rng rng_;
  sim::Network net_;
};

// --- Dispatcher ------------------------------------------------------------

TEST(Dispatcher, RoutesByTypeAndReportsUnhandled) {
  Dispatcher dispatcher;
  int echoes = 0;
  dispatcher.On<EchoRequest>(
      [&](sim::ActorId, std::unique_ptr<EchoRequest> request) {
        echoes += request->payload;
      });

  EXPECT_TRUE(dispatcher.Handles(sim::MsgTypeIdOf<EchoRequest>()));
  EXPECT_FALSE(dispatcher.Handles(sim::MsgTypeIdOf<OtherMessage>()));

  std::unique_ptr<sim::Message> handled = std::make_unique<EchoRequest>();
  static_cast<EchoRequest*>(handled.get())->payload = 3;
  EXPECT_TRUE(dispatcher.Dispatch(0, handled));
  EXPECT_EQ(handled, nullptr);  // Consumed.
  EXPECT_EQ(echoes, 3);

  std::unique_ptr<sim::Message> unhandled = std::make_unique<OtherMessage>();
  EXPECT_FALSE(dispatcher.Dispatch(0, unhandled));
  EXPECT_NE(unhandled, nullptr);  // Untouched, caller may fall through.
}

TEST(Dispatcher, ReRegisteringReplacesHandler) {
  Dispatcher dispatcher;
  int first = 0, second = 0;
  dispatcher.On<OtherMessage>([&](sim::ActorId, std::unique_ptr<OtherMessage>) {
    ++first;
  });
  dispatcher.On<OtherMessage>([&](sim::ActorId, std::unique_ptr<OtherMessage>) {
    ++second;
  });
  std::unique_ptr<sim::Message> message = std::make_unique<OtherMessage>();
  EXPECT_TRUE(dispatcher.Dispatch(0, message));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

// --- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicy, BackoffScheduleIsExponential) {
  const RetryPolicy policy{4, 100.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(policy.TimeoutForAttempt(0), 100.0);
  EXPECT_DOUBLE_EQ(policy.TimeoutForAttempt(1), 200.0);
  EXPECT_DOUBLE_EQ(policy.TimeoutForAttempt(2), 400.0);
  EXPECT_DOUBLE_EQ(policy.TimeoutForAttempt(3), 800.0);

  const RetryPolicy gentle{3, 50.0, 1.5, 0.0};
  EXPECT_DOUBLE_EQ(gentle.TimeoutForAttempt(2), 50.0 * 1.5 * 1.5);

  const RetryPolicy single = RetryPolicy::NoRetry(250.0);
  EXPECT_EQ(single.max_attempts, 1);
  EXPECT_DOUBLE_EQ(single.TimeoutForAttempt(0), 250.0);
}

// --- Client / server round trips -------------------------------------------

TEST_F(RpcTest, CallCompletesWithCorrelatedResponse) {
  CallerActor caller(net_);
  EchoActor echo(net_);

  int completions = 0;
  caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(21), RetryPolicy{},
      [&](Status status, std::unique_ptr<EchoResponse> response) {
        EXPECT_EQ(status, Status::kOk);
        ASSERT_NE(response, nullptr);
        EXPECT_EQ(response->payload, 42);
        ++completions;
      });
  EXPECT_EQ(caller.rpc.PendingCalls(), 1u);
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(caller.rpc.PendingCalls(), 0u);
  // Round trip: exactly one request and one response on the wire.
  EXPECT_EQ(net_.metrics().ForType("rpc_test.echo_req").count, 1u);
  EXPECT_EQ(net_.metrics().ForType("rpc_test.echo_resp").count, 1u);
}

TEST_F(RpcTest, ConcurrentCallsCorrelateIndependently) {
  CallerActor caller(net_);
  EchoActor echo(net_);

  std::vector<int> answers;
  for (int i = 1; i <= 5; ++i) {
    caller.rpc.Call<EchoResponse>(
        echo.id, MakeRequest(i), RetryPolicy{},
        [&answers, i](Status status, std::unique_ptr<EchoResponse> response) {
          ASSERT_EQ(status, Status::kOk);
          EXPECT_EQ(response->payload, i * 2);
          answers.push_back(response->payload);
        });
  }
  EXPECT_EQ(caller.rpc.PendingCalls(), 5u);
  sim_.Run();
  EXPECT_EQ(answers.size(), 5u);
  EXPECT_EQ(caller.rpc.PendingCalls(), 0u);
}

TEST_F(RpcTest, RetryRecoversFromSilentServer) {
  CallerActor caller(net_);
  EchoActor echo(net_);
  echo.ignore_first = 2;  // First two attempts vanish; third is answered.

  const RetryPolicy policy{3, 100.0, 2.0, 0.0};
  int completions = 0;
  caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(7), policy,
      [&](Status status, std::unique_ptr<EchoResponse> response) {
        EXPECT_EQ(status, Status::kOk);
        EXPECT_EQ(response->payload, 14);
        ++completions;
      });
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(echo.requests_seen, 3);
  EXPECT_EQ(net_.metrics().RpcRetries(), 2u);
  EXPECT_EQ(net_.metrics().RpcTimeouts(), 0u);
  EXPECT_EQ(net_.metrics().Counter("rpc.retry:rpc_test.echo_req"), 2u);
}

TEST_F(RpcTest, DownPeerFailsFastAfterBackoffSchedule) {
  CallerActor caller(net_);
  EchoActor echo(net_);
  net_.SetUp(echo.id, false);

  const RetryPolicy policy{3, 100.0, 2.0, 0.0};
  int completions = 0;
  double completed_at = -1.0;
  caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(1), policy,
      [&](Status status, std::unique_ptr<EchoResponse> response) {
        EXPECT_EQ(status, Status::kTimeout);
        EXPECT_EQ(response, nullptr);
        ++completions;
        completed_at = sim_.Now();
      });
  sim_.Run();
  EXPECT_EQ(completions, 1);
  // Deadlines 100 + 200 + 400 ms, no jitter: the call fails at exactly 700.
  EXPECT_DOUBLE_EQ(completed_at, 700.0);
  EXPECT_EQ(net_.metrics().RpcRetries(), 2u);
  EXPECT_EQ(net_.metrics().RpcTimeouts(), 1u);
  EXPECT_EQ(net_.metrics().Counter("rpc.timeout:rpc_test.echo_req"), 1u);
  EXPECT_EQ(net_.metrics().DroppedToDownActor(), 3u);  // One per attempt.
  EXPECT_EQ(net_.metrics().DroppedByLoss(), 0u);
}

TEST_F(RpcTest, RetryRecoversFromTransientLoss) {
  CallerActor caller(net_);
  EchoActor echo(net_);
  net_.SetLossRate(1.0);
  // The wire heals before the first retry fires.
  sim_.ScheduleAt(50.0, [&] { net_.SetLossRate(0.0); });

  const RetryPolicy policy{3, 100.0, 2.0, 0.0};
  int completions = 0;
  caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(4), policy,
      [&](Status status, std::unique_ptr<EchoResponse> response) {
        EXPECT_EQ(status, Status::kOk);
        EXPECT_EQ(response->payload, 8);
        ++completions;
      });
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(net_.metrics().RpcRetries(), 1u);
  EXPECT_GE(net_.metrics().DroppedByLoss(), 1u);
}

TEST_F(RpcTest, CancelSuppressesCallback) {
  CallerActor caller(net_);
  EchoActor echo(net_);
  net_.SetUp(echo.id, false);

  int completions = 0;
  const CallId id = caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(1), RetryPolicy{},
      [&](Status, std::unique_ptr<EchoResponse>) { ++completions; });
  caller.rpc.Cancel(id);
  EXPECT_EQ(caller.rpc.PendingCalls(), 0u);
  sim_.Run();
  EXPECT_EQ(completions, 0);
}

TEST_F(RpcTest, CancelAllSuppressesEveryCallback) {
  CallerActor caller(net_);
  EchoActor echo(net_);
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    caller.rpc.Call<EchoResponse>(
        echo.id, MakeRequest(i), RetryPolicy{},
        [&](Status, std::unique_ptr<EchoResponse>) { ++completions; });
  }
  caller.rpc.CancelAll();
  EXPECT_EQ(caller.rpc.PendingCalls(), 0u);
  sim_.Run();
  EXPECT_EQ(completions, 0);
}

TEST_F(RpcTest, LateResponseAfterTimeoutIsIgnored) {
  CallerActor caller(net_);
  EchoActor echo(net_);

  // Deadline (4 ms) shorter than the 10 ms round trip: the call times out
  // first and the response arrives at a completed call — it must be
  // swallowed without invoking anything twice.
  const RetryPolicy policy = RetryPolicy::NoRetry(4.0);
  int completions = 0;
  Status last = Status::kOk;
  caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(9), policy,
      [&](Status status, std::unique_ptr<EchoResponse>) {
        last = status;
        ++completions;
      });
  sim_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(last, Status::kTimeout);
  EXPECT_EQ(echo.requests_seen, 1);  // Server did answer; answer was late.
}

TEST_F(RpcTest, CallbackMayIssueFollowUpCalls) {
  CallerActor caller(net_);
  EchoActor echo(net_);

  // Chained calls from inside completion callbacks (the shape every
  // iterative protocol in the repo uses).
  std::vector<int> results;
  util::UniqueFunction<void(int)> chain = [&](int value) {
    if (value > 8) return;
    caller.rpc.Call<EchoResponse>(
        echo.id, MakeRequest(value), RetryPolicy{},
        [&, value](Status status, std::unique_ptr<EchoResponse> response) {
          ASSERT_EQ(status, Status::kOk);
          results.push_back(response->payload);
          chain(response->payload);
        });
  };
  chain(1);
  sim_.Run();
  // 1 -> 2 -> 4 -> 8 -> 16 (stop).
  EXPECT_EQ(results, (std::vector<int>{2, 4, 8, 16}));
}

TEST_F(RpcTest, JitterSpreadsDeadlinesWithinBounds) {
  CallerActor caller(net_);
  EchoActor echo(net_);
  net_.SetUp(echo.id, false);

  // jitter=0.5 on a 100 ms single attempt: failure lands in [50, 150].
  const RetryPolicy policy{1, 100.0, 2.0, 0.5};
  double completed_at = -1.0;
  caller.rpc.Call<EchoResponse>(
      echo.id, MakeRequest(1), policy,
      [&](Status status, std::unique_ptr<EchoResponse>) {
        EXPECT_EQ(status, Status::kTimeout);
        completed_at = sim_.Now();
      });
  sim_.Run();
  EXPECT_GE(completed_at, 50.0);
  EXPECT_LE(completed_at, 150.0);
}

}  // namespace
}  // namespace peertrack::rpc
