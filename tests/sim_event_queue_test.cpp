#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peertrack::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.Empty()) {
    auto entry = q.Pop();
    entry.action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) q.Pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  auto handle = q.Push(1.0, [&] { fired = true; });
  q.Push(2.0, [] {});
  handle.Cancel();
  int popped = 0;
  while (!q.Empty()) {
    q.Pop().action();
    ++popped;
  }
  EXPECT_FALSE(fired);
  EXPECT_EQ(popped, 1);
}

TEST(EventQueue, CancelAllMakesEmpty) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(q.Push(1.0 * i, [] {}));
  }
  for (auto& h : handles) h.Cancel();
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto early = q.Push(1.0, [] {});
  q.Push(9.0, [] {});
  early.Cancel();
  EXPECT_DOUBLE_EQ(q.NextTime(), 9.0);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.Valid());
  handle.Cancel();  // Must not crash.
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  auto handle = q.Push(1.0, [] {});
  q.Pop().action();
  handle.Cancel();  // Event already gone.
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace peertrack::sim
