#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peertrack::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.Empty()) {
    auto entry = q.Pop();
    entry.action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) q.Pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  auto handle = q.Push(1.0, [&] { fired = true; });
  q.Push(2.0, [] {});
  handle.Cancel();
  int popped = 0;
  while (!q.Empty()) {
    q.Pop().action();
    ++popped;
  }
  EXPECT_FALSE(fired);
  EXPECT_EQ(popped, 1);
}

TEST(EventQueue, CancelAllMakesEmpty) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(q.Push(1.0 * i, [] {}));
  }
  for (auto& h : handles) h.Cancel();
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto early = q.Push(1.0, [] {});
  q.Push(9.0, [] {});
  early.Cancel();
  EXPECT_DOUBLE_EQ(q.NextTime(), 9.0);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.Valid());
  handle.Cancel();  // Must not crash.
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  auto handle = q.Push(1.0, [] {});
  q.Pop().action();
  handle.Cancel();  // Event already gone.
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, CancelSoleEventLeavesQueueUsable) {
  // Regression: NextTime()/Pop() used to dereference the heap top after
  // dropping cancelled entries without re-checking emptiness — undefined
  // behaviour when the only pending event had been cancelled. Empty() must
  // report true and the queue must accept and serve new events afterwards.
  EventQueue q;
  auto handle = q.Push(5.0, [] {});
  handle.Cancel();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PendingCount(), 0u);
  bool fired = false;
  q.Push(7.0, [&] { fired = true; });
  ASSERT_FALSE(q.Empty());
  EXPECT_DOUBLE_EQ(q.NextTime(), 7.0);
  q.Pop().action();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, StaleHandleDoesNotCancelReusedSlot) {
  // A fired event's internal slot may be recycled by a later push; the old
  // handle's generation no longer matches, so cancelling it must not touch
  // the new event.
  EventQueue q;
  auto stale = q.Push(1.0, [] {});
  q.Pop().action();  // Slot freed, eligible for reuse.
  bool fired = false;
  q.Push(2.0, [&] { fired = true; });
  stale.Cancel();  // Must be a no-op even if the slot was reused.
  ASSERT_FALSE(q.Empty());
  q.Pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ActionCancellingItsOwnHandleIsNoOp) {
  // The window-flush pattern: a timer action cancels the handle of the
  // very event that is executing. The slot is released before the action
  // runs, so this must be a clean generation-mismatch no-op.
  EventQueue q;
  EventHandle self;
  bool fired = false;
  self = q.Push(1.0, [&] {
    fired = true;
    self.Cancel();
  });
  q.Pop().action();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  auto first = q.Push(1.0, [] {});
  auto copy = first;
  first.Cancel();
  copy.Cancel();  // Second cancel through a handle copy: no-op.
  EXPECT_TRUE(q.Empty());
  q.Push(2.0, [] {});
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueue, ManyInterleavedCancelsKeepOrder) {
  // Cancel every other event across several timestamps; survivors must
  // still pop in (time, FIFO) order with slots being recycled throughout.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 32; ++i) {
      const int tag = round * 32 + i;
      handles.push_back(q.Push(1.0 * i, [&order, tag] { order.push_back(tag); }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].Cancel();
    while (!q.Empty()) q.Pop().action();
    handles.clear();
  }
  ASSERT_EQ(order.size(), 4u * 16u);
  // Within each round the survivors are the odd tags in increasing time
  // order.
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = 1; i < 16; ++i) {
      EXPECT_LT(order[round * 16 + i - 1], order[round * 16 + i]);
    }
  }
}

}  // namespace
}  // namespace peertrack::sim
