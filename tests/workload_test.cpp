#include <gtest/gtest.h>

#include <set>

#include "workload/arrivals.hpp"
#include "workload/epc.hpp"
#include "workload/movement.hpp"
#include "workload/perf_smoke.hpp"

namespace peertrack::workload {
namespace {

TEST(Epc, UrisAreDeterministicAndUnique) {
  EpcGenerator gen(42);
  std::set<std::string> uris;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    uris.insert(gen.Uri(i));
  }
  EXPECT_EQ(uris.size(), 1000u);
  EpcGenerator same(42);
  EXPECT_EQ(gen.Uri(7), same.Uri(7));
  EpcGenerator other(43);
  EXPECT_NE(gen.Uri(7), other.Uri(7));
}

TEST(Epc, UriShapeIsSgtin) {
  EpcGenerator gen(1);
  const std::string uri = gen.Uri(5);
  EXPECT_EQ(uri.rfind("urn:epc:id:sgtin:", 0), 0u);
  EXPECT_NE(uri.find(".5"), std::string::npos);  // Serial is the sequence.
}

TEST(Epc, KeyMatchesHashOfUri) {
  EpcGenerator gen(9);
  EXPECT_EQ(gen.Key(3), hash::ObjectKey(gen.Uri(3)));
}

TEST(Arrivals, SteadyIsEvenlySpaced) {
  util::Rng rng(1);
  SteadyArrivals steady(10.0);
  const auto times = GenerateArrivals(steady, 0.0, 5, rng);
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], 10.0 * static_cast<double>(i + 1));
  }
}

TEST(Arrivals, PoissonMeanGapMatchesRate) {
  util::Rng rng(2);
  PoissonArrivals poisson(0.1);  // Mean gap 10 ms.
  const auto times = GenerateArrivals(poisson, 0.0, 20000, rng);
  EXPECT_NEAR(times.back() / 20000.0, 10.0, 0.5);
}

TEST(Arrivals, TimesAreMonotone) {
  util::Rng rng(3);
  BurstyArrivals bursty(1.0, 50.0, 500.0);
  const auto times = GenerateArrivals(bursty, 0.0, 500, rng);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
}

TEST(Arrivals, BurstyHasGaps) {
  util::Rng rng(4);
  BurstyArrivals bursty(1.0, 50.0, 500.0);
  const auto times = GenerateArrivals(bursty, 0.0, 500, rng);
  double max_gap = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    max_gap = std::max(max_gap, times[i] - times[i - 1]);
  }
  EXPECT_GT(max_gap, 100.0);  // Inter-burst silence visible.
}

TEST(Movement, PlanCountsMatchParameters) {
  MovementParams params;
  params.nodes = 10;
  params.objects_per_node = 100;
  params.move_fraction = 0.1;
  params.trace_length = 5;
  util::Rng rng(5);
  const auto plan = PlanMovements(params, rng);

  EXPECT_EQ(plan.object_count, 1000u);
  EXPECT_EQ(plan.movers.size(), 100u);  // 10% of 1000.
  // Captures: 1000 births + 100 movers x 4 extra hops.
  EXPECT_EQ(plan.TotalCaptures(), 1000u + 400u);
}

TEST(Movement, CapturesSortedByTime) {
  MovementParams params;
  params.nodes = 6;
  params.objects_per_node = 50;
  params.move_in_groups = false;
  params.jitter_ms = 100.0;
  util::Rng rng(6);
  const auto plan = PlanMovements(params, rng);
  for (std::size_t i = 1; i < plan.captures.size(); ++i) {
    EXPECT_LE(plan.captures[i - 1].at, plan.captures[i].at);
  }
}

TEST(Movement, HopsNeverStayOnSameNode) {
  MovementParams params;
  params.nodes = 4;
  params.objects_per_node = 30;
  params.move_fraction = 0.5;
  params.trace_length = 8;
  for (const bool grouped : {true, false}) {
    params.move_in_groups = grouped;
    util::Rng rng(7);
    const auto plan = PlanMovements(params, rng);
    // Reconstruct each mover's route and check consecutive hops differ.
    std::map<std::uint64_t, std::vector<std::pair<double, std::uint32_t>>> routes;
    for (const auto& capture : plan.captures) {
      routes[capture.object_seq].emplace_back(capture.at, capture.node);
    }
    for (const auto seq : plan.movers) {
      auto& route = routes[seq];
      std::sort(route.begin(), route.end());
      for (std::size_t i = 1; i < route.size(); ++i) {
        EXPECT_NE(route[i].second, route[i - 1].second)
            << "seq " << seq << " grouped=" << grouped;
      }
    }
  }
}

TEST(Movement, GroupedMoversShareRouteAndSchedule) {
  MovementParams params;
  params.nodes = 8;
  params.objects_per_node = 40;
  params.move_fraction = 0.25;
  params.trace_length = 4;
  params.move_in_groups = true;
  util::Rng rng(8);
  const auto plan = PlanMovements(params, rng);

  // Movers born at the same node must visit identical (node, time) hops.
  std::map<std::uint64_t, std::vector<std::pair<double, std::uint32_t>>> routes;
  for (const auto& capture : plan.captures) {
    routes[capture.object_seq].emplace_back(capture.at, capture.node);
  }
  for (std::size_t node = 0; node < params.nodes; ++node) {
    const std::uint64_t first = node * params.objects_per_node;
    for (std::uint64_t k = 1; k < 10; ++k) {
      EXPECT_EQ(routes[first], routes[first + k]) << "node " << node;
    }
  }
}

TEST(Movement, SingleNodeNetworkHasNoMoves) {
  MovementParams params;
  params.nodes = 1;
  params.objects_per_node = 10;
  params.move_fraction = 0.5;
  util::Rng rng(9);
  const auto plan = PlanMovements(params, rng);
  EXPECT_EQ(plan.TotalCaptures(), 10u);
  EXPECT_TRUE(plan.movers.empty());
}

TEST(PerfSmoke, SameSeedRunsAreBitIdentical) {
  // The repo's reproducibility contract, asserted end-to-end over the same
  // scenario the perf harness times: two same-seed runs must agree on every
  // event count, byte, and rendered metric row. Guards the event queue's
  // FIFO tie-breaking, rng forking, and the metrics render order against
  // accidental nondeterminism (perf_smoke --repeat relies on this too).
  PerfSmokeParams params;
  params.nodes = 16;
  params.objects = 480;
  params.queries = 8;
  const PerfSmokeReport first = RunPerfSmoke(params);
  const PerfSmokeReport second = RunPerfSmoke(params);
  EXPECT_GT(first.events, 0u);
  EXPECT_GT(first.messages, 0u);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.messages, second.messages);
  EXPECT_EQ(first.bytes, second.bytes);
  EXPECT_EQ(first.captures, second.captures);
  EXPECT_EQ(first.queries_ok, second.queries_ok);
  EXPECT_EQ(first.queries_failed, second.queries_failed);
  EXPECT_DOUBLE_EQ(first.sim_time_ms, second.sim_time_ms);
  ASSERT_EQ(first.metric_rows.size(), second.metric_rows.size());
  EXPECT_EQ(first.metric_rows, second.metric_rows);
}

TEST(PerfSmoke, DifferentSeedsDiverge) {
  // Sanity check that the determinism assertion above is not vacuous: a
  // different seed must actually change the traffic.
  PerfSmokeParams params;
  params.nodes = 16;
  params.objects = 480;
  params.queries = 8;
  const PerfSmokeReport base = RunPerfSmoke(params);
  params.seed ^= 0x5EED;
  const PerfSmokeReport other = RunPerfSmoke(params);
  EXPECT_NE(base.metric_rows, other.metric_rows);
}

}  // namespace
}  // namespace peertrack::workload
