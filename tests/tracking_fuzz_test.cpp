// Randomized end-to-end property sweep: for random seeds, network sizes,
// modes, and movement shapes, EVERY object's distributed trace must equal
// the ground-truth oracle. This is the repository's strongest single
// correctness statement about the whole stack (capture -> window -> DHT
// routing -> gateway index -> triangle -> M2/M3 -> IOP walk).

#include <gtest/gtest.h>

#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::tracking {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t nodes;
  IndexingMode mode;
  bool move_in_groups;
};

class EndToEndFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EndToEndFuzz, EverySampledTraceMatchesOracle) {
  const FuzzCase& fuzz = GetParam();
  SystemConfig config;
  config.tracker.mode = fuzz.mode;
  config.tracker.window.tmax_ms = 150.0;
  config.tracker.window.nmax = 256;
  config.tracker.delegation_threshold = 32;  // Make the triangle work hard.
  config.tracker.alpha = 0.6;
  config.seed = fuzz.seed;
  TrackingSystem system(fuzz.nodes, config);

  workload::MovementParams params;
  params.nodes = fuzz.nodes;
  params.objects_per_node = 25;
  params.move_fraction = 0.4;
  params.trace_length = 5;
  params.move_in_groups = fuzz.move_in_groups;
  params.step_ms = 2500.0;
  params.jitter_ms = fuzz.move_in_groups ? 0.0 : 800.0;
  const auto scenario = workload::ExecuteScenario(system, params, fuzz.seed ^ 0xf);

  util::Rng rng(fuzz.seed * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t seq =
        trial % 2 == 0 && !scenario.movers.empty()
            ? scenario.movers[rng.NextBelow(scenario.movers.size())]
            : rng.NextBelow(scenario.object_keys.size());
    const auto& object = scenario.object_keys[seq];
    const auto origin = static_cast<std::size_t>(rng.NextBelow(fuzz.nodes));

    bool done = false;
    system.TraceQuery(origin, object, [&](TrackerNode::TraceResult result) {
      const auto* expected = system.oracle().FullTrace(object);
      ASSERT_NE(expected, nullptr);
      ASSERT_TRUE(result.ok)
          << "seed=" << fuzz.seed << " object=" << object.ToShortHex();
      ASSERT_EQ(result.path.size(), expected->size())
          << "seed=" << fuzz.seed << " object=" << object.ToShortHex();
      for (std::size_t i = 0; i < expected->size(); ++i) {
        EXPECT_EQ(system.NodeIndexOfActor(result.path[i].node.actor),
                  (*expected)[i].node);
        EXPECT_DOUBLE_EQ(result.path[i].arrived, (*expected)[i].arrived);
      }
      done = true;
    });
    system.Run();
    ASSERT_TRUE(done);
  }
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 0xbeef;
  for (const std::size_t nodes : {5u, 13u, 29u}) {
    for (const auto mode : {IndexingMode::kIndividual, IndexingMode::kGroup}) {
      for (const bool grouped : {true, false}) {
        cases.push_back(FuzzCase{seed++, nodes, mode, grouped});
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string name = "n";
  name += std::to_string(info.param.nodes);
  name += info.param.mode == IndexingMode::kGroup ? "_group" : "_individual";
  name += info.param.move_in_groups ? "_pallets" : "_loose";
  name += "_s";
  name += std::to_string(info.param.seed & 0xFF);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EndToEndFuzz, ::testing::ValuesIn(MakeCases()),
                         CaseName);

}  // namespace
}  // namespace peertrack::tracking
