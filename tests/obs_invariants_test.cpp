// Invariant monitor: ledger open/close semantics, sim-clock scheduling
// edge cases, and seeded-corruption detection (break a link, stale an
// index entry, drop a delegated record — assert the right check fires,
// then heals after repair).

#include <gtest/gtest.h>

#include "chord/chord_ring.hpp"
#include "obs/invariants.hpp"
#include "tracking/tracking_system.hpp"
#include "util/format.hpp"

namespace peertrack::obs {
namespace {

// --- HealthLedger -----------------------------------------------------------

Finding MakeFinding(std::string subject) {
  return Finding{1, std::move(subject), "detail"};
}

TEST(HealthLedger, OpensRefreshesAndCloses) {
  HealthLedger ledger;

  auto delta = ledger.Reconcile("c", Severity::kError, {MakeFinding("s")}, 100.0);
  EXPECT_EQ(delta.opened, 1u);
  EXPECT_EQ(ledger.OpenCount(), 1u);
  ASSERT_EQ(ledger.violations().size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.violations()[0].first_seen_ms, 100.0);
  EXPECT_TRUE(ledger.violations()[0].Open());

  delta = ledger.Reconcile("c", Severity::kError, {MakeFinding("s")}, 200.0);
  EXPECT_EQ(delta.opened, 0u);
  EXPECT_EQ(delta.refreshed, 1u);
  EXPECT_DOUBLE_EQ(ledger.violations()[0].last_seen_ms, 200.0);

  delta = ledger.Reconcile("c", Severity::kError, {}, 350.0);
  ASSERT_EQ(delta.repaired_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.repaired_ms[0], 250.0);
  EXPECT_EQ(ledger.OpenCount(), 0u);
  EXPECT_FALSE(ledger.violations()[0].Open());
  EXPECT_DOUBLE_EQ(*ledger.violations()[0].cleared_ms, 350.0);
  EXPECT_DOUBLE_EQ(ledger.violations()[0].RepairMs(), 250.0);
}

TEST(HealthLedger, ClosesEvenAtTheSameTimestamp) {
  // Two reconciles at the same sim time (e.g. two manual RunOnce calls):
  // the second, finding-free one must still close the violation.
  HealthLedger ledger;
  ledger.Reconcile("c", Severity::kWarn, {MakeFinding("s")}, 50.0);
  const auto delta = ledger.Reconcile("c", Severity::kWarn, {}, 50.0);
  ASSERT_EQ(delta.repaired_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.repaired_ms[0], 0.0);
  EXPECT_EQ(ledger.OpenCount(), 0u);
}

TEST(HealthLedger, ChecksAndSubjectsAreIndependent) {
  HealthLedger ledger;
  ledger.Reconcile("a", Severity::kWarn, {MakeFinding("s1"), MakeFinding("s2")}, 1.0);
  ledger.Reconcile("b", Severity::kFatal, {MakeFinding("s1")}, 1.0);
  EXPECT_EQ(ledger.OpenCount(), 3u);
  EXPECT_EQ(ledger.OpenCount("a"), 2u);
  EXPECT_EQ(ledger.OpenCount("b"), 1u);
  EXPECT_EQ(ledger.OpenFatalCount(), 1u);

  // Closing check a's s1 must not touch check b's s1.
  ledger.Reconcile("a", Severity::kWarn, {MakeFinding("s2")}, 2.0);
  EXPECT_EQ(ledger.OpenCount("a"), 1u);
  EXPECT_EQ(ledger.OpenCount("b"), 1u);
  EXPECT_EQ(ledger.OpenFatalCount(), 1u);
}

TEST(HealthLedger, ReopenedFaultIsANewViolation) {
  HealthLedger ledger;
  ledger.Reconcile("c", Severity::kWarn, {MakeFinding("s")}, 10.0);
  ledger.Reconcile("c", Severity::kWarn, {}, 20.0);
  ledger.Reconcile("c", Severity::kWarn, {MakeFinding("s")}, 30.0);
  ASSERT_EQ(ledger.violations().size(), 2u);
  EXPECT_FALSE(ledger.violations()[0].Open());
  EXPECT_TRUE(ledger.violations()[1].Open());
  EXPECT_DOUBLE_EQ(ledger.violations()[1].first_seen_ms, 30.0);
}

// --- HealthReport rendering -------------------------------------------------

TEST(HealthReport, JsonAndTableRenderOpenViolations) {
  sim::Simulator sim;
  Registry registry;
  InvariantMonitor monitor(sim, registry);
  bool broken = true;
  monitor.AddCheck("test.check", Severity::kFatal, [&](CheckContext& ctx) {
    if (broken) ctx.Report(7, "subject-1", "it broke");
  });
  monitor.RunOnce();

  const HealthReport report = monitor.Report();
  EXPECT_EQ(report.open_violations, 1u);
  EXPECT_EQ(report.open_fatal, 1u);
  EXPECT_FALSE(report.Healthy());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_TRUE(report.violations[0].Open());

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\": \"peertrack.health.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"test.check\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"fatal\""), std::string::npos);
  EXPECT_NE(json.find("\"cleared_ms\": null"), std::string::npos);
  EXPECT_NE(json.find("\"open\": true"), std::string::npos);

  const std::string table = report.SummaryTable();
  EXPECT_NE(table.find("test.check"), std::string::npos);
  EXPECT_NE(table.find("UNHEALTHY"), std::string::npos);

  // Heal and re-report: cleared_ms becomes a number, verdict flips.
  broken = false;
  monitor.RunOnce();
  const HealthReport healed = monitor.Report();
  EXPECT_TRUE(healed.Healthy());
  EXPECT_EQ(healed.ToJson().find("\"cleared_ms\": null"), std::string::npos);
  EXPECT_NE(healed.SummaryTable().find("HEALTHY"), std::string::npos);
}

TEST(HealthReport, JsonEscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

// --- Monitor scheduling (satellite: cadence vs RunUntil boundaries) ---------

TEST(InvariantMonitor, CadenceRespectsRunUntilBoundaries) {
  sim::Simulator sim;
  Registry registry;
  InvariantMonitor monitor(sim, registry);
  std::vector<double> scan_times;
  monitor.AddCheck("noop", Severity::kWarn,
                   [&](CheckContext& ctx) { scan_times.push_back(ctx.Now()); });

  monitor.Start(100.0, 1000.0);  // Scan at t=0 immediately, then every 100.
  EXPECT_EQ(monitor.ScansRun(), 1u);

  sim.RunUntil(250.0);  // Picks up the t=100 and t=200 ticks only.
  EXPECT_EQ(monitor.ScansRun(), 3u);
  EXPECT_EQ(scan_times.back(), 200.0);

  sim.RunUntil(5000.0);  // The horizon caps the schedule at t=1000.
  EXPECT_EQ(monitor.ScansRun(), 11u);
  EXPECT_EQ(scan_times.back(), 1000.0);
  // Nothing rescheduled past the horizon: the queue must be drained, or the
  // monitor would keep otherwise-finished simulations alive.
  EXPECT_EQ(sim.PendingEvents(), 0u);

  const Registry& reg = registry;
  EXPECT_EQ(reg.CounterValue("invariant.scans"), 11u);
  EXPECT_EQ(reg.CounterValue("invariant.pass:noop"), 11u);
}

TEST(InvariantMonitor, AttachedMidRunScansFromCurrentTime) {
  sim::Simulator sim;
  Registry registry;
  sim.RunUntil(500.0);  // The simulation is already under way.

  InvariantMonitor monitor(sim, registry);
  std::vector<double> scan_times;
  monitor.AddCheck("noop", Severity::kWarn,
                   [&](CheckContext& ctx) { scan_times.push_back(ctx.Now()); });
  monitor.Start(100.0, 1000.0);
  EXPECT_EQ(scan_times.front(), 500.0);

  sim.RunUntil(2000.0);
  EXPECT_EQ(monitor.ScansRun(), 6u);  // 500, 600, ..., 1000.
  EXPECT_EQ(scan_times.back(), 1000.0);
}

TEST(InvariantMonitor, ZeroPeriodMeansSingleScan) {
  sim::Simulator sim;
  Registry registry;
  InvariantMonitor monitor(sim, registry);
  monitor.AddCheck("noop", Severity::kWarn, [](CheckContext&) {});
  monitor.Start(0.0, 1e9);
  sim.RunUntil(1000.0);
  EXPECT_EQ(monitor.ScansRun(), 1u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(InvariantMonitor, EndOfRunViolationsReportStillOpen) {
  sim::Simulator sim;
  Registry registry;
  InvariantMonitor monitor(sim, registry);
  monitor.AddCheck("stuck", Severity::kError,
                   [](CheckContext& ctx) { ctx.Report(3, "never-heals", "broken"); });
  monitor.Start(100.0, 300.0);
  sim.RunUntil(10'000.0);  // Run ends; the fault never cleared.

  const HealthReport report = monitor.Report();
  EXPECT_EQ(report.scans, 4u);
  EXPECT_EQ(report.open_violations, 1u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_TRUE(report.violations[0].Open());
  EXPECT_FALSE(report.violations[0].cleared_ms.has_value());
  EXPECT_DOUBLE_EQ(report.violations[0].first_seen_ms, 0.0);
  EXPECT_DOUBLE_EQ(report.violations[0].last_seen_ms, 300.0);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_EQ(report.checks[0].opened, 1u);
  EXPECT_EQ(report.checks[0].healed, 0u);
  EXPECT_EQ(report.checks[0].open, 1u);
}

TEST(InvariantMonitor, RepairLatencyFeedsHistograms) {
  sim::Simulator sim;
  Registry registry;
  InvariantMonitor monitor(sim, registry);
  bool broken = false;
  monitor.AddCheck("flaky", Severity::kError, [&](CheckContext& ctx) {
    if (broken) ctx.Report(1, "fault", "transient");
  });
  monitor.Start(100.0, 2000.0);

  sim.RunUntil(400.0);
  broken = true;  // Fault appears; first seen at the t=500 scan.
  sim.RunUntil(900.0);
  broken = false;  // Healed; first clean scan at t=1000.
  sim.RunUntil(2000.0);

  const HealthReport report = monitor.Report();
  EXPECT_TRUE(report.Healthy());
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_EQ(report.checks[0].opened, 1u);
  EXPECT_EQ(report.checks[0].healed, 1u);
  EXPECT_EQ(report.checks[0].repair.count, 1u);
  // Opened at the 500 scan, cleared at the 1000 scan: 500 ms to repair
  // (scan-granular; the histogram is log-bucketed so allow bucket error).
  EXPECT_NEAR(report.checks[0].repair.p50_ms, 500.0, 50.0);

  const Histogram* repair = registry.FindHistogram("invariant.repair_ms:flaky");
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->Count(), 1u);
  EXPECT_EQ(registry.FindHistogram("invariant.repair_ms")->Count(), 1u);
  EXPECT_EQ(registry.CounterValue("invariant.violations_opened"), 1u);
  EXPECT_EQ(registry.CounterValue("invariant.violations_healed"), 1u);
}

// --- Ring checks: seeded corruption ----------------------------------------

class RingFixture {
 public:
  explicit RingFixture(std::size_t n)
      : latency_(5.0), rng_(42), net_(sim_, latency_, rng_), ring_(net_) {
    for (std::size_t i = 0; i < n; ++i) {
      ring_.AddNode(util::Format("node-{}", i));
    }
    ring_.OracleBootstrap();
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_;
  util::Rng rng_;
  sim::Network net_;
  chord::ChordRing ring_;
};

/// Open violations of `check`, by id.
std::size_t OpenOf(const InvariantMonitor& monitor, std::string_view check) {
  return monitor.ledger().OpenCount(check);
}

TEST(RingChecks, ConvergedRingIsClean) {
  RingFixture f(24);
  Registry registry;
  InvariantMonitor monitor(f.sim_, registry);
  InstallRingChecks(monitor, f.ring_);
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
}

TEST(RingChecks, CorruptFingerFiresAndHeals) {
  RingFixture f(16);
  Registry registry;
  InvariantMonitor monitor(f.sim_, registry);
  InstallRingChecks(monitor, f.ring_);

  // Point node 3's finger 40 at the wrong node (itself cannot be the
  // successor of start(40) in a 16-node ring with these ids — but pick a
  // definitely-wrong target: the node's own ref).
  chord::ChordNode& node = f.ring_.Node(3);
  const auto correct = f.ring_.ExpectedSuccessor(node.fingers().Start(40));
  chord::NodeRef wrong = node.Self();
  if (wrong.id == correct.id) wrong = f.ring_.Node(4).Self();
  node.OracleSetFinger(40, wrong);

  monitor.RunOnce();
  EXPECT_EQ(OpenOf(monitor, "ring.finger"), 1u);
  const auto& violations = monitor.ledger().violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].check, "ring.finger");
  EXPECT_EQ(violations[0].subject, util::Format("{}#f{}", node.Address(), 40));
  EXPECT_DOUBLE_EQ(violations[0].first_seen_ms, 0.0);

  // Repair (re-wire the exact ring) and advance the clock: the violation
  // closes with open/close sim times.
  f.sim_.RunUntil(750.0);
  f.ring_.OracleBootstrap();
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
  EXPECT_FALSE(violations[0].Open());
  EXPECT_DOUBLE_EQ(*violations[0].cleared_ms, 750.0);
  EXPECT_DOUBLE_EQ(violations[0].RepairMs(), 750.0);
}

TEST(RingChecks, CorruptSuccessorFires) {
  RingFixture f(12);
  Registry registry;
  InvariantMonitor monitor(f.sim_, registry);
  InstallRingChecks(monitor, f.ring_);

  // Rewire node 5's successor pointer to itself: both the successor check
  // and the successor-list prefix check must fire for exactly that node.
  chord::ChordNode& node = f.ring_.Node(5);
  const auto predecessor = node.Predecessor();
  node.OracleWire(predecessor, {node.Self()});

  monitor.RunOnce();
  EXPECT_EQ(OpenOf(monitor, "ring.successor"), 1u);
  EXPECT_EQ(OpenOf(monitor, "ring.successor_list"), 1u);
  EXPECT_EQ(OpenOf(monitor, "ring.predecessor"), 0u);

  f.sim_.RunUntil(100.0);
  f.ring_.OracleBootstrap();
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
}

// --- Tracking checks: seeded corruption ------------------------------------

hash::UInt160 Obj(int i) { return hash::ObjectKey(util::Format("epc:obj-{}", i)); }

/// Small settled individual-mode network: 3 hops per object, fully drained.
struct IndividualFixture {
  IndividualFixture() : system(MakeConfig()) {
    for (int i = 0; i < 8; ++i) {
      system.CaptureAt(static_cast<std::size_t>(i % 4), Obj(i), 10.0 + i);
      system.CaptureAt(static_cast<std::size_t>((i + 3) % 7), Obj(i), 4000.0 + i);
      system.CaptureAt(static_cast<std::size_t>((i + 5) % 9), Obj(i), 8000.0 + i);
    }
    system.Run();
    system.FlushAllWindows();
    system.RunUntil(20'000.0);  // Everything long settled.
  }

  static tracking::TrackingSystem MakeConfig() {
    tracking::SystemConfig config;
    config.tracker.mode = tracking::IndexingMode::kIndividual;
    return tracking::TrackingSystem(16, std::move(config));
  }

  tracking::TrackingSystem system;
};

TEST(TrackingChecks, SettledIndividualRunIsClean) {
  IndividualFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
  EXPECT_EQ(registry.CounterValue("invariant.pass:iop.link"), 1u);
  EXPECT_EQ(registry.CounterValue("invariant.pass:gateway.staleness"), 1u);
  EXPECT_EQ(registry.CounterValue("invariant.pass:triangle.coverage"), 1u);
}

TEST(TrackingChecks, BrokenToLinkFiresIopLinkThenHeals) {
  IndividualFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  // Find the tracker holding obj 0's middle visit and corrupt its to-link
  // to reference a node that never saw the object.
  const auto object = Obj(0);
  const std::size_t middle = 3 % 7;  // Second capture site of obj 0.
  tracking::TrackerNode& holder = f.system.Tracker(middle);
  const auto* visits = holder.iop().VisitsOf(object);
  ASSERT_NE(visits, nullptr);
  const double true_to_arrived = *visits->front().to_arrived;
  const chord::NodeRef true_to = *visits->front().to;
  holder.mutable_iop().SetTo(object, f.system.Tracker(12).Self(), true_to_arrived);

  monitor.RunOnce();
  EXPECT_GE(OpenOf(monitor, "iop.link"), 1u);
  bool found = false;
  double opened_at = -1.0;
  for (const auto& violation : monitor.ledger().violations()) {
    if (violation.check == "iop.link" && violation.actor == holder.Self().actor) {
      found = true;
      opened_at = violation.first_seen_ms;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_DOUBLE_EQ(opened_at, 20'000.0);

  // Repair the link and rescan after some time: every iop.link violation
  // must close at the repair-scan timestamp.
  f.system.RunUntil(25'000.0);
  holder.mutable_iop().SetTo(object, true_to, true_to_arrived);
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
  for (const auto& violation : monitor.ledger().violations()) {
    EXPECT_FALSE(violation.Open());
    EXPECT_DOUBLE_EQ(*violation.cleared_ms, 25'000.0);
  }
}

TEST(TrackingChecks, BackwardLinkFiresAcyclicCheck) {
  IndividualFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  // A from-link that points forward in time is impossible in a sound chain
  // (it would allow a cycle); inject one directly.
  const auto object = Obj(1);
  tracking::TrackerNode& holder = f.system.Tracker(1 % 4);  // First site.
  const auto* visits = holder.iop().VisitsOf(object);
  ASSERT_NE(visits, nullptr);
  const double arrived = visits->front().arrived;
  holder.mutable_iop().SetFrom(object, arrived, f.system.Tracker(2).Self(),
                               arrived + 5000.0);

  monitor.RunOnce();
  EXPECT_GE(OpenOf(monitor, "iop.acyclic"), 1u);
  EXPECT_GE(monitor.Report().open_fatal, 1u);
}

TEST(TrackingChecks, StaleGatewayEntryFiresThenHeals) {
  IndividualFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  // Roll obj 2's gateway entry back to its first sighting: the index now
  // lies about the latest location.
  const auto object = Obj(2);
  tracking::TrackerNode* gateway = f.system.OwnerOf(object);
  ASSERT_NE(gateway, nullptr);
  const tracking::IndexEntry* current = gateway->individual_index().Find(object);
  ASSERT_NE(current, nullptr);
  const tracking::IndexEntry good = *current;
  gateway->mutable_individual_index().Upsert(
      object, tracking::IndexEntry{f.system.Tracker(2 % 4).Self(), 12.0});

  monitor.RunOnce();
  EXPECT_EQ(OpenOf(monitor, "gateway.staleness"), 1u);
  const auto& violations = monitor.ledger().violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "gateway.staleness");
  EXPECT_EQ(violations[0].subject, object.ToShortHex());

  f.system.RunUntil(30'000.0);
  gateway->mutable_individual_index().Upsert(object, good);
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
  EXPECT_DOUBLE_EQ(violations[0].first_seen_ms, 20'000.0);
  EXPECT_DOUBLE_EQ(*violations[0].cleared_ms, 30'000.0);
}

TEST(TrackingChecks, DroppedRecordFiresTriangleCoverageThenHeals) {
  IndividualFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  const auto object = Obj(3);
  tracking::TrackerNode* gateway = f.system.OwnerOf(object);
  ASSERT_NE(gateway, nullptr);
  const auto dropped = gateway->mutable_individual_index().Extract(object);
  ASSERT_TRUE(dropped.has_value());

  monitor.RunOnce();
  EXPECT_EQ(OpenOf(monitor, "triangle.coverage"), 1u);
  EXPECT_EQ(monitor.Report().open_fatal, 1u);
  const auto& violations = monitor.ledger().violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].subject, object.ToShortHex());

  f.system.RunUntil(40'000.0);
  gateway->mutable_individual_index().Upsert(object, *dropped);
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
  EXPECT_EQ(monitor.Report().open_fatal, 0u);
}

// --- Group mode: delegated records and bucket shape -------------------------

struct GroupFixture {
  GroupFixture() : system(MakeConfig()) {
    // Enough objects per prefix to force delegation: kLogN gives Lp=4 (16
    // buckets) for 16 nodes, so 128 objects average 8 per bucket against a
    // threshold of 4, and alpha 0.5 pushes the oldest halves to children.
    for (int i = 0; i < 128; ++i) {
      system.CaptureAt(static_cast<std::size_t>(i % 8), Obj(100 + i), 10.0 + i);
    }
    system.Run();
    system.FlushAllWindows();
    system.RunUntil(60'000.0);
  }

  static tracking::TrackingSystem MakeConfig() {
    tracking::SystemConfig config;
    config.scheme = tracking::PrefixScheme::kLogN;
    config.tracker.mode = tracking::IndexingMode::kGroup;
    config.tracker.delegation_threshold = 4;
    return tracking::TrackingSystem(16, std::move(config));
  }

  /// Some (tracker, prefix, object) where the entry sits in a delegated
  /// child bucket (length == Lp + 1).
  bool FindDelegated(tracking::TrackerNode** node, hash::Prefix* prefix,
                     hash::UInt160* object) {
    const unsigned lp = system.CurrentLp();
    for (std::size_t i = 0; i < system.NodeCount(); ++i) {
      tracking::TrackerNode& tracker = system.Tracker(i);
      for (const auto& p : tracker.prefix_store().Prefixes()) {
        if (p.length != lp + 1) continue;
        const auto* bucket = tracker.prefix_store().TryBucket(p);
        if (bucket == nullptr || bucket->Empty()) continue;
        *node = &tracker;
        *prefix = p;
        *object = bucket->Entries().begin()->first;
        return true;
      }
    }
    return false;
  }

  tracking::TrackingSystem system;
};

TEST(TrackingChecks, SettledGroupRunIsClean) {
  GroupFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
}

TEST(TrackingChecks, DroppedDelegatedRecordFiresTriangleCoverage) {
  GroupFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  tracking::TrackerNode* node = nullptr;
  hash::Prefix prefix;
  hash::UInt160 object;
  ASSERT_TRUE(f.FindDelegated(&node, &prefix, &object))
      << "expected at least one delegated (Lp+1) bucket";
  auto* bucket = node->mutable_prefix_store().TryBucket(prefix);
  const auto dropped = bucket->Extract(object);
  ASSERT_TRUE(dropped.has_value());

  monitor.RunOnce();
  EXPECT_EQ(OpenOf(monitor, "triangle.coverage"), 1u);
  bool subject_matches = false;
  for (const auto& violation : monitor.ledger().violations()) {
    if (violation.check == "triangle.coverage" &&
        violation.subject == object.ToShortHex()) {
      subject_matches = true;
    }
  }
  EXPECT_TRUE(subject_matches);

  f.system.RunUntil(90'000.0);
  bucket->Upsert(object, *dropped);
  monitor.RunOnce();
  EXPECT_EQ(monitor.OpenViolations(), 0u);
}

TEST(TrackingChecks, DuplicatedRecordFiresTriangleCoverage) {
  GroupFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  tracking::TrackerNode* node = nullptr;
  hash::Prefix prefix;
  hash::UInt160 object;
  ASSERT_TRUE(f.FindDelegated(&node, &prefix, &object));
  const auto* entry = node->prefix_store().TryBucket(prefix)->Find(object);
  ASSERT_NE(entry, nullptr);
  // Copy the entry into a second bucket at the SAME level on another node:
  // duplication off the object's own parent/child chain.
  tracking::TrackerNode& other =
      f.system.Tracker(node == &f.system.Tracker(0) ? 1 : 0);
  other.mutable_prefix_store().BucketFor(prefix).Upsert(object, *entry);

  monitor.RunOnce();
  EXPECT_GE(OpenOf(monitor, "triangle.coverage"), 1u);
}

TEST(TrackingChecks, MisplacedBucketFiresPrefixShape) {
  GroupFixture f;
  Registry registry;
  InvariantMonitor monitor(f.system.simulator(), registry);
  InstallTrackingChecks(monitor, f.system, {.staleness_ms = 100.0});

  // A bucket at a level no gateway ever probes (Lp+3) is unreachable state.
  const unsigned lp = f.system.CurrentLp();
  const auto stray_prefix = hash::Prefix::OfKey(Obj(100), lp + 3);
  tracking::TrackerNode& tracker = f.system.Tracker(5);
  tracker.mutable_prefix_store().BucketFor(stray_prefix)
      .Upsert(Obj(100), tracking::IndexEntry{tracker.Self(), 10.0});

  monitor.RunOnce();
  EXPECT_GE(OpenOf(monitor, "prefix.shape"), 1u);
}

}  // namespace
}  // namespace peertrack::obs
