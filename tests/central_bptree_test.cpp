#include "central/bptree.hpp"

#include <gtest/gtest.h>

#include <map>

#include "hash/keyspace.hpp"
#include "util/rng.hpp"

namespace peertrack::central {
namespace {

hash::UInt160 Epc(int i) { return hash::ObjectKey("bt-epc-" + std::to_string(i)); }

class BpTreeOrders : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BpTreeOrders, InsertAndRangeScanMatchReferenceMap) {
  PageMetrics metrics;
  BpTree tree(GetParam(), metrics);
  std::multimap<BpKey, std::uint64_t> reference;

  util::Rng rng(42);
  for (std::uint64_t row = 0; row < 2000; ++row) {
    const BpKey key{Epc(static_cast<int>(rng.NextBelow(100))),
                    static_cast<double>(rng.NextBelow(1000))};
    tree.Insert(key, row);
    reference.emplace(key, row);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Size(), 2000u);

  // Per-object range scans agree with the reference.
  for (int i = 0; i < 100; i += 7) {
    const auto rows = tree.LookupObject(Epc(i));
    const BpKey lo{Epc(i), -1e300};
    const BpKey hi{Epc(i), 1e300};
    std::size_t expected = 0;
    for (auto it = reference.lower_bound(lo); it != reference.end() && !(hi < it->first);
         ++it) {
      ++expected;
    }
    EXPECT_EQ(rows.size(), expected) << "epc " << i;
  }
}

TEST_P(BpTreeOrders, ScanRangeIsKeyOrdered) {
  PageMetrics metrics;
  BpTree tree(GetParam(), metrics);
  util::Rng rng(7);
  for (std::uint64_t row = 0; row < 500; ++row) {
    tree.Insert(BpKey{Epc(3), rng.NextDouble(0, 1e6)}, row);
  }
  BpKey previous{Epc(3), -1e300};
  tree.ScanRange(BpKey{Epc(3), -1e300}, BpKey{Epc(3), 1e300},
                 [&](const BpKey& key, std::uint64_t) {
                   EXPECT_FALSE(key < previous);
                   previous = key;
                 });
}

INSTANTIATE_TEST_SUITE_P(Orders, BpTreeOrders, ::testing::Values(4, 8, 16, 64, 128));

TEST(BpTree, EmptyTreeScansNothing) {
  PageMetrics metrics;
  BpTree tree(16, metrics);
  EXPECT_TRUE(tree.LookupObject(Epc(1)).empty());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Height(), 1u);
}

TEST(BpTree, DuplicateKeysAllStored) {
  PageMetrics metrics;
  BpTree tree(8, metrics);
  const BpKey key{Epc(1), 5.0};
  for (std::uint64_t row = 0; row < 50; ++row) tree.Insert(key, row);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.LookupObject(Epc(1)).size(), 50u);
}

TEST(BpTree, HeightGrowsLogarithmically) {
  PageMetrics metrics;
  BpTree tree(16, metrics);
  for (std::uint64_t row = 0; row < 10000; ++row) {
    tree.Insert(BpKey{Epc(static_cast<int>(row % 64)), static_cast<double>(row)}, row);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  // order 16 over 10k keys: height comfortably below 6.
  EXPECT_LE(tree.Height(), 6u);
  EXPECT_GE(tree.Height(), 3u);
}

TEST(BpTree, RangeScanBoundariesInclusive) {
  PageMetrics metrics;
  BpTree tree(8, metrics);
  for (int t = 0; t < 20; ++t) {
    tree.Insert(BpKey{Epc(1), static_cast<double>(t)}, static_cast<std::uint64_t>(t));
  }
  std::vector<std::uint64_t> seen;
  tree.ScanRange(BpKey{Epc(1), 5.0}, BpKey{Epc(1), 10.0},
                 [&](const BpKey&, std::uint64_t row) { seen.push_back(row); });
  ASSERT_EQ(seen.size(), 6u);  // 5..10 inclusive.
  EXPECT_EQ(seen.front(), 5u);
  EXPECT_EQ(seen.back(), 10u);
}

TEST(BpTree, LookupCostIsLogarithmicNotLinear) {
  PageMetrics metrics;
  BpTree tree(64, metrics);
  for (std::uint64_t row = 0; row < 100000; ++row) {
    tree.Insert(BpKey{Epc(static_cast<int>(row % 1000)), static_cast<double>(row)}, row);
  }
  metrics.Reset();
  tree.LookupObject(Epc(42));
  // ~100 entries for this epc: interior descent + a few leaves, far below a
  // full scan of ~1600 leaf pages.
  EXPECT_LT(metrics.page_reads, 40u);
}

TEST(BpTree, MetricsCountInsertTouches) {
  PageMetrics metrics;
  BpTree tree(8, metrics);
  tree.Insert(BpKey{Epc(1), 1.0}, 0);
  EXPECT_GT(metrics.page_reads + metrics.page_writes, 0u);
}

}  // namespace
}  // namespace peertrack::central
