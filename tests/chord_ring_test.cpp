// Oracle-bootstrapped ring invariants.

#include <gtest/gtest.h>

#include "chord/chord_ring.hpp"
#include "util/format.hpp"

namespace peertrack::chord {
namespace {

class RingFixture {
 public:
  explicit RingFixture(std::size_t n)
      : latency_(5.0), rng_(42), net_(sim_, latency_, rng_), ring_(net_) {
    for (std::size_t i = 0; i < n; ++i) {
      ring_.AddNode(util::Format("node-{}", i));
    }
    ring_.OracleBootstrap();
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_;
  util::Rng rng_;
  sim::Network net_;
  ChordRing ring_;
};

TEST(ChordRingOracle, BootstrapsConvergedRing) {
  RingFixture f(32);
  EXPECT_TRUE(f.ring_.IsConverged());
  EXPECT_EQ(f.ring_.AliveCount(), 32u);
}

TEST(ChordRingOracle, SuccessorPredecessorAreMutual) {
  RingFixture f(16);
  for (const auto& node : f.ring_.Nodes()) {
    ChordNode* successor = f.ring_.FindByActor(node->Successor().actor);
    ASSERT_NE(successor, nullptr);
    ASSERT_TRUE(successor->Predecessor().has_value());
    EXPECT_EQ(successor->Predecessor()->actor, node->Self().actor);
  }
}

TEST(ChordRingOracle, FingersMatchOracleSuccessors) {
  RingFixture f(20);
  for (const auto& node : f.ring_.Nodes()) {
    for (unsigned i = 0; i < FingerTable::kBits; i += 13) {
      const auto& finger = node->fingers().Get(i);
      ASSERT_TRUE(finger.has_value());
      EXPECT_EQ(finger->actor,
                f.ring_.ExpectedSuccessor(node->fingers().Start(i)).actor);
    }
  }
}

TEST(ChordRingOracle, EveryKeyOwnedByExactlyOneNode) {
  RingFixture f(12);
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    hash::UInt160::Words words;
    for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
    const Key key{words};
    std::size_t owners = 0;
    ChordNode* owner = nullptr;
    for (const auto& node : f.ring_.Nodes()) {
      if (node->Owns(key)) {
        ++owners;
        owner = node.get();
      }
    }
    EXPECT_EQ(owners, 1u);
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->Self().actor, f.ring_.ExpectedSuccessor(key).actor);
  }
}

TEST(ChordRingOracle, NextRouteStepNeverOvershoots) {
  RingFixture f(24);
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    hash::UInt160::Words words;
    for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
    const Key key{words};
    for (const auto& node : f.ring_.Nodes()) {
      const auto step = node->NextRouteStep(key);
      if (step.done) {
        EXPECT_EQ(step.node.actor, f.ring_.ExpectedSuccessor(key).actor);
      } else {
        // The next hop must lie strictly between us and the key: progress
        // without overshooting.
        EXPECT_TRUE(step.node.id.InOpenInterval(node->Self().id, key));
      }
    }
  }
}

TEST(ChordRingOracle, SingleNodeOwnsEverything) {
  RingFixture f(1);
  auto& node = f.ring_.Node(0);
  EXPECT_EQ(node.Successor().actor, node.Self().actor);
  EXPECT_TRUE(node.Owns(Key(0)));
  EXPECT_TRUE(node.Owns(Key::Max()));
  const auto step = node.NextRouteStep(Key(12345));
  EXPECT_TRUE(step.done);
  EXPECT_EQ(step.node.actor, node.Self().actor);
}

TEST(ChordRingOracle, TwoNodesSplitTheRing) {
  RingFixture f(2);
  auto& a = f.ring_.Node(0);
  auto& b = f.ring_.Node(1);
  EXPECT_EQ(a.Successor().actor, b.Self().actor);
  EXPECT_EQ(b.Successor().actor, a.Self().actor);
  // Each key owned by exactly one.
  for (std::uint64_t k : {0ULL, 1ULL, 999999ULL}) {
    EXPECT_NE(a.Owns(Key(k)), b.Owns(Key(k)));
  }
}

TEST(ChordRingOracle, ExpectedSuccessorWrapsAroundZero) {
  RingFixture f(8);
  // A key larger than every node id wraps to the smallest node id.
  Key largest_node(0);
  Key smallest_node = Key::Max();
  for (const auto& node : f.ring_.Nodes()) {
    largest_node = std::max(largest_node, node->Self().id);
    smallest_node = std::min(smallest_node, node->Self().id);
  }
  const Key beyond = largest_node + Key(1);
  EXPECT_EQ(f.ring_.ExpectedSuccessor(beyond).id, smallest_node);
}

}  // namespace
}  // namespace peertrack::chord
