// Iterative lookup correctness and hop-count properties against the ring
// oracle, parameterized over network size.

#include <gtest/gtest.h>

#include <cmath>

#include "chord/chord_ring.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace peertrack::chord {
namespace {

Key RandomKey(util::Rng& rng) {
  hash::UInt160::Words words;
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
  return Key{words};
}

class LookupSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  LookupSweep() : latency_(5.0), rng_(GetParam()), net_(sim_, latency_, rng_), ring_(net_) {
    for (std::size_t i = 0; i < GetParam(); ++i) {
      ring_.AddNode(util::Format("peer-{}", i));
    }
    ring_.OracleBootstrap();
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_;
  util::Rng rng_;
  sim::Network net_;
  ChordRing ring_;
};

TEST_P(LookupSweep, ResolvesToOracleSuccessor) {
  util::Rng keys(123);
  for (int trial = 0; trial < 50; ++trial) {
    const Key key = RandomKey(keys);
    const NodeRef expected = ring_.ExpectedSuccessor(key);
    auto& origin = ring_.Node(static_cast<std::size_t>(keys.NextBelow(ring_.NodeCount())));

    NodeRef resolved;
    bool completed = false;
    origin.Lookup(key, [&](const NodeRef& owner, std::size_t) {
      resolved = owner;
      completed = true;
    });
    sim_.Run();
    ASSERT_TRUE(completed);
    EXPECT_EQ(resolved.actor, expected.actor)
        << "key=" << key.ToShortHex() << " n=" << GetParam();
  }
}

TEST_P(LookupSweep, HopsAreLogarithmic) {
  util::Rng keys(321);
  util::RunningStats hops;
  for (int trial = 0; trial < 100; ++trial) {
    const Key key = RandomKey(keys);
    auto& origin = ring_.Node(static_cast<std::size_t>(keys.NextBelow(ring_.NodeCount())));
    origin.Lookup(key, [&](const NodeRef&, std::size_t h) {
      hops.Add(static_cast<double>(h));
    });
    sim_.Run();
  }
  const double log_n = std::log2(static_cast<double>(GetParam()));
  // Chord guarantee: O(log N) w.h.p.; with perfect fingers, mean ≈ ½·log2 N.
  EXPECT_LE(hops.Mean(), log_n + 1.0);
  EXPECT_LE(hops.Max(), 2.0 * log_n + 3.0);
}

TEST_P(LookupSweep, AllOriginsAgree) {
  util::Rng keys(99);
  const Key key = RandomKey(keys);
  const NodeRef expected = ring_.ExpectedSuccessor(key);
  for (std::size_t i = 0; i < ring_.NodeCount(); i += 7) {
    NodeRef resolved;
    ring_.Node(i).Lookup(key, [&](const NodeRef& owner, std::size_t) { resolved = owner; });
    sim_.Run();
    EXPECT_EQ(resolved.actor, expected.actor) << "origin=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(NetworkSizes, LookupSweep,
                         ::testing::Values(2, 3, 8, 32, 64, 128));

TEST(ChordLookup, OwnKeyResolvesLocally) {
  sim::Simulator sim;
  sim::ConstantLatency latency(5.0);
  util::Rng rng(4);
  sim::Network net(sim, latency, rng);
  ChordRing ring(net);
  for (int i = 0; i < 10; ++i) ring.AddNode(util::Format("n{}", i));
  ring.OracleBootstrap();

  // A key this node owns must resolve without leaving the initiator's
  // successor knowledge: hops may be 0 (successor-owned keys).
  auto& node = ring.Node(0);
  const Key own = node.Self().id;  // Owned by node itself.
  NodeRef resolved;
  std::size_t hops = 99;
  // Look up the key equal to our successor's id: done in 0 hops.
  node.Lookup(node.Successor().id, [&](const NodeRef& owner, std::size_t h) {
    resolved = owner;
    hops = h;
  });
  sim.Run();
  EXPECT_EQ(resolved.actor, node.Successor().actor);
  EXPECT_EQ(hops, 0u);
  (void)own;
}

TEST(ChordLookup, DeadNodeLookupFailsGracefully) {
  sim::Simulator sim;
  sim::ConstantLatency latency(5.0);
  util::Rng rng(4);
  sim::Network net(sim, latency, rng);
  ChordRing ring(net);
  for (int i = 0; i < 4; ++i) ring.AddNode(util::Format("n{}", i));
  ring.OracleBootstrap();

  auto& node = ring.Node(0);
  node.Crash();
  bool called = false;
  node.Lookup(Key(1), [&](const NodeRef& owner, std::size_t) {
    called = true;
    EXPECT_FALSE(owner.Valid());
  });
  sim.Run();
  EXPECT_TRUE(called);
}

TEST(ChordLookup, HopMetricsRecorded) {
  sim::Simulator sim;
  sim::ConstantLatency latency(5.0);
  util::Rng rng(4);
  sim::Network net(sim, latency, rng);
  ChordRing ring(net);
  for (int i = 0; i < 32; ++i) ring.AddNode(util::Format("n{}", i));
  ring.OracleBootstrap();

  util::Rng keys(8);
  for (int i = 0; i < 10; ++i) {
    ring.Node(0).Lookup(RandomKey(keys), [](const NodeRef&, std::size_t) {});
    sim.Run();
  }
  EXPECT_EQ(net.metrics().LookupHops().Count(), 10u);
}

}  // namespace
}  // namespace peertrack::chord
