// Gateway handoff edge cases under protocol-level churn.
//
// These scenarios run with real Chord maintenance (no oracle re-wiring):
// stabilization, death-certificate scrubbing, replica promotion, and the
// two-phase graceful leave are the only repair mechanisms available.
//
//   1. M1 races ownership transfer: an object moves while its gateway is
//      mid-leave; the location report lands on either side of the handoff
//      and must still be resolvable afterwards.
//   2. Two adjacent successors crash in the same stabilization round: with
//      R = 2 the surviving second successor holds the replica and promotes
//      it once it owns the range.
//   3. Re-replication after ring re-convergence: crash + leave + join, then
//      the gateway.replication and handoff.complete invariants must hold
//      at quiesce.

#include <gtest/gtest.h>

#include "obs/invariants.hpp"
#include "tracking/tracking_system.hpp"
#include "util/format.hpp"

namespace peertrack::tracking {
namespace {

SystemConfig ChurnConfig(IndexingMode mode) {
  SystemConfig config;
  config.tracker.mode = mode;
  config.tracker.window.tmax_ms = 100.0;
  config.tracker.replicate_index = true;
  config.tracker.query_timeout_ms = 5000.0;
  config.stabilize_every_ms = 100.0;
  config.fix_fingers_every_ms = 10.0;
  config.seed = 0x51abULL;
  return config;
}

std::size_t GatewayIndexOf(TrackingSystem& system, const hash::UInt160& object,
                           IndexingMode mode) {
  const chord::Key target =
      mode == IndexingMode::kIndividual
          ? object
          : hash::GroupKey(hash::Prefix::OfKey(object, system.CurrentLp()));
  chord::ChordNode* owner = system.ring().ExpectedOwner(target);
  return system.NodeIndexOfActor(owner->Self().actor);
}

void Settle(TrackingSystem& system, double ms) {
  system.RunUntil(system.simulator().Now() + ms);
}

TEST(TrackingHandoff, CaptureDuringLeaveStaysResolvable) {
  TrackingSystem system(12, ChurnConfig(IndexingMode::kIndividual));
  const auto object = hash::ObjectKey("epc:mid-leave-mover");
  const std::size_t gateway =
      GatewayIndexOf(system, object, IndexingMode::kIndividual);
  const std::size_t holder = (gateway + 1) % system.NodeCount();
  const std::size_t mover = (gateway + 2) % system.NodeCount();

  system.CaptureAt(holder, object, 10.0);
  Settle(system, 3000.0);

  // Begin the gateway's two-phase leave, then move the object while the
  // handoff is in flight: the M1 report races the ownership transfer.
  const auto summary = system.LeaveNode(gateway);
  ASSERT_TRUE(summary.left);
  system.CaptureAt(mover, object, system.simulator().Now() + 50.0);
  Settle(system, 20000.0);

  bool done = false;
  system.LocateQuery(mover == 0 ? 1 : 0, object,
                     [&](TrackerNode::LocateResult result) {
                       EXPECT_TRUE(result.ok)
                           << "capture racing the handoff must not be lost";
                       if (result.ok) {
                         EXPECT_EQ(system.NodeIndexOfActor(result.node.actor),
                                   mover);
                       }
                       done = true;
                     });
  Settle(system, 10000.0);
  EXPECT_TRUE(done);
}

TEST(TrackingHandoff, ReplicaPromotionSurvivesTwoAdjacentCrashes) {
  TrackingSystem system(14, ChurnConfig(IndexingMode::kIndividual));
  const auto object = hash::ObjectKey("epc:double-crash");
  const std::size_t gateway =
      GatewayIndexOf(system, object, IndexingMode::kIndividual);
  const std::size_t holder = (gateway + 3) % system.NodeCount();

  system.CaptureAt(holder, object, 10.0);
  Settle(system, 3000.0);

  // Crash the gateway and its first successor in the same instant — the
  // same stabilization round. With R = 2 the second successor still holds
  // the replica and, once it owns the range, promotes it.
  const auto& successors =
      system.Tracker(gateway).chord().successors().Entries();
  ASSERT_GE(successors.size(), 2u);
  const std::size_t succ0 = system.NodeIndexOfActor(successors[0].actor);
  ASSERT_NE(succ0, moods::kNowhere);
  system.CrashNode(gateway);
  system.CrashNode(succ0);
  Settle(system, 60000.0);

  std::size_t origin = system.NodeCount();
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    if (i != gateway && i != succ0 && system.Tracker(i).chord().Alive()) {
      origin = i;
      break;
    }
  }
  ASSERT_LT(origin, system.NodeCount());

  bool done = false;
  system.LocateQuery(origin, object, [&](TrackerNode::LocateResult result) {
    EXPECT_TRUE(result.ok)
        << "second successor's replica should have been promoted";
    if (result.ok) {
      EXPECT_EQ(system.NodeIndexOfActor(result.node.actor), holder);
    }
    done = true;
  });
  Settle(system, 10000.0);
  EXPECT_TRUE(done);
  EXPECT_GT(system.metrics().Counter("track.replica_promoted"), 0u);
}

TEST(TrackingHandoff, ReplicationInvariantHoldsAfterMixedChurn) {
  TrackingSystem system(12, ChurnConfig(IndexingMode::kGroup));

  // A handful of two-hop trajectories spread across the network.
  for (int i = 0; i < 8; ++i) {
    const auto object = hash::ObjectKey(util::Format("epc:mixed-{}", i));
    system.CaptureAt(static_cast<std::size_t>(i) % system.NodeCount(), object,
                     10.0 + 5.0 * i);
    system.CaptureAt(static_cast<std::size_t>(i + 5) % system.NodeCount(),
                     object, 600.0 + 5.0 * i);
  }
  Settle(system, 3000.0);

  obs::InvariantMonitor monitor(system.simulator(),
                                system.metrics().registry());
  obs::InstallRingChecks(monitor, system.ring());
  obs::InstallTrackingChecks(monitor, system);
  monitor.Start(/*period_ms=*/1000.0,
                /*until_ms=*/system.simulator().Now() + 95000.0);

  system.CrashNode(4);
  system.LeaveNode(7);
  system.ProtocolJoinNode();
  Settle(system, 90000.0);
  monitor.RunOnce();

  const auto report = monitor.Report();
  EXPECT_EQ(report.open_fatal, 0u);
  EXPECT_EQ(monitor.ledger().OpenCount("gateway.replication"), 0u)
      << "anti-entropy must re-protect the index after re-convergence";
  EXPECT_EQ(monitor.ledger().OpenCount("handoff.complete"), 0u)
      << "no surviving state may still reference the graceful leaver";
  EXPECT_EQ(monitor.OpenViolations(), 0u);
}

}  // namespace
}  // namespace peertrack::tracking
