// Unit tests of Chord routing-table components (finger table, successor
// list) in isolation from the network.

#include <gtest/gtest.h>

#include "chord/finger_table.hpp"
#include "chord/successor_list.hpp"

namespace peertrack::chord {
namespace {

NodeRef Ref(std::uint64_t id, sim::ActorId actor) {
  return NodeRef{Key(id), actor};
}

TEST(FingerTable, StartPoints) {
  FingerTable table(Key(100));
  EXPECT_EQ(table.Start(0), Key(101));
  EXPECT_EQ(table.Start(4), Key(116));
  // Wraps modulo 2^160.
  FingerTable near_top(Key::Max());
  EXPECT_EQ(near_top.Start(0), Key(0));
}

TEST(FingerTable, ClosestPrecedingScansHighToLow) {
  FingerTable table(Key(0));
  table.Set(3, Ref(8, 1));     // Covers start 8.
  table.Set(5, Ref(40, 2));    // Covers start 32.
  table.Set(7, Ref(200, 3));   // Covers start 128.

  // Key 100: node 40 is the closest finger strictly inside (0, 100).
  auto hop = table.ClosestPreceding(Key(100));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->id, Key(40));

  // Key 9: only node 8 precedes it.
  hop = table.ClosestPreceding(Key(9));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->id, Key(8));

  // Key 5: no finger inside (0, 5).
  EXPECT_FALSE(table.ClosestPreceding(Key(5)).has_value());
}

TEST(FingerTable, ClosestPrecedingExcludesKeyItself) {
  FingerTable table(Key(0));
  table.Set(6, Ref(64, 1));
  // Interval is open: finger exactly at the key must not be returned.
  EXPECT_FALSE(table.ClosestPreceding(Key(64)).has_value());
  EXPECT_TRUE(table.ClosestPreceding(Key(65)).has_value());
}

TEST(FingerTable, EvictClearsAllEntriesOfPeer) {
  FingerTable table(Key(0));
  table.Set(1, Ref(10, 7));
  table.Set(2, Ref(10, 7));
  table.Set(3, Ref(20, 8));
  EXPECT_EQ(table.Evict(Ref(10, 7)), 2u);
  EXPECT_EQ(table.PopulatedCount(), 1u);
  EXPECT_FALSE(table.Get(1).has_value());
  EXPECT_TRUE(table.Get(3).has_value());
}

TEST(SuccessorList, KeepsClockwiseOrder) {
  SuccessorList list(Key(100), 4);
  list.Offer(Ref(150, 1));
  list.Offer(Ref(120, 2));
  list.Offer(Ref(5, 3));  // Wraps past zero: farthest.
  list.Offer(Ref(130, 4));
  ASSERT_EQ(list.Size(), 4u);
  EXPECT_EQ(list.Entries()[0].id, Key(120));
  EXPECT_EQ(list.Entries()[1].id, Key(130));
  EXPECT_EQ(list.Entries()[2].id, Key(150));
  EXPECT_EQ(list.Entries()[3].id, Key(5));
  EXPECT_EQ(list.First().id, Key(120));
}

TEST(SuccessorList, CapacityEvictsFarthest) {
  SuccessorList list(Key(0), 2);
  list.Offer(Ref(30, 1));
  list.Offer(Ref(20, 2));
  list.Offer(Ref(10, 3));
  ASSERT_EQ(list.Size(), 2u);
  EXPECT_EQ(list.Entries()[0].id, Key(10));
  EXPECT_EQ(list.Entries()[1].id, Key(20));
}

TEST(SuccessorList, RejectsSelfAndDuplicates) {
  SuccessorList list(Key(7), 4);
  EXPECT_FALSE(list.Offer(Ref(7, 0)));
  EXPECT_TRUE(list.Offer(Ref(9, 1)));
  EXPECT_FALSE(list.Offer(Ref(9, 1)));
  EXPECT_EQ(list.Size(), 1u);
}

TEST(SuccessorList, RemoveByActor) {
  SuccessorList list(Key(0), 4);
  list.Offer(Ref(1, 10));
  list.Offer(Ref(2, 11));
  EXPECT_TRUE(list.Remove(Ref(1, 10)));
  EXPECT_FALSE(list.Remove(Ref(1, 10)));
  EXPECT_EQ(list.First().id, Key(2));
}

TEST(SuccessorList, MergeTakesNearest) {
  SuccessorList list(Key(0), 3);
  list.Offer(Ref(50, 1));
  list.Merge({Ref(10, 2), Ref(90, 3), Ref(30, 4)});
  ASSERT_EQ(list.Size(), 3u);
  EXPECT_EQ(list.Entries()[0].id, Key(10));
  EXPECT_EQ(list.Entries()[1].id, Key(30));
  EXPECT_EQ(list.Entries()[2].id, Key(50));
}

}  // namespace
}  // namespace peertrack::chord
