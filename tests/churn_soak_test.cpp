// Seeded churn-soak property test (the PR's acceptance harness).
//
// A mid-sized network runs with full protocol maintenance while a seeded
// schedule of joins, crashes, graceful leaves, captures, and live queries
// plays out. The InvariantMonitor audits ring and tracking structure the
// whole time. The property under test is not "nothing ever breaks" —
// violations are *expected* to open during churn — but that the system is
// self-healing:
//
//   * at quiesce, zero violations remain open (fatal or otherwise),
//   * every violation that opened healed within kRepairBoundMs,
//   * every live query issued during churn eventually completed,
//   * after quiesce, L(o, now) answers match the ground-truth oracle for
//     every object whose current holder is still alive.
//
// Each seed is a distinct deterministic run; CI executes all of them
// (ctest label: churn).

#include <gtest/gtest.h>

#include <vector>

#include "obs/invariants.hpp"
#include "tracking/tracking_system.hpp"
#include "util/format.hpp"

namespace peertrack::tracking {
namespace {

constexpr double kRepairBoundMs = 100000.0;  ///< Max tolerated heal latency.
constexpr std::size_t kInitialNodes = 16;
constexpr std::size_t kAliveFloor = 10;  ///< Never shrink below this.
constexpr int kRounds = 30;

SystemConfig SoakConfig(std::uint64_t seed) {
  SystemConfig config;
  config.tracker.mode = IndexingMode::kGroup;
  config.tracker.window.tmax_ms = 100.0;
  config.tracker.replicate_index = true;
  config.tracker.query_timeout_ms = 5000.0;
  config.stabilize_every_ms = 100.0;
  config.fix_fingers_every_ms = 10.0;
  config.seed = seed;
  return config;
}

class ChurnSoak : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void Settle(TrackingSystem& system, double ms) {
    system.RunUntil(system.simulator().Now() + ms);
  }

  /// Nodes that can host captures / originate queries / be churned.
  std::vector<std::size_t> Usable(TrackingSystem& system) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < system.NodeCount(); ++i) {
      auto& tracker = system.Tracker(i);
      if (tracker.chord().Alive() && !tracker.Leaving()) out.push_back(i);
    }
    return out;
  }
};

TEST_P(ChurnSoak, RandomChurnHealsWithinBound) {
  const std::uint64_t seed = GetParam();
  TrackingSystem system(kInitialNodes, SoakConfig(seed));
  util::Rng rng(seed * 7919 + 3);  // Schedule stream, distinct from the net's.

  std::vector<hash::UInt160> objects;
  for (int i = 0; i < 12; ++i) {
    objects.push_back(hash::ObjectKey(util::Format("epc:soak-{}-{}", seed, i)));
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    system.CaptureAt(i % kInitialNodes, objects[i], 10.0 + static_cast<double>(i));
  }
  Settle(system, 3000.0);

  obs::InvariantMonitor monitor(system.simulator(), system.metrics().registry());
  obs::InstallRingChecks(monitor, system.ring());
  obs::InstallTrackingChecks(monitor, system);
  monitor.Start(/*period_ms=*/500.0,
                /*until_ms=*/system.simulator().Now() + 400000.0);

  int joins_left = 3, crashes_left = 3, leaves_left = 3;
  std::size_t queries_issued = 0, queries_completed = 0;

  for (int round = 0; round < kRounds; ++round) {
    const auto usable = Usable(system);
    ASSERT_GE(usable.size(), 2u);
    const std::uint64_t op = rng.Next() % 10;
    bool destructive = false;

    if (op == 6 && joins_left > 0) {
      system.ProtocolJoinNode();
      --joins_left;
      destructive = true;
    } else if (op == 7 && crashes_left > 0 && usable.size() > kAliveFloor) {
      system.CrashNode(usable[rng.Next() % usable.size()]);
      --crashes_left;
      destructive = true;
    } else if (op == 8 && leaves_left > 0 && usable.size() > kAliveFloor) {
      system.LeaveNode(usable[rng.Next() % usable.size()]);
      --leaves_left;
      destructive = true;
    } else if (op == 4 || op == 5) {
      // Live query during churn: must complete (success not required —
      // the holder itself may be dead), correctness is asserted at quiesce.
      const auto& object = objects[rng.Next() % objects.size()];
      const std::size_t origin = usable[rng.Next() % usable.size()];
      ++queries_issued;
      if (op == 4) {
        system.LocateQuery(origin, object,
                           [&](TrackerNode::LocateResult) { ++queries_completed; });
      } else {
        system.TraceQuery(origin, object,
                          [&](TrackerNode::TraceResult) { ++queries_completed; });
      }
    } else {
      const auto& object = objects[rng.Next() % objects.size()];
      const std::size_t node = usable[rng.Next() % usable.size()];
      system.CaptureAt(node, object, system.simulator().Now() + 10.0);
    }
    // Destructive rounds get a long settle so graceful leaves finish their
    // two-phase handoff before the next membership event (the protocol
    // serializes real-world churn the same way operators do).
    Settle(system, destructive ? 6000.0 : 800.0);
  }

  // Quiesce: no more churn; everything must converge and heal.
  Settle(system, 60000.0);
  monitor.RunOnce();

  EXPECT_EQ(queries_completed, queries_issued)
      << "a live query was dropped during churn";

  const auto report = monitor.Report();
  EXPECT_EQ(report.open_fatal, 0u) << "open fatal violations at quiesce";
  EXPECT_EQ(monitor.OpenViolations(), 0u)
      << "violations still open at quiesce (seed " << seed << ")";
  for (const auto& violation : monitor.ledger().violations()) {
    if (!violation.Open()) continue;
    ADD_FAILURE() << "open: " << violation.check << " " << violation.subject
                  << " — " << violation.detail << " (actor "
                  << violation.actor << ", since " << violation.first_seen_ms
                  << ")";
  }
  for (const auto& check : report.checks) {
    EXPECT_LE(check.repair.max_ms, kRepairBoundMs)
        << check.id << " healed too slowly (seed " << seed << ")";
  }

  // Ground truth: every object currently held by an alive node must be
  // locatable at its true position.
  const auto origins = Usable(system);
  ASSERT_FALSE(origins.empty());
  std::size_t sweep_expected = 0, sweep_correct = 0;
  for (const auto& object : objects) {
    const moods::NodeIndex latest =
        system.oracle().Locate(object, system.simulator().Now());
    if (latest == moods::kNowhere) continue;
    if (!system.Tracker(latest).chord().Alive()) continue;
    ++sweep_expected;
    system.LocateQuery(
        origins[sweep_expected % origins.size()], object,
        [&, latest](TrackerNode::LocateResult result) {
          if (result.ok &&
              system.NodeIndexOfActor(result.node.actor) == latest) {
            ++sweep_correct;
          }
        });
  }
  Settle(system, 15000.0);
  EXPECT_EQ(sweep_correct, sweep_expected)
      << "post-quiesce locate sweep disagreed with the oracle (seed " << seed
      << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSoak,
                         ::testing::Values(11ull, 23ull, 47ull));

}  // namespace
}  // namespace peertrack::tracking
