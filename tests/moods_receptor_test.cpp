#include "moods/receptor.hpp"

#include <gtest/gtest.h>

namespace peertrack::moods {
namespace {

TEST(Receptor, ForwardsCapturesToSink) {
  std::vector<std::pair<std::string, Time>> captured;
  Receptor receptor("dock-door-1", [&](const Object& o, Time t) {
    captured.emplace_back(o.RawId(), t);
  });
  receptor.Read(Object("epc:1"), 10.0);
  receptor.Read(Object("epc:2"), 11.0);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, "epc:1");
  EXPECT_DOUBLE_EQ(captured[1].second, 11.0);
  EXPECT_EQ(receptor.RawReads(), 2u);
  EXPECT_EQ(receptor.Captures(), 2u);
}

TEST(Receptor, DedupWindowCollapsesRepeatedReads) {
  int captures = 0;
  Receptor receptor("gate", [&](const Object&, Time) { ++captures; });
  receptor.SetDedupWindow(100.0);
  const Object tag("epc:42");
  receptor.Read(tag, 0.0);
  receptor.Read(tag, 10.0);   // Duplicate.
  receptor.Read(tag, 50.0);   // Duplicate (window slides with last read).
  receptor.Read(tag, 200.0);  // New capture.
  EXPECT_EQ(captures, 2);
  EXPECT_EQ(receptor.RawReads(), 4u);
  EXPECT_EQ(receptor.Captures(), 2u);
}

TEST(Receptor, DistinctObjectsNotDeduped) {
  int captures = 0;
  Receptor receptor("gate", [&](const Object&, Time) { ++captures; });
  receptor.SetDedupWindow(100.0);
  receptor.Read(Object("epc:a"), 0.0);
  receptor.Read(Object("epc:b"), 1.0);
  EXPECT_EQ(captures, 2);
}

TEST(Receptor, ZeroWindowDisablesDedup) {
  int captures = 0;
  Receptor receptor("gate", [&](const Object&, Time) { ++captures; });
  const Object tag("epc:x");
  receptor.Read(tag, 0.0);
  receptor.Read(tag, 0.0);
  EXPECT_EQ(captures, 2);
}

}  // namespace
}  // namespace peertrack::moods
