// Message-loss injection and its effect on the protocols.

#include <gtest/gtest.h>

#include "chord/chord_ring.hpp"
#include "tracking/tracking_system.hpp"
#include "util/format.hpp"
#include "workload/scenario.hpp"

namespace peertrack {
namespace {

struct CountingActor final : sim::Actor {
  int received = 0;
  void OnMessage(sim::ActorId, std::unique_ptr<sim::Message>) override { ++received; }
};

struct PingMessage final : sim::MessageBase<PingMessage> {
  std::string_view TypeName() const noexcept override { return "test.ping"; }
  std::size_t ApproxBytes() const noexcept override { return 1; }
};

TEST(MessageLoss, DropRateIsRespected) {
  sim::Simulator sim;
  sim::ConstantLatency latency(1.0);
  util::Rng rng(3);
  sim::Network net(sim, latency, rng);
  CountingActor a, b;
  const auto ida = net.Register(a);
  const auto idb = net.Register(b);

  net.SetLossRate(0.25);
  constexpr int kSends = 4000;
  for (int i = 0; i < kSends; ++i) {
    net.Send(ida, idb, std::make_unique<PingMessage>());
  }
  sim.Run();
  EXPECT_NEAR(b.received, kSends * 0.75, kSends * 0.05);
  EXPECT_EQ(net.metrics().DroppedMessages(),
            static_cast<std::uint64_t>(kSends - b.received));
  // Senders paid for every message, lost or not.
  EXPECT_EQ(net.metrics().TotalMessages(), static_cast<std::uint64_t>(kSends));
}

TEST(MessageLoss, ZeroAndFullRates) {
  sim::Simulator sim;
  sim::ConstantLatency latency(1.0);
  util::Rng rng(3);
  sim::Network net(sim, latency, rng);
  CountingActor a, b;
  const auto ida = net.Register(a);
  const auto idb = net.Register(b);

  net.SetLossRate(0.0);
  for (int i = 0; i < 50; ++i) net.Send(ida, idb, std::make_unique<PingMessage>());
  sim.Run();
  EXPECT_EQ(b.received, 50);

  net.SetLossRate(1.0);
  for (int i = 0; i < 50; ++i) net.Send(ida, idb, std::make_unique<PingMessage>());
  sim.Run();
  EXPECT_EQ(b.received, 50);  // Nothing new arrived.

  net.SetLossRate(7.0);  // Clamped.
  EXPECT_DOUBLE_EQ(net.LossRate(), 1.0);
}

TEST(MessageLoss, SendInstantRollsLossModel) {
  // Regression: SendInstant() recorded the message but never rolled the
  // loss model, silently making every instant exchange reliable under
  // failure injection. It must drop at the configured rate like Send().
  sim::Simulator sim;
  sim::ConstantLatency latency(1.0);
  util::Rng rng(3);
  sim::Network net(sim, latency, rng);
  CountingActor a, b;
  const auto ida = net.Register(a);
  const auto idb = net.Register(b);

  net.SetLossRate(0.25);
  constexpr int kSends = 4000;
  for (int i = 0; i < kSends; ++i) {
    net.SendInstant(ida, idb, std::make_unique<PingMessage>());
  }
  EXPECT_NEAR(b.received, kSends * 0.75, kSends * 0.05);
  EXPECT_EQ(net.metrics().DroppedByLoss(),
            static_cast<std::uint64_t>(kSends - b.received));
  // Senders paid for every message, lost or not.
  EXPECT_EQ(net.metrics().TotalMessages(), static_cast<std::uint64_t>(kSends));
}

TEST(MessageLoss, SendInstantSelfDeliveryIgnoresLoss) {
  // Self-sends never touch the wire: no metric, no loss roll — even at
  // loss rate 1.0 the local delivery happens.
  sim::Simulator sim;
  sim::ConstantLatency latency(1.0);
  util::Rng rng(3);
  sim::Network net(sim, latency, rng);
  CountingActor a;
  const auto ida = net.Register(a);
  net.SetLossRate(1.0);
  net.SendInstant(ida, ida, std::make_unique<PingMessage>());
  EXPECT_EQ(a.received, 1);
  EXPECT_EQ(net.metrics().TotalMessages(), 0u);
  EXPECT_EQ(net.metrics().DroppedMessages(), 0u);
}

TEST(MessageLoss, ChordLookupsSurviveModerateLoss) {
  // Iterative lookups retry after hop timeouts, so moderate loss degrades
  // latency, not correctness.
  sim::Simulator sim;
  sim::ConstantLatency latency(5.0);
  util::Rng rng(11);
  sim::Network net(sim, latency, rng);
  chord::ChordRing ring(net);
  for (int i = 0; i < 24; ++i) ring.AddNode(util::Format("loss-{}", i));
  ring.OracleBootstrap();
  net.SetLossRate(0.05);

  util::Rng keys(5);
  int resolved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    hash::UInt160::Words words;
    for (auto& w : words) w = static_cast<std::uint32_t>(keys.Next());
    const chord::Key key{words};
    ring.Node(static_cast<std::size_t>(keys.NextBelow(24))).Lookup(
        key, [&](const chord::NodeRef& owner, std::size_t) {
          if (owner.Valid() && owner.actor == ring.ExpectedSuccessor(key).actor) {
            ++resolved;
          }
        });
    sim.Run();
  }
  EXPECT_GE(resolved, 36);  // Allow a few unlucky multi-loss failures.
}

TEST(MessageLoss, TraceAndLocateQueriesCompleteAtModerateLoss) {
  // The query-side RPCs (lookup steps, trace probes, IOP walks) retry with
  // backoff, so 5% loss costs latency, not answers.
  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kIndividual;
  tracking::TrackingSystem system(16, config);

  std::vector<hash::UInt160> objects;
  for (int i = 0; i < 8; ++i) {
    const auto object = hash::ObjectKey(util::Format("epc:retry-{}", i));
    objects.push_back(object);
    workload::InjectTrajectory(
        system, object,
        {static_cast<moods::NodeIndex>(i % 16),
         static_cast<moods::NodeIndex>((i + 5) % 16),
         static_cast<moods::NodeIndex>((i + 11) % 16)},
        10.0, 400.0);
  }
  system.Run();
  system.FlushAllWindows();

  system.network().SetLossRate(0.05);
  int trace_done = 0, trace_correct = 0;
  int locate_done = 0, locate_correct = 0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& object = objects[i];
    const std::size_t origin = (i + 1) % 16;
    system.TraceQuery(origin, object, [&](tracking::TrackerNode::TraceResult r) {
      ++trace_done;
      const auto* expected = system.oracle().FullTrace(object);
      if (r.ok && expected != nullptr && r.path.size() == expected->size()) {
        bool match = true;
        for (std::size_t s = 0; s < expected->size(); ++s) {
          if (system.NodeIndexOfActor(r.path[s].node.actor) != (*expected)[s].node) {
            match = false;
          }
        }
        trace_correct += match ? 1 : 0;
      }
    });
    system.Run();
    system.LocateQuery(origin, object, [&](tracking::TrackerNode::LocateResult r) {
      ++locate_done;
      const auto* expected = system.oracle().FullTrace(object);
      if (r.ok && expected != nullptr && !expected->empty() &&
          system.NodeIndexOfActor(r.node.actor) == expected->back().node) {
        ++locate_correct;
      }
    });
    system.Run();
  }

  // Every query terminated (no hangs) ...
  EXPECT_EQ(trace_done, 8);
  EXPECT_EQ(locate_done, 8);
  // ... and nearly all recovered the exact oracle answer despite the loss.
  EXPECT_GE(trace_correct, 7);
  EXPECT_GE(locate_correct, 7);
  // The recovery was paid for by rpc-level retries, visible in metrics.
  EXPECT_GE(system.metrics().RpcRetries(), 1u);
}

TEST(MessageLoss, QueriesWithDownNodeCompleteOrFailCleanly) {
  // One permanently-down trajectory node plus 5% loss: every query still
  // terminates — either degraded (partial walk) or with an explicit error.
  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kIndividual;
  tracking::TrackingSystem system(12, config);
  const auto object = hash::ObjectKey("epc:through-down");
  workload::InjectTrajectory(system, object, {3, 5, 7}, 10.0, 400.0);
  system.Run();
  system.FlushAllWindows();

  // Node 5 (mid-trajectory) dies; the wire stays lossy.
  system.network().SetUp(system.Tracker(5).Self().actor, false);
  system.network().SetLossRate(0.05);

  bool trace_done = false;
  system.TraceQuery(0, object, [&](tracking::TrackerNode::TraceResult) {
    // ok or not depends on whether node 5 was the gateway / a needed walk
    // hop; the contract under failure is termination, not success.
    trace_done = true;
  });
  system.Run();
  EXPECT_TRUE(trace_done);

  bool locate_done = false;
  system.LocateQuery(1, object, [&](tracking::TrackerNode::LocateResult) {
    locate_done = true;
  });
  system.Run();
  EXPECT_TRUE(locate_done);
}

TEST(MessageLoss, QueriesTimeOutCleanlyUnderTotalLoss) {
  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kIndividual;
  config.tracker.query_timeout_ms = 2000.0;
  tracking::TrackingSystem system(8, config);
  const auto object = hash::ObjectKey("epc:lossy");
  workload::InjectTrajectory(system, object, {1, 5}, 10.0, 500.0);
  system.Run();

  system.network().SetLossRate(1.0);
  bool done = false;
  system.TraceQuery(0, object, [&](tracking::TrackerNode::TraceResult result) {
    EXPECT_FALSE(result.ok);
    done = true;
  });
  system.Run();
  EXPECT_TRUE(done);
  EXPECT_GE(system.metrics().Counter("track.query_timeout"), 1u);
}

}  // namespace
}  // namespace peertrack
