#include "moods/iop.hpp"

#include <gtest/gtest.h>

namespace peertrack::moods {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("object-" + std::to_string(i)); }

chord::NodeRef Node(sim::ActorId actor) { return chord::NodeRef{hash::UInt160(actor), actor}; }

TEST(IopStore, RecordsAndFindsVisits) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 50.0);
  EXPECT_TRUE(store.Knows(Obj(1)));
  EXPECT_FALSE(store.Knows(Obj(2)));
  const auto* visits = store.VisitsOf(Obj(1));
  ASSERT_NE(visits, nullptr);
  ASSERT_EQ(visits->size(), 2u);
  EXPECT_DOUBLE_EQ((*visits)[0].arrived, 10.0);
  EXPECT_DOUBLE_EQ((*visits)[1].arrived, 50.0);
  EXPECT_EQ(store.ObjectCount(), 1u);
  EXPECT_EQ(store.VisitCount(), 2u);
}

TEST(IopStore, OutOfOrderArrivalsStaySorted) {
  IopStore store;
  store.RecordArrival(Obj(1), 50.0);
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 30.0);
  const auto* visits = store.VisitsOf(Obj(1));
  ASSERT_EQ(visits->size(), 3u);
  EXPECT_DOUBLE_EQ((*visits)[0].arrived, 10.0);
  EXPECT_DOUBLE_EQ((*visits)[1].arrived, 30.0);
  EXPECT_DOUBLE_EQ((*visits)[2].arrived, 50.0);
}

TEST(IopStore, DuplicateArrivalIsIdempotent) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 10.0);
  EXPECT_EQ(store.VisitsOf(Obj(1))->size(), 1u);
  EXPECT_EQ(store.VisitCount(), 1u);
}

TEST(IopStore, SetFromLinksTheRightVisit) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 50.0);
  store.SetFrom(Obj(1), 50.0, Node(7), 42.0);
  const Visit* visit = store.VisitAt(Obj(1), 50.0);
  ASSERT_NE(visit, nullptr);
  ASSERT_TRUE(visit->from.has_value());
  EXPECT_EQ(visit->from->actor, 7u);
  EXPECT_DOUBLE_EQ(*visit->from_arrived, 42.0);
  // The earlier visit is untouched.
  EXPECT_FALSE(store.VisitAt(Obj(1), 10.0)->from.has_value());
}

TEST(IopStore, SetFromBeforeArrivalCreatesVisit) {
  // M3 can overtake the local capture record in a reordered network.
  IopStore store;
  store.SetFrom(Obj(1), 25.0, Node(3), 20.0);
  ASSERT_TRUE(store.Knows(Obj(1)));
  const Visit* visit = store.VisitAt(Obj(1), 25.0);
  ASSERT_NE(visit, nullptr);
  EXPECT_EQ(visit->from->actor, 3u);
}

TEST(IopStore, SetFromFirstAppearance) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.SetFrom(Obj(1), 10.0, chord::NodeRef{}, std::nullopt);
  const Visit* visit = store.VisitAt(Obj(1), 10.0);
  ASSERT_TRUE(visit->from.has_value());
  EXPECT_FALSE(visit->from->Valid());
}

TEST(IopStore, SetToPicksLatestVisitBeforeDeparture) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 100.0);
  // Object left the first visit, arriving elsewhere at t=60.
  store.SetTo(Obj(1), Node(9), 60.0);
  const Visit* first = store.VisitAt(Obj(1), 10.0);
  ASSERT_TRUE(first->to.has_value());
  EXPECT_EQ(first->to->actor, 9u);
  EXPECT_DOUBLE_EQ(*first->to_arrived, 60.0);
  EXPECT_FALSE(store.VisitAt(Obj(1), 100.0)->to.has_value());
}

TEST(IopStore, SetToUnknownObjectIsIgnored) {
  IopStore store;
  store.SetTo(Obj(5), Node(1), 10.0);
  EXPECT_FALSE(store.Knows(Obj(5)));
}

TEST(IopStore, VisitAtOrBefore) {
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 50.0);
  EXPECT_EQ(store.VisitAtOrBefore(Obj(1), 5.0), nullptr);
  EXPECT_DOUBLE_EQ(store.VisitAtOrBefore(Obj(1), 10.0)->arrived, 10.0);
  EXPECT_DOUBLE_EQ(store.VisitAtOrBefore(Obj(1), 49.9)->arrived, 10.0);
  EXPECT_DOUBLE_EQ(store.VisitAtOrBefore(Obj(1), 1000.0)->arrived, 50.0);
}

TEST(IopStore, RevisitsKeepIndependentLinks) {
  // The same object visits this node twice; each visit holds its own
  // from/to pair (the doubly-linked list passes through this node twice).
  IopStore store;
  store.RecordArrival(Obj(1), 10.0);
  store.RecordArrival(Obj(1), 200.0);
  store.SetFrom(Obj(1), 10.0, chord::NodeRef{}, std::nullopt);
  store.SetTo(Obj(1), Node(2), 100.0);
  store.SetFrom(Obj(1), 200.0, Node(2), 100.0);
  const Visit* first = store.VisitAt(Obj(1), 10.0);
  const Visit* second = store.VisitAt(Obj(1), 200.0);
  EXPECT_FALSE(first->from->Valid());
  EXPECT_EQ(first->to->actor, 2u);
  EXPECT_EQ(second->from->actor, 2u);
  EXPECT_FALSE(second->to.has_value());
}

}  // namespace
}  // namespace peertrack::moods
