// Snapshot/restore round-trips of the local repository.

#include <gtest/gtest.h>

#include "moods/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace peertrack::moods {
namespace {

hash::UInt160 Obj(int i) { return hash::ObjectKey("snap-" + std::to_string(i)); }

chord::NodeRef Node(sim::ActorId actor) {
  return chord::NodeRef{hash::UInt160(actor), actor};
}

bool VisitsEqual(const Visit& a, const Visit& b) {
  auto ref_eq = [](const std::optional<chord::NodeRef>& x,
                   const std::optional<chord::NodeRef>& y) {
    if (x.has_value() != y.has_value()) return false;
    return !x.has_value() || (*x == *y);
  };
  return a.arrived == b.arrived && ref_eq(a.from, b.from) && ref_eq(a.to, b.to) &&
         a.from_arrived == b.from_arrived && a.to_arrived == b.to_arrived;
}

IopStore MakePopulatedStore(int objects, util::Rng& rng) {
  IopStore store;
  for (int i = 0; i < objects; ++i) {
    double t = 10.0;
    const int visits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int v = 0; v < visits; ++v) {
      store.RecordArrival(Obj(i), t);
      if (v == 0) {
        store.SetFrom(Obj(i), t, chord::NodeRef{}, std::nullopt);  // First sight.
      } else {
        store.SetFrom(Obj(i), t, Node(static_cast<sim::ActorId>(v)), t - 100.0);
      }
      if (rng.NextBool(0.5)) {
        store.SetTo(Obj(i), Node(static_cast<sim::ActorId>(v + 10)), t + 50.0);
      }
      t += 1000.0;
    }
  }
  return store;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  util::Rng rng(44);
  const IopStore original = MakePopulatedStore(50, rng);
  const auto blob = SaveIopStore(original);
  ASSERT_FALSE(blob.empty());

  IopStore restored;
  ASSERT_TRUE(LoadIopStore(blob, restored));
  EXPECT_EQ(restored.ObjectCount(), original.ObjectCount());
  EXPECT_EQ(restored.VisitCount(), original.VisitCount());

  original.ForEachObject([&](const hash::UInt160& object,
                             const std::vector<Visit>& visits) {
    const auto* other = restored.VisitsOf(object);
    ASSERT_NE(other, nullptr) << object.ToShortHex();
    ASSERT_EQ(other->size(), visits.size());
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_TRUE(VisitsEqual(visits[i], (*other)[i])) << object.ToShortHex();
    }
  });
}

TEST(Snapshot, EmptyStoreRoundTrips) {
  IopStore empty;
  IopStore restored;
  EXPECT_TRUE(LoadIopStore(SaveIopStore(empty), restored));
  EXPECT_EQ(restored.ObjectCount(), 0u);
}

TEST(Snapshot, RejectsWrongMagic) {
  util::Rng rng(7);
  auto blob = SaveIopStore(MakePopulatedStore(3, rng));
  blob[0] ^= 0xFF;
  IopStore restored;
  EXPECT_FALSE(LoadIopStore(blob, restored));
}

TEST(Snapshot, RejectsTruncation) {
  util::Rng rng(7);
  auto blob = SaveIopStore(MakePopulatedStore(5, rng));
  blob.resize(blob.size() / 2);
  IopStore restored;
  EXPECT_FALSE(LoadIopStore(blob, restored));
}

TEST(Snapshot, RejectsTrailingGarbage) {
  util::Rng rng(7);
  auto blob = SaveIopStore(MakePopulatedStore(2, rng));
  blob.push_back(0x42);
  IopStore restored;
  EXPECT_FALSE(LoadIopStore(blob, restored));
}

// GCC 12 constant-folds this whole write sequence into libstdc++ internals
// and then emits a bogus -Wstringop-overflow for the vector growth
// (bugzilla PR105329 family); the suppression is local to this test.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
TEST(ByteCodec, PrimitivesRoundTrip) {
  util::ByteWriter writer;
  writer.U8(0xAB);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFULL);
  writer.F64(-3.75);
  writer.Bool(true);
  writer.String("hello \x01 world");

  util::ByteReader reader(writer.Data());
  EXPECT_EQ(reader.U8(), 0xAB);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(reader.F64(), -3.75);
  EXPECT_TRUE(reader.Bool());
  EXPECT_EQ(reader.String(), "hello \x01 world");
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
}
#pragma GCC diagnostic pop

TEST(ByteCodec, OverreadLatchesError) {
  util::ByteWriter writer;
  writer.U8(1);
  util::ByteReader reader(writer.Data());
  reader.U8();
  reader.U64();  // Past the end.
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.U32(), 0u);  // Still safe to call.
}

}  // namespace
}  // namespace peertrack::moods
