// Micro-benchmark (A3): Chord routing — validates the O(log N) hop bound
// the paper's cost analysis rests on (Section IV-C) and measures the
// simulator's lookup throughput.

#include <benchmark/benchmark.h>

#include <memory>

#include "chord/chord_ring.hpp"
#include "util/format.hpp"

namespace {

using namespace peertrack;

struct RingHarness {
  explicit RingHarness(std::size_t n)
      : latency(5.0), rng(7), network(sim, latency, rng), ring(network) {
    for (std::size_t i = 0; i < n; ++i) ring.AddNode(util::Format("bench-{}", i));
    ring.OracleBootstrap();
  }
  sim::Simulator sim;
  sim::ConstantLatency latency;
  util::Rng rng;
  sim::Network network;
  chord::ChordRing ring;
};

chord::Key RandomKey(util::Rng& rng) {
  hash::UInt160::Words words;
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
  return chord::Key{words};
}

void BM_ChordLookup(benchmark::State& state) {
  RingHarness harness(static_cast<std::size_t>(state.range(0)));
  util::Rng keys(11);
  util::RunningStats hops;
  for (auto _ : state) {
    const chord::Key key = RandomKey(keys);
    auto& origin =
        harness.ring.Node(static_cast<std::size_t>(keys.NextBelow(harness.ring.NodeCount())));
    std::size_t observed = 0;
    origin.Lookup(key, [&](const chord::NodeRef&, std::size_t h) { observed = h; });
    harness.sim.Run();
    hops.Add(static_cast<double>(observed));
    benchmark::DoNotOptimize(observed);
  }
  state.counters["mean_hops"] = hops.Mean();
  state.counters["max_hops"] = hops.Max();
}
BENCHMARK(BM_ChordLookup)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_OracleBootstrap(benchmark::State& state) {
  for (auto _ : state) {
    RingHarness harness(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(harness.ring.NodeCount());
  }
}
BENCHMARK(BM_OracleBootstrap)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_RouteStepDecision(benchmark::State& state) {
  RingHarness harness(256);
  util::Rng keys(13);
  auto& node = harness.ring.Node(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.NextRouteStep(RandomKey(keys)));
  }
}
BENCHMARK(BM_RouteStepDecision);

}  // namespace

BENCHMARK_MAIN();
