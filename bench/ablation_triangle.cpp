// Ablation A1: Data-Triangle delegation policy.
//
// The paper fixes α (the delegated fraction) and the delegation trigger
// without sweeping them. This ablation varies both and also disables the
// triangle entirely, reporting (a) indexing cost, (b) storage balance of
// index entries across nodes, and (c) locate-query latency — the three
// quantities the triangle trades off (Section IV-A2's analysis).

#include "query_harness.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

struct Row {
  std::string label;
  std::uint64_t indexing_msgs = 0;
  std::uint64_t delegations = 0;
  double storage_gini = 0.0;
  double locate_mean_ms = 0.0;
  std::size_t locate_failures = 0;
};

Row RunCase(const std::string& label, bool triangle, double alpha,
            std::size_t threshold, std::size_t nodes, std::size_t per_node,
            const CommonArgs& args) {
  auto config = ExperimentConfig(tracking::IndexingMode::kGroup, args.seed);
  config.tracker.enable_triangle = triangle;
  config.tracker.alpha = alpha;
  config.tracker.delegation_threshold = threshold;
  tracking::TrackingSystem system(nodes, config);
  const auto scenario = workload::ExecuteScenario(
      system, PaperWorkload(nodes, per_node, true), args.seed);

  Row row;
  row.label = label;
  row.indexing_msgs = scenario.indexing_messages;
  row.delegations = system.metrics().Counter("track.triangle_delegation");
  row.storage_gini = util::GiniCoefficient(system.StoredEntriesPerNode());

  util::Rng rng(args.seed ^ 0xab1a);
  util::RunningStats durations;
  for (int i = 0; i < 60; ++i) {
    const auto& object = scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
    bool ok = false;
    double duration = 0.0;
    system.LocateQuery(rng.NextBelow(nodes), object,
                       [&](tracking::TrackerNode::LocateResult result) {
                         ok = result.ok;
                         duration = result.DurationMs();
                       });
    system.Run();
    if (ok) {
      durations.Add(duration);
    } else {
      ++row.locate_failures;
    }
  }
  row.locate_mean_ms = durations.Mean();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);
  const std::size_t nodes = config.GetUInt("nodes", 64);
  const std::size_t per_node = config.GetUInt("volume", args.paper_scale ? 2000 : 400);
  // A threshold small enough that most gateway buckets overflow at this
  // scale (average bucket holds ~ nodes*volume/2^Lp entries).
  const std::size_t threshold = config.GetUInt("threshold", per_node / 32 + 4);

  std::vector<Row> rows;
  rows.push_back(RunCase("no triangle", false, 0.5, threshold, nodes, per_node, args));
  for (const double alpha : {0.25, 0.5, 0.75, 1.0}) {
    rows.push_back(RunCase(util::Format("alpha={}", alpha), true, alpha, threshold,
                           nodes, per_node, args));
  }
  rows.push_back(RunCase("threshold x4", true, 0.5, threshold * 4, nodes, per_node,
                         args));

  util::Table table({"case", "indexing msgs", "delegations", "storage gini",
                     "locate mean ms", "locate failures"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"case", "indexing_msgs", "delegations", "storage_gini",
                      "locate_mean_ms", "locate_failures"});
  for (const auto& row : rows) {
    table.AddRow({row.label, std::to_string(row.indexing_msgs),
                  std::to_string(row.delegations),
                  util::FormatDouble(row.storage_gini, 3),
                  util::FormatDouble(row.locate_mean_ms, 1),
                  std::to_string(row.locate_failures)});
    csv_rows.push_back({row.label, std::to_string(row.indexing_msgs),
                        std::to_string(row.delegations),
                        util::FormatDouble(row.storage_gini, 4),
                        util::FormatDouble(row.locate_mean_ms, 3),
                        std::to_string(row.locate_failures)});
  }

  Emit(util::Format("Ablation A1: data triangle ({} nodes, {} objects/node, "
                    "threshold {})",
                    nodes, per_node, threshold),
       table, csv_rows, args);
  std::printf("Expected: delegation spreads stored entries (lower Gini) at the cost "
              "of delegate/fetch traffic. Note the alpha trade-off: a small alpha "
              "clears little per event, so buckets re-overflow and delegation "
              "re-triggers more often — more messages for the same balance.\n");
  return 0;
}
