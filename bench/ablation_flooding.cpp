// Ablation A5: IOP/gateway trace queries vs index-free flooding.
//
// Quantifies the claim behind the paper's design (Section I): without
// movement-path information, a PDMS must flood trace queries to every
// node. Flooding is latency-competitive (one parallel round-trip) but its
// per-query message cost is 2(N-1), linear in network size, while the
// IOP walk costs O(log N + trace length) — amortized by the indexing cost
// paid once per movement.

#include "query_harness.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);
  const std::size_t per_node = config.GetUInt("volume", 300);
  const std::size_t queries = config.GetUInt("queries", 60);
  const auto sizes = config.GetIntList("sizes", {32, 64, 128, 256});

  util::Table table({"nodes", "iop mean ms", "iop msgs/query", "flood mean ms",
                     "flood msgs/query", "flood/iop msgs"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"nodes", "iop_ms", "iop_msgs", "flood_ms", "flood_msgs"});

  for (const auto size : sizes) {
    const auto nodes = static_cast<std::size_t>(size);
    tracking::TrackingSystem system(
        nodes, ExperimentConfig(tracking::IndexingMode::kGroup, args.seed));
    const auto scenario = workload::ExecuteScenario(
        system, PaperWorkload(nodes, per_node, true), args.seed);

    util::Rng rng(args.seed ^ nodes);
    util::RunningStats iop_ms;
    system.metrics().Reset();
    for (std::size_t i = 0; i < queries; ++i) {
      const auto& object =
          scenario.object_keys[rng.NextBelow(scenario.object_keys.size())];
      system.TraceQuery(rng.NextBelow(nodes), object,
                        [&](tracking::TrackerNode::TraceResult result) {
                          if (result.ok) iop_ms.Add(result.DurationMs());
                        });
      system.Run();
    }
    const double iop_msgs = static_cast<double>(system.metrics().TotalMessages()) /
                            static_cast<double>(queries);

    util::Rng flood_rng(args.seed ^ nodes);
    util::RunningStats flood_ms;
    util::RunningStats flood_msgs;
    system.metrics().Reset();
    for (std::size_t i = 0; i < queries; ++i) {
      const auto& object =
          scenario.object_keys[flood_rng.NextBelow(scenario.object_keys.size())];
      system.FloodTraceQuery(flood_rng.NextBelow(nodes), object,
                             [&](tracking::FloodingQueryEngine::Result result) {
                               if (result.ok) {
                                 flood_ms.Add(result.DurationMs());
                                 flood_msgs.Add(static_cast<double>(result.messages));
                               }
                             });
      system.Run();
    }

    table.AddRow({std::to_string(nodes), util::FormatDouble(iop_ms.Mean(), 1),
                  util::FormatDouble(iop_msgs, 1),
                  util::FormatDouble(flood_ms.Mean(), 1),
                  util::FormatDouble(flood_msgs.Mean(), 1),
                  util::FormatDouble(flood_msgs.Mean() / std::max(iop_msgs, 1.0), 1)});
    csv_rows.push_back({std::to_string(nodes), util::FormatDouble(iop_ms.Mean(), 3),
                        util::FormatDouble(iop_msgs, 2),
                        util::FormatDouble(flood_ms.Mean(), 3),
                        util::FormatDouble(flood_msgs.Mean(), 2)});
  }

  Emit(util::Format("Ablation A5: IOP queries vs flooding ({} objects/node, {} "
                    "queries)",
                    per_node, queries),
       table, csv_rows, args);
  std::printf("Expected: flooding's per-query messages grow ~2N (linear), IOP's stay "
              "~O(log N + trace length); flooding's latency is one parallel "
              "round-trip, IOP's a short sequential walk.\n");
  return 0;
}
