// Figure 7a reproduction: query processing time vs network size.
//
// Paper setup: trace query "Where has object oi been?" for 100 random
// objects; 5 ms network latency per message for the P2P side; centralized
// baseline = temporal RFID warehouse (Wang & Liu) queried with the scan
// plan (the behaviour the paper measured on MySQL). Network size sweeps
// {64, 128, 256, 512} at fixed objects/node.
//
// Expected shape (paper): P2P time is ~flat in network size (it depends on
// trace length, not ring size); centralized time grows with total DB size
// and overtakes P2P beyond a crossover. The indexed central plan is also
// reported to show the baseline's best case.

#include "query_harness.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t per_node =
      config.GetUInt("volume", args.paper_scale ? 5000 : 2000);
  const std::size_t queries = config.GetUInt("queries", 100);
  const auto sizes = config.GetIntList("sizes", {64, 128, 256, 512});

  util::Table table({"nodes", "p2p mean ms", "p2p p50 ms", "p2p p95 ms",
                     "p2p p99 ms", "central scan ms", "central index ms",
                     "db rows"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"nodes", "p2p_mean_ms", "p2p_p50_ms", "p2p_p95_ms",
                      "p2p_p99_ms", "central_scan_ms", "central_index_ms",
                      "db_rows"});

  for (const auto size : sizes) {
    const auto nodes = static_cast<std::size_t>(size);
    tracking::TrackingSystem system(
        nodes, ExperimentConfig(tracking::IndexingMode::kGroup, args.seed));
    const auto scenario = workload::ExecuteScenario(
        system, PaperWorkload(nodes, per_node, true), args.seed);

    util::Rng query_rng(args.seed ^ nodes);
    const auto p2p = RunP2pTraceQueries(system, scenario.object_keys, queries, query_rng);

    central::CentralTracker central;
    MirrorIntoCentral(system, scenario.object_keys, central);
    util::Rng central_rng(args.seed ^ nodes);
    central.SetPlan(central::QueryPlan::kScan);
    const auto scan = RunCentralTraceQueries(central, scenario.object_keys, queries,
                                             central_rng);
    util::Rng central_rng2(args.seed ^ nodes);
    central.SetPlan(central::QueryPlan::kIndex);
    const auto indexed = RunCentralTraceQueries(central, scenario.object_keys, queries,
                                                central_rng2);

    table.AddRow({std::to_string(nodes), util::FormatDouble(p2p.mean_ms, 1),
                  util::FormatDouble(p2p.p50_ms, 1),
                  util::FormatDouble(p2p.p95_ms, 1),
                  util::FormatDouble(p2p.p99_ms, 1),
                  util::FormatDouble(scan.mean_ms, 1),
                  util::FormatDouble(indexed.mean_ms, 3),
                  std::to_string(central.store().RowCount())});
    csv_rows.push_back({std::to_string(nodes), util::FormatDouble(p2p.mean_ms, 3),
                        util::FormatDouble(p2p.p50_ms, 3),
                        util::FormatDouble(p2p.p95_ms, 3),
                        util::FormatDouble(p2p.p99_ms, 3),
                        util::FormatDouble(scan.mean_ms, 3),
                        util::FormatDouble(indexed.mean_ms, 4),
                        std::to_string(central.store().RowCount())});
  }

  Emit(util::Format("Fig 7a: trace-query time vs network size ({} objects/node, "
                    "{} queries, 5 ms/hop)",
                    per_node, queries),
       table, csv_rows, args);
  std::printf("Paper shape: P2P ~flat in network size; centralized (scan plan) grows "
              "~linearly with DB size and crosses over. With a covering index the "
              "central baseline stays fast — the paper's MySQL behaved like the scan "
              "plan.\n");
  return 0;
}
