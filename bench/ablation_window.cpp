// Ablation A2: adaptive capture window (Tmax / Nmax) under different
// arrival processes.
//
// The paper motivates the adaptive window with unstable object streams
// (Section IV-A1) but does not quantify it. This ablation drives one
// node's capture stream with steady / Poisson / bursty arrivals and sweeps
// Tmax and Nmax, reporting indexing messages, windows flushed, mean
// objects per group report, and worst-case indexing delay (capture ->
// window flush).

#include "bench_common.hpp"
#include "util/format.hpp"
#include "workload/arrivals.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

struct Row {
  std::string arrivals;
  double tmax;
  std::size_t nmax;
  std::uint64_t messages = 0;
  std::uint64_t flushes = 0;
  double mean_group_objects = 0.0;
  double max_delay_ms = 0.0;
};

Row RunCase(workload::ArrivalProcess& process, const std::string& label, double tmax,
            std::size_t nmax, std::size_t captures, const CommonArgs& args) {
  auto config = ExperimentConfig(tracking::IndexingMode::kGroup, args.seed);
  config.tracker.window.tmax_ms = tmax;
  config.tracker.window.nmax = nmax;
  const std::size_t nodes = 32;
  tracking::TrackingSystem system(nodes, config);

  util::Rng rng(args.seed ^ 0x717);
  const auto times = workload::GenerateArrivals(process, 10.0, captures, rng);
  for (std::size_t i = 0; i < times.size(); ++i) {
    system.CaptureAt(/*node=*/3, hash::ObjectKey(util::Format("win-{}-{}", label, i)),
                     times[i]);
  }
  system.metrics().Reset();
  system.Run();
  system.FlushAllWindows();

  Row row;
  row.arrivals = label;
  row.tmax = tmax;
  row.nmax = nmax;
  row.messages = system.metrics().TotalMessages();
  row.flushes = system.Tracker(3).WindowsFlushed();
  const std::uint64_t groups = system.metrics().Counter("track.group_handled");
  row.mean_group_objects =
      groups == 0 ? 0.0 : static_cast<double>(captures) / static_cast<double>(groups);
  // Worst indexing delay is bounded by Tmax (timer flush) unless Nmax fires
  // earlier; report the configured bound for context.
  row.max_delay_ms = tmax;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);
  const std::size_t captures = config.GetUInt("captures", 4000);

  util::Table table({"arrivals", "Tmax ms", "Nmax", "messages", "window flushes",
                     "objs/group msg", "max delay ms"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"arrivals", "tmax", "nmax", "messages", "flushes",
                      "objs_per_group", "max_delay"});

  for (const double tmax : {50.0, 200.0, 1000.0}) {
    for (const std::size_t nmax : {std::size_t{64}, std::size_t{512}, std::size_t{4096}}) {
      workload::SteadyArrivals steady(2.0);
      workload::PoissonArrivals poisson(0.5);
      workload::BurstyArrivals bursty(2.0, 200.0, 3000.0);
      struct Named {
        workload::ArrivalProcess* process;
        const char* name;
      } cases[] = {{&steady, "steady"}, {&poisson, "poisson"}, {&bursty, "bursty"}};
      for (const auto& c : cases) {
        const Row row = RunCase(*c.process, c.name, tmax, nmax, captures, args);
        table.AddRow({row.arrivals, util::FormatDouble(row.tmax, 0),
                      std::to_string(row.nmax), std::to_string(row.messages),
                      std::to_string(row.flushes),
                      util::FormatDouble(row.mean_group_objects, 1),
                      util::FormatDouble(row.max_delay_ms, 0)});
        csv_rows.push_back({row.arrivals, util::FormatDouble(row.tmax, 0),
                            std::to_string(row.nmax), std::to_string(row.messages),
                            std::to_string(row.flushes),
                            util::FormatDouble(row.mean_group_objects, 2),
                            util::FormatDouble(row.max_delay_ms, 0)});
      }
    }
  }

  Emit(util::Format("Ablation A2: adaptive window sweep ({} captures at one node)",
                    captures),
       table, csv_rows, args);
  std::printf("Expected: larger windows => fewer, fuller group messages (lower cost) "
              "but higher indexing delay; Nmax caps message size under bursts; bursty "
              "streams benefit most from the adaptive close.\n");
  return 0;
}
