// Micro-benchmarks (A4): hashing and 160-bit keyspace primitives.
//
// These sit under every protocol operation; google-benchmark keeps them
// honest as the library evolves.

#include <benchmark/benchmark.h>

#include "hash/keyspace.hpp"
#include "util/rng.hpp"

namespace {

using namespace peertrack;

void BM_Sha1Throughput(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha1Hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(24)->Arg(64)->Arg(256)->Arg(4096);

void BM_ObjectKeyDerivation(benchmark::State& state) {
  std::uint64_t sequence = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::ObjectKey("urn:epc:id:sgtin:1000001.42." + std::to_string(sequence++)));
  }
}
BENCHMARK(BM_ObjectKeyDerivation);

void BM_UInt160Add(benchmark::State& state) {
  util::Rng rng(1);
  hash::UInt160::Words words;
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
  hash::UInt160 a(words);
  const hash::UInt160 b = hash::ObjectKey("increment");
  for (auto _ : state) {
    a += b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_UInt160Add);

void BM_IntervalMembership(benchmark::State& state) {
  const auto lo = hash::ObjectKey("lo");
  const auto hi = hash::ObjectKey("hi");
  const auto x = hash::ObjectKey("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.InHalfOpenLoHi(lo, hi));
  }
}
BENCHMARK(BM_IntervalMembership);

void BM_PrefixOfKey(benchmark::State& state) {
  const auto key = hash::ObjectKey("prefix-subject");
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Prefix::OfKey(key, 13));
  }
}
BENCHMARK(BM_PrefixOfKey);

void BM_GroupKey(benchmark::State& state) {
  const auto prefix = hash::Prefix::FromString("1011001100110");
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::GroupKey(prefix));
  }
}
BENCHMARK(BM_GroupKey);

}  // namespace

BENCHMARK_MAIN();
