// Figure 8a reproduction: load balance for the three prefix-length schemes.
//
// Paper setup: plot the fraction of total indexing load carried by the
// bottom x% of nodes (a Lorenz curve; diagonal = perfect balance) for
//   Scheme 1: Lp = log2 N        (fewest groups, worst balance)
//   Scheme 2: Lp = log2 N + log2 log2 N   (the paper's choice)
//   Scheme 3: Lp = 2 log2 N      (most groups, best balance)
//
// Expected shape (paper): Scheme 1 far from the diagonal with saltations;
// Scheme 3 closest to the diagonal; Scheme 2 in between and acceptable.

#include "bench_common.hpp"
#include "tracking/prefix_scheme.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

std::vector<util::LorenzPoint> RunScheme(tracking::PrefixScheme scheme,
                                         std::size_t nodes, std::size_t per_node,
                                         const CommonArgs& args, double& gini,
                                         double& busy_fraction, unsigned& lp) {
  auto config = ExperimentConfig(tracking::IndexingMode::kGroup, args.seed);
  config.scheme = scheme;
  tracking::TrackingSystem system(nodes, config);
  lp = system.CurrentLp();
  workload::ExecuteScenario(system, PaperWorkload(nodes, per_node, true), args.seed);
  const auto loads = system.IndexLoadPerNode();
  gini = util::GiniCoefficient(loads);
  busy_fraction = util::NonZeroFraction(loads);
  return util::LorenzCurve(loads, 10);
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t nodes = config.GetUInt("nodes", args.paper_scale ? 512 : 256);
  const std::size_t per_node = config.GetUInt("volume", args.paper_scale ? 5000 : 500);

  const tracking::PrefixScheme schemes[] = {tracking::PrefixScheme::kLogN,
                                            tracking::PrefixScheme::kLogNLogLogN,
                                            tracking::PrefixScheme::kTwoLogN};

  std::vector<std::vector<util::LorenzPoint>> curves;
  std::vector<double> ginis;
  std::vector<double> busy;
  std::vector<unsigned> lps;
  for (const auto scheme : schemes) {
    double gini = 0.0;
    double busy_fraction = 0.0;
    unsigned lp = 0;
    curves.push_back(RunScheme(scheme, nodes, per_node, args, gini, busy_fraction, lp));
    ginis.push_back(gini);
    busy.push_back(busy_fraction);
    lps.push_back(lp);
  }

  util::Table table({"node %", "scheme1 load %", "scheme2 load %", "scheme3 load %",
                     "diagonal"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"node_pct", "scheme1", "scheme2", "scheme3"});
  for (std::size_t p = 0; p < curves[0].size(); ++p) {
    table.AddRow({util::FormatDouble(curves[0][p].node_fraction * 100, 0),
                  util::FormatDouble(curves[0][p].load_fraction * 100, 1),
                  util::FormatDouble(curves[1][p].load_fraction * 100, 1),
                  util::FormatDouble(curves[2][p].load_fraction * 100, 1),
                  util::FormatDouble(curves[0][p].node_fraction * 100, 0)});
    csv_rows.push_back({util::FormatDouble(curves[0][p].node_fraction, 3),
                        util::FormatDouble(curves[0][p].load_fraction, 4),
                        util::FormatDouble(curves[1][p].load_fraction, 4),
                        util::FormatDouble(curves[2][p].load_fraction, 4)});
  }

  Emit(util::Format("Fig 8a: load balance per prefix scheme ({} nodes, {} objects/node)",
                    nodes, per_node),
       table, csv_rows, args);
  for (std::size_t s = 0; s < 3; ++s) {
    std::printf("Scheme %zu: Lp=%u  Gini=%.3f  nodes-with-load=%.1f%%\n", s + 1, lps[s],
                ginis[s], busy[s] * 100.0);
  }
  std::printf("Paper shape: Scheme 1 farthest from the diagonal (worst balance), "
              "Scheme 3 closest, Scheme 2 in between.\n");
  return 0;
}
