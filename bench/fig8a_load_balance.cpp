// Figure 8a reproduction: load balance for the three prefix-length schemes.
//
// Paper setup: plot the fraction of total indexing load carried by the
// bottom x% of nodes (a Lorenz curve; diagonal = perfect balance) for
//   Scheme 1: Lp = log2 N        (fewest groups, worst balance)
//   Scheme 2: Lp = log2 N + log2 log2 N   (the paper's choice)
//   Scheme 3: Lp = 2 log2 N      (most groups, best balance)
//
// Expected shape (paper): Scheme 1 far from the diagonal with saltations;
// Scheme 3 closest to the diagonal; Scheme 2 in between and acceptable.

#include "bench_common.hpp"
#include "tracking/prefix_scheme.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

struct SchemeRun {
  std::vector<util::LorenzPoint> objects;  ///< Objects-indexed Lorenz curve.
  std::vector<util::LorenzPoint> bytes;    ///< Received-wire-bytes Lorenz curve.
  double gini = 0.0;
  double bytes_gini = 0.0;
  double busy_fraction = 0.0;
  unsigned lp = 0;
};

SchemeRun RunScheme(tracking::PrefixScheme scheme, std::size_t nodes,
                    std::size_t per_node, const CommonArgs& args) {
  auto config = ExperimentConfig(tracking::IndexingMode::kGroup, args.seed);
  config.scheme = scheme;
  tracking::TrackingSystem system(nodes, config);
  SchemeRun run;
  run.lp = system.CurrentLp();
  workload::ExecuteScenario(system, PaperWorkload(nodes, per_node, true), args.seed);
  const auto loads = system.IndexLoadPerNode();
  run.gini = util::GiniCoefficient(loads);
  run.busy_fraction = util::NonZeroFraction(loads);
  run.objects = util::LorenzCurve(loads, 10);
  // Byte-level load: the objects-indexed measure treats a 1-object and a
  // 1000-object GroupArrival as equal work; wire bytes received per actor
  // expose the imbalance the message-count view hides.
  const auto& bytes = system.metrics().ReceivedBytesPerActor();
  run.bytes_gini = util::GiniCoefficient(bytes);
  run.bytes = util::LorenzCurve(bytes, 10);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t nodes = config.GetUInt("nodes", args.paper_scale ? 512 : 256);
  const std::size_t per_node = config.GetUInt("volume", args.paper_scale ? 5000 : 500);

  const tracking::PrefixScheme schemes[] = {tracking::PrefixScheme::kLogN,
                                            tracking::PrefixScheme::kLogNLogLogN,
                                            tracking::PrefixScheme::kTwoLogN};

  std::vector<SchemeRun> runs;
  for (const auto scheme : schemes) {
    runs.push_back(RunScheme(scheme, nodes, per_node, args));
  }

  util::Table table({"node %", "scheme1 load %", "scheme2 load %", "scheme3 load %",
                     "diagonal"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"node_pct", "scheme1", "scheme2", "scheme3",
                      "scheme1_bytes", "scheme2_bytes", "scheme3_bytes"});
  for (std::size_t p = 0; p < runs[0].objects.size(); ++p) {
    table.AddRow({util::FormatDouble(runs[0].objects[p].node_fraction * 100, 0),
                  util::FormatDouble(runs[0].objects[p].load_fraction * 100, 1),
                  util::FormatDouble(runs[1].objects[p].load_fraction * 100, 1),
                  util::FormatDouble(runs[2].objects[p].load_fraction * 100, 1),
                  util::FormatDouble(runs[0].objects[p].node_fraction * 100, 0)});
    csv_rows.push_back({util::FormatDouble(runs[0].objects[p].node_fraction, 3),
                        util::FormatDouble(runs[0].objects[p].load_fraction, 4),
                        util::FormatDouble(runs[1].objects[p].load_fraction, 4),
                        util::FormatDouble(runs[2].objects[p].load_fraction, 4),
                        util::FormatDouble(runs[0].bytes[p].load_fraction, 4),
                        util::FormatDouble(runs[1].bytes[p].load_fraction, 4),
                        util::FormatDouble(runs[2].bytes[p].load_fraction, 4)});
  }

  Emit(util::Format("Fig 8a: load balance per prefix scheme ({} nodes, {} objects/node)",
                    nodes, per_node),
       table, csv_rows, args);
  for (std::size_t s = 0; s < 3; ++s) {
    std::printf("Scheme %zu: Lp=%u  Gini=%.3f  bytes-Gini=%.3f  "
                "nodes-with-load=%.1f%%\n",
                s + 1, runs[s].lp, runs[s].gini, runs[s].bytes_gini,
                runs[s].busy_fraction * 100.0);
  }
  std::printf("Paper shape: Scheme 1 farthest from the diagonal (worst balance), "
              "Scheme 3 closest, Scheme 2 in between.\n");
  return 0;
}
