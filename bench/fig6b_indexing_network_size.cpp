// Figure 6b reproduction: scalability of indexing on network size.
//
// Paper setup: 5000 objects per node; network size in {64, 128, 256, 512};
// series: individual indexing, group indexing with movement in groups, and
// group indexing with objects moving individually.
//
// Expected shape (paper): individual indexing grows linearly with network
// size; group indexing grows sublinearly; movement-in-groups costs less
// than individual movement because co-travelling objects share capture
// windows.

#include "bench_common.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

std::uint64_t RunPoint(std::size_t nodes, std::size_t per_node,
                       tracking::IndexingMode mode, bool move_in_groups,
                       const CommonArgs& args) {
  tracking::TrackingSystem system(nodes, ExperimentConfig(mode, args.seed));
  const auto result = workload::ExecuteScenario(
      system, PaperWorkload(nodes, per_node, move_in_groups), args.seed);
  return result.indexing_messages;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t per_node =
      config.GetUInt("volume", args.paper_scale ? 5000 : 500);
  const auto sizes = config.GetIntList("sizes", {64, 128, 256, 512});

  util::Table table({"nodes", "individual", "group (move in group)",
                     "group (move individually)", "grp-grouped/indiv"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back(
      {"nodes", "individual", "group_grouped", "group_individual", "ratio"});

  for (const auto size : sizes) {
    const auto nodes = static_cast<std::size_t>(size);
    const std::uint64_t individual = RunPoint(
        nodes, per_node, tracking::IndexingMode::kIndividual, true, args);
    const std::uint64_t group_grouped =
        RunPoint(nodes, per_node, tracking::IndexingMode::kGroup, true, args);
    const std::uint64_t group_individual =
        RunPoint(nodes, per_node, tracking::IndexingMode::kGroup, false, args);
    const double ratio = individual == 0 ? 0.0
                                         : static_cast<double>(group_grouped) /
                                               static_cast<double>(individual);
    table.AddRow({std::to_string(nodes), std::to_string(individual),
                  std::to_string(group_grouped), std::to_string(group_individual),
                  util::FormatDouble(ratio, 3)});
    csv_rows.push_back({std::to_string(nodes), std::to_string(individual),
                        std::to_string(group_grouped),
                        std::to_string(group_individual),
                        util::FormatDouble(ratio, 4)});
  }

  Emit(util::Format("Fig 6b: indexing cost vs network size ({} objects/node)",
                    per_node),
       table, csv_rows, args);
  std::printf("Paper shape: individual grows ~linearly in network size; group grows "
              "sublinearly; grouped movement cheaper than individual movement.\n");
  return 0;
}
