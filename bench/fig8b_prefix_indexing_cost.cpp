// Figure 8b reproduction: indexing cost (log2 of messages transferred) vs
// network size, for the three prefix-length schemes at fixed data volume.
//
// Expected shape (paper): Scheme 1 cheapest, Scheme 3 most expensive (more
// groups => more messages), Scheme 2 between — the flip side of Fig. 8a's
// balance ordering. All grow slowly with network size.

#include <cmath>

#include "bench_common.hpp"
#include "tracking/prefix_scheme.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

std::uint64_t RunScheme(tracking::PrefixScheme scheme, std::size_t nodes,
                        std::size_t per_node, const CommonArgs& args) {
  auto config = ExperimentConfig(tracking::IndexingMode::kGroup, args.seed);
  config.scheme = scheme;
  tracking::TrackingSystem system(nodes, config);
  const auto result = workload::ExecuteScenario(
      system, PaperWorkload(nodes, per_node, true), args.seed);
  return result.indexing_messages;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t per_node = config.GetUInt("volume", args.paper_scale ? 5000 : 500);
  const auto sizes = config.GetIntList("sizes", {64, 128, 256, 512});

  util::Table table({"nodes", "scheme1 log2(msgs)", "scheme2 log2(msgs)",
                     "scheme3 log2(msgs)", "scheme1 msgs", "scheme2 msgs",
                     "scheme3 msgs"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"nodes", "scheme1_msgs", "scheme2_msgs", "scheme3_msgs"});

  for (const auto size : sizes) {
    const auto nodes = static_cast<std::size_t>(size);
    const std::uint64_t s1 =
        RunScheme(tracking::PrefixScheme::kLogN, nodes, per_node, args);
    const std::uint64_t s2 =
        RunScheme(tracking::PrefixScheme::kLogNLogLogN, nodes, per_node, args);
    const std::uint64_t s3 =
        RunScheme(tracking::PrefixScheme::kTwoLogN, nodes, per_node, args);
    auto log2_of = [](std::uint64_t v) {
      return v == 0 ? 0.0 : std::log2(static_cast<double>(v));
    };
    table.AddRow({std::to_string(nodes), util::FormatDouble(log2_of(s1), 2),
                  util::FormatDouble(log2_of(s2), 2), util::FormatDouble(log2_of(s3), 2),
                  std::to_string(s1), std::to_string(s2), std::to_string(s3)});
    csv_rows.push_back({std::to_string(nodes), std::to_string(s1), std::to_string(s2),
                        std::to_string(s3)});
  }

  Emit(util::Format("Fig 8b: indexing cost per prefix scheme ({} objects/node)",
                    per_node),
       table, csv_rows, args);
  std::printf("Paper shape: Scheme 1 cheapest, Scheme 3 most expensive, Scheme 2 "
              "between — the balance/cost trade-off of Section V-C.\n");
  return 0;
}
