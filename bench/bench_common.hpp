#pragma once
// Shared harness for the paper-figure benches.
//
// Every figure binary follows one pattern: build a converged TrackingSystem,
// drive the Section-V workload, collect metric series, and print an ASCII
// table (plus CSV when --csv=<path> is given). Default parameters are a
// ~1/10-scale version of the paper's setup so the full suite runs in
// minutes on a laptop; pass --paper for the original 512-node /
// 5000-objects-per-node scale. Shapes (who wins, crossovers, curvature)
// are preserved across scales; EXPERIMENTS.md records both.

#include <cstdio>
#include <string>
#include <vector>

#include "tracking/tracking_system.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

namespace peertrack::bench {

struct CommonArgs {
  bool paper_scale = false;
  std::uint64_t seed = 0x5eedULL;
  std::string csv_path;

  static CommonArgs Parse(const util::Config& config) {
    CommonArgs args;
    args.paper_scale = config.GetBool("paper", false);
    args.seed = config.GetUInt("seed", args.seed);
    args.csv_path = config.GetString("csv", "");
    return args;
  }
};

/// Default system config for the experiments: 5 ms constant latency (the
/// paper's T1 assumption), big adaptive windows, Scheme 2.
inline tracking::SystemConfig ExperimentConfig(tracking::IndexingMode mode,
                                               std::uint64_t seed) {
  tracking::SystemConfig config;
  config.tracker.mode = mode;
  config.tracker.window.tmax_ms = 1000.0;
  config.tracker.window.nmax = 8192;
  config.tracker.lmin = 2;
  config.seed = seed;
  return config;
}

/// Paper workload (Section V-A): every node starts with `per_node` objects;
/// 10% move along 10-node traces.
inline workload::MovementParams PaperWorkload(std::size_t nodes, std::size_t per_node,
                                              bool move_in_groups) {
  workload::MovementParams params;
  params.nodes = nodes;
  params.objects_per_node = per_node;
  params.move_fraction = 0.10;
  params.trace_length = 10;
  params.move_in_groups = move_in_groups;
  params.step_ms = 4000.0;
  params.jitter_ms = move_in_groups ? 0.0 : 2000.0;
  return params;
}

/// Emit the table to stdout and optionally a CSV file.
inline void Emit(const std::string& title, const util::Table& table,
                 const std::vector<std::vector<std::string>>& csv_rows,
                 const CommonArgs& args) {
  std::printf("\n=== %s ===\n%s", title.c_str(), table.Render().c_str());
  std::fflush(stdout);
  if (!args.csv_path.empty()) {
    util::CsvWriter csv(args.csv_path);
    if (csv.IsOpen()) {
      for (const auto& row : csv_rows) csv.WriteRow(row);
      std::printf("(csv written to %s)\n", args.csv_path.c_str());
    }
  }
}

}  // namespace peertrack::bench
