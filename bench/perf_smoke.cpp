// perf_smoke — the repo's canonical performance probe.
//
// Runs the fixed-seed workload::RunPerfSmoke scenario (default: 256 nodes,
// 512000 objects, group indexing, 100 trace queries), times it, and writes
// BENCH.json with wall-clock timings and throughput (events/sec,
// messages/sec) plus message-pool allocation stats. CI runs this on every
// push and uploads BENCH.json as an artifact, so the performance trajectory
// of the simulator kernel is recorded PR over PR.
//
// Usage:
//   perf_smoke [--nodes=256] [--objects=512000] [--queries=100]
//              [--seed=0xBE9C5] [--repeat=1] [--out=BENCH.json]
//              [--invariants] [--invariant-period=5000] [--replicate=1]
//
// Gateway-index replication (R=2 successors) is ON by default so the
// recorded throughput includes the churn-recovery write path;
// --replicate=0 measures the bare unreplicated index.
//
// With --invariants the obs::InvariantMonitor audits ring/IOP/triangle
// health at a fixed sim-time cadence during the run; its overhead and
// verdict land in BENCH.json under "invariants", and any violation on this
// clean fixed-seed scenario fails the run (exit 4).
//
// With --repeat=N the scenario runs N times and the fastest run is
// reported (standard practice to shave scheduler noise); the simulation
// metrics must be identical across repeats, which doubles as a built-in
// determinism check.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sim/message_pool.hpp"
#include "util/config.hpp"
#include "util/format.hpp"
#include "workload/perf_smoke.hpp"

namespace {

using peertrack::workload::PerfSmokeParams;
using peertrack::workload::PerfSmokeReport;

double PerSec(std::uint64_t count, double wall_ms) {
  return wall_ms > 0.0 ? static_cast<double>(count) * 1000.0 / wall_ms : 0.0;
}

std::string ReportJson(const PerfSmokeParams& params, const PerfSmokeReport& report,
                       int repeats) {
  const peertrack::sim::MessagePoolStats pool = peertrack::sim::MessagePoolStats::Read();
  std::string json = "{\n";
  json += peertrack::util::Format(
      "  \"bench\": \"perf_smoke\",\n"
      "  \"config\": {{\"nodes\": {}, \"objects\": {}, \"queries\": {}, "
      "\"seed\": {}, \"repeats\": {}, \"replicate\": {}}},\n",
      params.nodes, params.objects, params.queries, params.seed, repeats,
      params.replicate ? "true" : "false");
  json += peertrack::util::Format(
      "  \"wall_ms\": {{\"build\": {:.3f}, \"index\": {:.3f}, \"query\": {:.3f}, "
      "\"total\": {:.3f}}},\n",
      report.wall_build_ms, report.wall_index_ms, report.wall_query_ms,
      report.WallTotalMs());
  json += peertrack::util::Format(
      "  \"events\": {},\n  \"events_per_sec\": {:.1f},\n"
      "  \"messages\": {},\n  \"messages_per_sec\": {:.1f},\n"
      "  \"bytes\": {},\n  \"captures\": {},\n",
      report.events, PerSec(report.events, report.WallTotalMs()), report.messages,
      PerSec(report.messages, report.WallTotalMs()), report.bytes, report.captures);
  json += peertrack::util::Format(
      "  \"queries_ok\": {},\n  \"queries_failed\": {},\n  \"sim_time_ms\": {:.1f},\n",
      report.queries_ok, report.queries_failed, report.sim_time_ms);
  json += peertrack::util::Format(
      "  \"allocations\": {{\"pool_enabled\": {}, \"pool_served\": {}, "
      "\"pool_reused\": {}, \"pool_fallback\": {}, \"slab_bytes\": {}}},\n",
      peertrack::sim::MessagePool::Enabled() ? "true" : "false", pool.served,
      pool.reused, pool.fallback, pool.slab_bytes);
  json += peertrack::util::Format(
      "  \"invariants\": {{\"enabled\": {}, \"scans\": {}, "
      "\"invariant_scan_ms\": {:.3f}, \"violations\": {}, \"open\": {}}}\n",
      params.invariants ? "true" : "false", report.invariant_scans,
      report.invariant_scan_ms, report.invariant_violations,
      report.invariant_open);
  json += "}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = peertrack::util::Config::FromArgs(argc, argv);
  PerfSmokeParams params;
  params.nodes = static_cast<std::size_t>(config.GetUInt("nodes", params.nodes));
  params.objects = static_cast<std::size_t>(config.GetUInt("objects", params.objects));
  params.queries = static_cast<std::size_t>(config.GetUInt("queries", params.queries));
  params.seed = config.GetUInt("seed", params.seed);
  params.invariants = config.GetBool("invariants", params.invariants);
  params.replicate = config.GetBool("replicate", params.replicate);
  params.invariant_period_ms =
      config.GetDouble("invariant-period", params.invariant_period_ms);
  const int repeats = std::max<int>(1, static_cast<int>(config.GetInt("repeat", 1)));
  const std::string out_path = config.GetString("out", "BENCH.json");

  PerfSmokeReport best;
  for (int run = 0; run < repeats; ++run) {
    PerfSmokeReport report = peertrack::workload::RunPerfSmoke(params);
    if (run > 0 && (report.events != best.events ||
                    report.metric_rows != best.metric_rows)) {
      std::fprintf(stderr,
                   "perf_smoke: repeat %d diverged from run 0 "
                   "(events %llu vs %llu) — determinism broken\n",
                   run, static_cast<unsigned long long>(report.events),
                   static_cast<unsigned long long>(best.events));
      return 2;
    }
    if (run == 0 || report.WallTotalMs() < best.WallTotalMs()) {
      best = std::move(report);
    }
  }

  const std::string json = ReportJson(params, best, repeats);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::fprintf(stderr, "(BENCH written to %s)\n", out_path.c_str());
  }
  if (best.queries_failed != 0) return 3;
  if (params.invariants && best.invariant_violations != 0) {
    std::fprintf(stderr,
                 "perf_smoke: %zu invariant violation(s) on a clean run "
                 "(%zu still open) — see the health checks\n",
                 best.invariant_violations, best.invariant_open);
    return 4;
  }
  return 0;
}
