#pragma once
// Query-phase helpers shared by the Fig. 7 benches: run a batch of trace
// queries on the P2P system and replay the same workload into the
// centralized baseline.

#include <vector>

#include "bench_common.hpp"
#include "central/central_tracker.hpp"

namespace peertrack::bench {

struct QueryBatchStats {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  std::size_t failures = 0;
  std::size_t count = 0;
};

/// Issue `count` trace queries ("Where has object oi been?") for uniformly
/// random objects from uniformly random origin nodes; simulated durations.
inline QueryBatchStats RunP2pTraceQueries(tracking::TrackingSystem& system,
                                          const std::vector<hash::UInt160>& objects,
                                          std::size_t count, util::Rng& rng) {
  QueryBatchStats stats;
  util::RunningStats durations;
  util::Percentiles percentiles;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& object = objects[rng.NextBelow(objects.size())];
    const auto origin = static_cast<std::size_t>(rng.NextBelow(system.NodeCount()));
    bool ok = false;
    double duration = 0.0;
    system.TraceQuery(origin, object, [&](tracking::TrackerNode::TraceResult result) {
      ok = result.ok;
      duration = result.DurationMs();
    });
    system.Run();
    if (!ok) {
      ++stats.failures;
      continue;
    }
    durations.Add(duration);
    percentiles.Add(duration);
  }
  stats.mean_ms = durations.Mean();
  stats.p95_ms = percentiles.Percentile(95.0);
  stats.count = durations.Count();
  return stats;
}

/// Replay every object's oracle trajectory into the centralized warehouse.
inline void MirrorIntoCentral(tracking::TrackingSystem& system,
                              const std::vector<hash::UInt160>& objects,
                              central::CentralTracker& central) {
  for (const auto& object : objects) {
    const auto* trace = system.oracle().FullTrace(object);
    if (trace == nullptr) continue;
    for (const auto& visit : *trace) {
      central.Ingest(object, visit.node, visit.arrived);
    }
  }
}

/// Run the same query batch against the centralized baseline.
inline QueryBatchStats RunCentralTraceQueries(central::CentralTracker& central,
                                              const std::vector<hash::UInt160>& objects,
                                              std::size_t count, util::Rng& rng) {
  QueryBatchStats stats;
  util::RunningStats durations;
  util::Percentiles percentiles;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& object = objects[rng.NextBelow(objects.size())];
    const auto answer = central.Trace(object);
    if (answer.rows.empty()) {
      ++stats.failures;
      continue;
    }
    durations.Add(answer.duration_ms);
    percentiles.Add(answer.duration_ms);
  }
  stats.mean_ms = durations.Mean();
  stats.p95_ms = percentiles.Percentile(95.0);
  stats.count = durations.Count();
  return stats;
}

}  // namespace peertrack::bench
