#pragma once
// Query-phase helpers shared by the Fig. 7 benches: run a batch of trace
// queries on the P2P system and replay the same workload into the
// centralized baseline. Durations feed an obs::Histogram so every bench
// reports the same p50/p95/p99/max tail statistics.

#include <vector>

#include "bench_common.hpp"
#include "central/central_tracker.hpp"
#include "obs/registry.hpp"

namespace peertrack::bench {

struct QueryBatchStats {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::size_t failures = 0;
  std::size_t count = 0;
};

inline QueryBatchStats StatsFromHistogram(const obs::Histogram& hist,
                                          std::size_t failures) {
  QueryBatchStats stats;
  stats.mean_ms = hist.Mean();
  stats.p50_ms = hist.P50();
  stats.p95_ms = hist.P95();
  stats.p99_ms = hist.P99();
  stats.max_ms = hist.Max();
  stats.failures = failures;
  stats.count = static_cast<std::size_t>(hist.Count());
  return stats;
}

/// Issue `count` trace queries ("Where has object oi been?") for uniformly
/// random objects from uniformly random origin nodes; simulated durations.
inline QueryBatchStats RunP2pTraceQueries(tracking::TrackingSystem& system,
                                          const std::vector<hash::UInt160>& objects,
                                          std::size_t count, util::Rng& rng) {
  obs::Histogram durations;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& object = objects[rng.NextBelow(objects.size())];
    const auto origin = static_cast<std::size_t>(rng.NextBelow(system.NodeCount()));
    bool ok = false;
    double duration = 0.0;
    system.TraceQuery(origin, object, [&](tracking::TrackerNode::TraceResult result) {
      ok = result.ok;
      duration = result.DurationMs();
    });
    system.Run();
    if (!ok) {
      ++failures;
      continue;
    }
    durations.Add(duration);
  }
  return StatsFromHistogram(durations, failures);
}

/// Replay every object's oracle trajectory into the centralized warehouse.
inline void MirrorIntoCentral(tracking::TrackingSystem& system,
                              const std::vector<hash::UInt160>& objects,
                              central::CentralTracker& central) {
  for (const auto& object : objects) {
    const auto* trace = system.oracle().FullTrace(object);
    if (trace == nullptr) continue;
    for (const auto& visit : *trace) {
      central.Ingest(object, visit.node, visit.arrived);
    }
  }
}

/// Run the same query batch against the centralized baseline.
inline QueryBatchStats RunCentralTraceQueries(central::CentralTracker& central,
                                              const std::vector<hash::UInt160>& objects,
                                              std::size_t count, util::Rng& rng) {
  obs::Histogram durations;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& object = objects[rng.NextBelow(objects.size())];
    const auto answer = central.Trace(object);
    if (answer.rows.empty()) {
      ++failures;
      continue;
    }
    durations.Add(answer.duration_ms);
  }
  return StatsFromHistogram(durations, failures);
}

}  // namespace peertrack::bench
