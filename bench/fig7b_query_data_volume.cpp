// Figure 7b reproduction: query processing time vs data volume.
//
// Paper setup: fixed network size (512 nodes), data volume 500*i objects
// per node for i = 1..10, 100 trace queries; P2P vs centralized.
//
// Expected shape (paper): P2P time stays ~constant as the database grows
// (IOP walks depend on trace length only); the centralized scan plan grows
// ~linearly with volume.

#include "query_harness.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t nodes = config.GetUInt("nodes", 512);
  const std::size_t base = config.GetUInt("base-volume", args.paper_scale ? 500 : 200);
  const std::size_t steps = config.GetUInt("steps", 10);
  const std::size_t queries = config.GetUInt("queries", 100);

  util::Table table({"objects/node", "p2p mean ms", "p2p p50 ms", "p2p p95 ms",
                     "p2p p99 ms", "central scan ms", "central index ms",
                     "db rows"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"volume", "p2p_mean_ms", "p2p_p50_ms", "p2p_p95_ms",
                      "p2p_p99_ms", "central_scan_ms", "central_index_ms",
                      "db_rows"});

  for (std::size_t i = 1; i <= steps; ++i) {
    const std::size_t per_node = base * i;
    tracking::TrackingSystem system(
        nodes, ExperimentConfig(tracking::IndexingMode::kGroup, args.seed));
    const auto scenario = workload::ExecuteScenario(
        system, PaperWorkload(nodes, per_node, true), args.seed);

    util::Rng query_rng(args.seed ^ per_node);
    const auto p2p = RunP2pTraceQueries(system, scenario.object_keys, queries, query_rng);

    central::CentralTracker central;
    MirrorIntoCentral(system, scenario.object_keys, central);
    util::Rng central_rng(args.seed ^ per_node);
    central.SetPlan(central::QueryPlan::kScan);
    const auto scan =
        RunCentralTraceQueries(central, scenario.object_keys, queries, central_rng);
    util::Rng central_rng2(args.seed ^ per_node);
    central.SetPlan(central::QueryPlan::kIndex);
    const auto indexed =
        RunCentralTraceQueries(central, scenario.object_keys, queries, central_rng2);

    table.AddRow({std::to_string(per_node), util::FormatDouble(p2p.mean_ms, 1),
                  util::FormatDouble(p2p.p50_ms, 1),
                  util::FormatDouble(p2p.p95_ms, 1),
                  util::FormatDouble(p2p.p99_ms, 1),
                  util::FormatDouble(scan.mean_ms, 1),
                  util::FormatDouble(indexed.mean_ms, 3),
                  std::to_string(central.store().RowCount())});
    csv_rows.push_back({std::to_string(per_node), util::FormatDouble(p2p.mean_ms, 3),
                        util::FormatDouble(p2p.p50_ms, 3),
                        util::FormatDouble(p2p.p95_ms, 3),
                        util::FormatDouble(p2p.p99_ms, 3),
                        util::FormatDouble(scan.mean_ms, 3),
                        util::FormatDouble(indexed.mean_ms, 4),
                        std::to_string(central.store().RowCount())});
  }

  Emit(util::Format("Fig 7b: trace-query time vs data volume ({} nodes, {} queries)",
                    nodes, queries),
       table, csv_rows, args);
  std::printf("Paper shape: P2P ~constant in data volume; centralized scan plan grows "
              "~linearly.\n");
  return 0;
}
