// Figure 6a reproduction: scalability of indexing on data volume.
//
// Paper setup: 512 nodes; 500*i objects per node for i = 1..10; 10% of each
// node's objects move along a 10-node trace; cost = total volume of
// messages transferred while indexing. Series: individual indexing vs the
// enhanced group indexing.
//
// Expected shape (paper): the two series start close at low volume (groups
// hold one or two objects each, Section V-A) and diverge as volume grows —
// group indexing's cost rises much slower than individual's.

#include "bench_common.hpp"
#include "util/format.hpp"

using namespace peertrack;
using namespace peertrack::bench;

namespace {

struct Point {
  std::size_t volume;
  std::uint64_t individual_msgs;
  std::uint64_t group_msgs;
  std::uint64_t individual_kb;
  std::uint64_t group_kb;
};

Point RunPoint(std::size_t nodes, std::size_t per_node, const CommonArgs& args) {
  Point point;
  point.volume = per_node;
  for (const auto mode :
       {tracking::IndexingMode::kIndividual, tracking::IndexingMode::kGroup}) {
    tracking::TrackingSystem system(nodes, ExperimentConfig(mode, args.seed));
    const auto result = workload::ExecuteScenario(
        system, PaperWorkload(nodes, per_node, /*move_in_groups=*/true), args.seed);
    if (mode == tracking::IndexingMode::kIndividual) {
      point.individual_msgs = result.indexing_messages;
      point.individual_kb = result.indexing_bytes / 1024;
    } else {
      point.group_msgs = result.indexing_messages;
      point.group_kb = result.indexing_bytes / 1024;
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const auto args = CommonArgs::Parse(config);

  const std::size_t nodes =
      config.GetUInt("nodes", args.paper_scale ? 512 : 128);
  const std::size_t base =
      config.GetUInt("base-volume", args.paper_scale ? 500 : 100);
  const std::size_t steps = config.GetUInt("steps", 10);

  util::Table table({"objects/node", "individual msgs", "group msgs", "group/individual",
                     "individual KiB", "group KiB"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"volume", "individual_msgs", "group_msgs", "ratio",
                      "individual_kib", "group_kib"});

  for (std::size_t i = 1; i <= steps; ++i) {
    const Point p = RunPoint(nodes, base * i, args);
    const double ratio = p.individual_msgs == 0
                             ? 0.0
                             : static_cast<double>(p.group_msgs) /
                                   static_cast<double>(p.individual_msgs);
    table.AddRow({std::to_string(p.volume), std::to_string(p.individual_msgs),
                  std::to_string(p.group_msgs), util::FormatDouble(ratio, 3),
                  std::to_string(p.individual_kb), std::to_string(p.group_kb)});
    csv_rows.push_back({std::to_string(p.volume), std::to_string(p.individual_msgs),
                        std::to_string(p.group_msgs), util::FormatDouble(ratio, 4),
                        std::to_string(p.individual_kb), std::to_string(p.group_kb)});
  }

  Emit(util::Format(
           "Fig 6a: indexing cost vs data volume ({} nodes, 10% movers, 10-node traces)",
           nodes),
       table, csv_rows, args);
  std::printf("Paper shape: series nearly equal at the lowest volume; group indexing "
              "grows sublinearly and wins increasingly with volume.\n");
  return 0;
}
