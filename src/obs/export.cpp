#include "obs/export.hpp"

#include <fstream>

#include "obs/health.hpp"  // Shared JsonEscape.
#include "util/format.hpp"

namespace peertrack::obs {

std::string PerfettoExporter::ToJson(const Tracer& tracer) {
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  const auto append = [&](std::string event) {
    if (!first) json += ',';
    first = false;
    json += event;
  };

  for (const SpanRecord& span : tracer.Spans()) {
    // Trace-event ts/dur are microseconds; simulated time is milliseconds.
    const double ts_us = span.start_ms * 1000.0;
    const double dur_us = span.open ? 0.0 : (span.end_ms - span.start_ms) * 1000.0;
    append(util::Format(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},"
        "\"pid\":0,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},"
        "\"status\":\"{}\"}}}}",
        JsonEscape(span.name), ts_us, dur_us, span.actor, span.trace_id,
        span.span_id, span.parent_id,
        JsonEscape(span.open ? "open" : span.status)));
  }
  for (const MessageEvent& msg : tracer.Messages()) {
    append(util::Format(
        "{{\"name\":\"msg:{}\",\"cat\":\"wire\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"to\":{},\"bytes\":{},"
        "\"trace\":{},\"span\":{}}}}}",
        JsonEscape(msg.type), msg.at_ms * 1000.0, msg.from, msg.to, msg.bytes,
        msg.trace.trace_id, msg.trace.span_id));
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  return json;
}

bool PerfettoExporter::WriteFile(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson(tracer);
  return static_cast<bool>(out);
}

void TimeSeriesSampler::Start(double period_ms, double until_ms) {
  period_ms_ = period_ms;
  until_ms_ = until_ms;
  Tick();
}

void TimeSeriesSampler::Tick() {
  SampleNow();
  const double now = simulator_.Now();
  if (period_ms_ > 0.0 && now + period_ms_ <= until_ms_) {
    simulator_.ScheduleAfter(period_ms_, [this] { Tick(); });
  }
}

void TimeSeriesSampler::SampleNow() {
  const double t = simulator_.Now();
  const auto row = [&](std::string instrument, double value) {
    rows_.push_back(Row{t, std::move(instrument), value});
  };

  row("total_messages", static_cast<double>(metrics_.TotalMessages()));
  row("total_bytes", static_cast<double>(metrics_.TotalBytes()));
  row("dropped_messages", static_cast<double>(metrics_.DroppedMessages()));
  row("rpc_retries", static_cast<double>(metrics_.RpcRetries()));
  row("rpc_timeouts", static_cast<double>(metrics_.RpcTimeouts()));

  const obs::Registry& registry = metrics_.registry();
  for (const auto& [name, counter] : registry.counters()) {
    row(util::Format("counter:{}", name), static_cast<double>(counter.Value()));
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    row(util::Format("gauge:{}", name), gauge.Value());
  }
  for (const auto& [name, hist] : registry.histograms()) {
    row(util::Format("{}.count", name), static_cast<double>(hist.Count()));
    row(util::Format("{}.p50", name), hist.P50());
    row(util::Format("{}.p95", name), hist.P95());
    row(util::Format("{}.p99", name), hist.P99());
    row(util::Format("{}.max", name), hist.Max());
  }
}

bool TimeSeriesSampler::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "t_ms,instrument,value\n";
  for (const Row& row : rows_) {
    out << util::Format("{},{},{}\n", row.t_ms, row.instrument, row.value);
  }
  return static_cast<bool>(out);
}

bool TimeSeriesSampler::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const Row& row : rows_) {
    out << util::Format("{{\"t_ms\":{},\"instrument\":\"{}\",\"value\":{}}}\n",
                        row.t_ms, JsonEscape(row.instrument), row.value);
  }
  return static_cast<bool>(out);
}

}  // namespace peertrack::obs
