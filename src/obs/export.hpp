#pragma once
// Exporters for the observability layer.
//
// Two consumers, two formats:
//  * PerfettoExporter renders the Tracer's spans and wire messages as
//    Chrome/Perfetto trace-event JSON ("X" complete events per span, "i"
//    instants per message), loadable in ui.perfetto.dev — one track per
//    actor, so a query's probe/walk/rpc tree reads left to right across
//    the nodes it touched.
//  * TimeSeriesSampler snapshots sim::Metrics periodically on the
//    simulated clock and emits (t_ms, instrument, value) rows as CSV or
//    JSONL, turning end-of-run totals into time series (indexing cost
//    ramp-up, retry bursts under loss, queue drain).
//
// This header sits *above* sim (it includes sim headers); trace.hpp and
// registry.hpp stay below sim. See DESIGN.md §7.

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace peertrack::obs {

class PerfettoExporter {
 public:
  /// Render every span and message event as a trace-event JSON document
  /// ({"traceEvents":[...],"displayTimeUnit":"ms"}). Span ts/dur are in
  /// microseconds per the format; tid is the owning actor. Still-open
  /// spans export with dur 0 and status "open".
  static std::string ToJson(const Tracer& tracer);

  /// ToJson + write to `path`. Returns false when the file cannot be
  /// opened or written.
  static bool WriteFile(const Tracer& tracer, const std::string& path);
};

/// Periodic snapshot of a Metrics object on the simulated clock.
///
/// Ticks are scheduled only up to the `until_ms` horizon passed to Start,
/// so a drained simulator still terminates (the sampler never keeps the
/// event queue alive past its horizon). Each sample appends one row per
/// built-in total, named counter, gauge, and histogram statistic.
class TimeSeriesSampler {
 public:
  struct Row {
    double t_ms = 0.0;
    std::string instrument;
    double value = 0.0;
  };

  TimeSeriesSampler(sim::Simulator& simulator, const sim::Metrics& metrics)
      : simulator_(simulator), metrics_(metrics) {}

  /// Sample now and then every `period_ms` until the simulated clock
  /// passes `until_ms`.
  void Start(double period_ms, double until_ms);

  /// Take one snapshot at the current simulated time.
  void SampleNow();

  const std::vector<Row>& rows() const noexcept { return rows_; }

  /// Write rows as CSV with header `t_ms,instrument,value`. Returns false
  /// on I/O failure.
  bool WriteCsv(const std::string& path) const;

  /// Write rows as JSON Lines: {"t_ms":..,"instrument":"..","value":..}.
  bool WriteJsonl(const std::string& path) const;

 private:
  void Tick();

  sim::Simulator& simulator_;
  const sim::Metrics& metrics_;
  double period_ms_ = 0.0;
  double until_ms_ = 0.0;
  std::vector<Row> rows_;
};

}  // namespace peertrack::obs
