#include "obs/health.hpp"

#include <fstream>
#include <unordered_set>

#include "util/format.hpp"
#include "util/table.hpp"

namespace peertrack::obs {

std::string_view SeverityName(Severity severity) noexcept {
  switch (severity) {
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "unknown";
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          const unsigned v = static_cast<unsigned char>(c);
          out += "\\u00";
          out += kHex[(v >> 4) & 0xF];
          out += kHex[v & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- HealthLedger -----------------------------------------------------------

HealthLedger::Delta HealthLedger::Reconcile(std::string_view check,
                                            Severity severity,
                                            const std::vector<Finding>& findings,
                                            double now) {
  Delta delta;

  // Pre-existing open violations of this check; any of them not re-reported
  // this scan closes below. Subjects are matched exactly, so a fault whose
  // subject key changes counts as one heal plus one new fault.
  std::vector<std::size_t> previously_open;
  for (auto it = open_index_.lower_bound({std::string(check), std::string()});
       it != open_index_.end() && it->first.first == check; ++it) {
    previously_open.push_back(it->second);
  }

  std::unordered_set<std::size_t> refreshed;
  for (const Finding& finding : findings) {
    const auto key = std::make_pair(std::string(check), finding.subject);
    const auto it = open_index_.find(key);
    if (it != open_index_.end()) {
      Violation& violation = violations_[it->second];
      violation.last_seen_ms = now;
      violation.detail = finding.detail;
      refreshed.insert(it->second);
      ++delta.refreshed;
      continue;
    }
    Violation violation;
    violation.check = check;
    violation.severity = severity;
    violation.actor = finding.actor;
    violation.subject = finding.subject;
    violation.detail = finding.detail;
    violation.first_seen_ms = now;
    violation.last_seen_ms = now;
    open_index_.emplace(key, violations_.size());
    violations_.push_back(std::move(violation));
    ++open_total_;
    ++delta.opened;
  }

  for (const std::size_t index : previously_open) {
    Violation& violation = violations_[index];
    if (refreshed.contains(index)) continue;
    violation.cleared_ms = now;
    delta.repaired_ms.push_back(violation.RepairMs());
    open_index_.erase({violation.check, violation.subject});
    --open_total_;
  }
  return delta;
}

std::size_t HealthLedger::OpenCount(std::string_view check) const noexcept {
  std::size_t count = 0;
  for (auto it = open_index_.lower_bound({std::string(check), std::string()});
       it != open_index_.end() && it->first.first == check; ++it) {
    ++count;
  }
  return count;
}

std::size_t HealthLedger::OpenFatalCount() const noexcept {
  std::size_t count = 0;
  for (const auto& [key, index] : open_index_) {
    if (violations_[index].severity == Severity::kFatal) ++count;
  }
  return count;
}

// --- HealthReport -----------------------------------------------------------

std::string HealthReport::ToJson() const {
  std::string json = util::Format(
      "{{\n  \"schema\": \"peertrack.health.v1\",\n"
      "  \"generated_at_ms\": {},\n  \"scans\": {},\n"
      "  \"open_violations\": {},\n  \"open_fatal\": {},\n"
      "  \"violations_total\": {},\n  \"checks\": [",
      generated_at_ms, scans, open_violations, open_fatal, violations_total);
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const CheckSummary& check = checks[i];
    json += util::Format(
        "{}\n    {{\"id\": \"{}\", \"severity\": \"{}\", \"scans\": {}, "
        "\"failed_scans\": {}, \"findings\": {}, \"opened\": {}, "
        "\"healed\": {}, \"open\": {}, \"repair_ms\": {{\"count\": {}, "
        "\"p50\": {:.3f}, \"p95\": {:.3f}, \"p99\": {:.3f}, \"max\": {:.3f}}}}}",
        i == 0 ? "" : ",", JsonEscape(check.id), SeverityName(check.severity),
        check.scans, check.failed_scans, check.findings, check.opened,
        check.healed, check.open, check.repair.count, check.repair.p50_ms,
        check.repair.p95_ms, check.repair.p99_ms, check.repair.max_ms);
  }
  json += "\n  ],\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& violation = violations[i];
    json += util::Format(
        "{}\n    {{\"check\": \"{}\", \"severity\": \"{}\", \"actor\": {}, "
        "\"subject\": \"{}\", \"detail\": \"{}\", \"first_seen_ms\": {}, "
        "\"last_seen_ms\": {}, \"cleared_ms\": {}, \"open\": {}}}",
        i == 0 ? "" : ",", JsonEscape(violation.check),
        SeverityName(violation.severity), violation.actor,
        JsonEscape(violation.subject), JsonEscape(violation.detail),
        violation.first_seen_ms, violation.last_seen_ms,
        violation.cleared_ms ? util::Format("{}", *violation.cleared_ms) : "null",
        violation.Open() ? "true" : "false");
  }
  json += "\n  ]\n}\n";
  return json;
}

bool HealthReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

std::string HealthReport::SummaryTable() const {
  util::Table table({"check", "severity", "scans", "failed", "opened", "healed",
                     "open", "repair p50", "p95", "p99 (ms)"});
  for (const CheckSummary& check : checks) {
    table.AddRow({check.id, std::string(SeverityName(check.severity)),
                  util::Format("{}", check.scans),
                  util::Format("{}", check.failed_scans),
                  util::Format("{}", check.opened),
                  util::Format("{}", check.healed),
                  util::Format("{}", check.open),
                  util::Format("{:.1f}", check.repair.p50_ms),
                  util::Format("{:.1f}", check.repair.p95_ms),
                  util::Format("{:.1f}", check.repair.p99_ms)});
  }
  std::string out = table.Render();
  out += util::Format(
      "health @ t={}ms: {} scans, {} violations ({} open, {} open fatal) — {}\n",
      generated_at_ms, scans, violations_total, open_violations, open_fatal,
      Healthy() ? "HEALTHY" : "UNHEALTHY");
  return out;
}

}  // namespace peertrack::obs
