#pragma once
// Causal query tracing.
//
// A TraceContext is a (trace id, span id) pair generated at a query's
// origin and propagated on every wire message (sim::Message::trace) and
// every rpc request/response. Protocol layers open spans around each
// logical step — chord lookup, trace probe, IOP walk step, rpc attempt,
// gateway read — so a completed L(o,t) / TR(o,t1,t2) query yields a
// reconstructable causal span tree: which hops were taken, which attempts
// were retried, and where the time went.
//
// The Tracer is owned by sim::Network (one per simulated timeline) and is
// disabled by default: with tracing off, StartTrace returns an invalid
// context and every other operation on invalid contexts is a cheap no-op,
// so the big sweep benches pay nothing. Ids are sequential (deterministic
// per simulation), not random — reruns with the same seed produce the same
// tree.
//
// This header is self-contained (no sim/ includes): sim::Network embeds a
// Tracer and sim::Message embeds a TraceContext, so obs must sit below sim
// in the layering. Times are simulated milliseconds; actors are the raw
// uint32 ids sim::Network hands out.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace peertrack::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Actor id used when a span has no owning actor (0xFFFFFFFF mirrors
/// sim::kInvalidActor without depending on sim headers).
constexpr std::uint32_t kNoActor = 0xFFFFFFFFu;

/// Propagated context: which trace a message/span belongs to and which
/// span caused it. trace_id 0 means "no context" (tracing disabled or the
/// message is outside any traced operation).
struct TraceContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;

  bool Valid() const noexcept { return trace_id != 0; }
};

/// One completed (or still-open) span.
struct SpanRecord {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_id = 0;  ///< 0 = root span of its trace.
  std::string name;
  std::uint32_t actor = kNoActor;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::string status;  ///< "ok", "timeout", "no-reply", ... ; empty = open.
  bool open = true;
};

/// One message put on the wire while tracing was enabled (drives the
/// per-actor activity rows of the Perfetto export).
struct MessageEvent {
  double at_ms = 0.0;
  std::uint32_t from = kNoActor;
  std::uint32_t to = kNoActor;
  std::string type;
  std::size_t bytes = 0;
  TraceContext trace;  ///< Invalid when the message carried no context.
};

class Tracer {
 public:
  void SetEnabled(bool enabled) noexcept { enabled_ = enabled; }
  bool Enabled() const noexcept { return enabled_; }

  /// Open a root span, starting a new trace. Returns an invalid context
  /// (all downstream ops no-op) while the tracer is disabled.
  TraceContext StartTrace(std::string_view name, std::uint32_t actor, double now_ms);

  /// Open a child span of `parent`. No-op (invalid context) when disabled
  /// or when `parent` is invalid — context validity propagates, so a chain
  /// started outside tracing stays untraced end to end.
  TraceContext StartSpan(const TraceContext& parent, std::string_view name,
                         std::uint32_t actor, double now_ms);

  /// Close the span identified by `ctx`. Safe to call on invalid contexts
  /// and on already-closed spans (no-op), so cleanup paths need no guards.
  void EndSpan(const TraceContext& ctx, double now_ms, std::string_view status = "ok");

  /// Record a zero-duration child span of `ctx` (e.g. "gateway.read" on
  /// the serving node). No-op when `ctx` is invalid.
  void AddEvent(const TraceContext& ctx, std::string_view name, std::uint32_t actor,
                double now_ms);

  /// Record one wire message (called by sim::Network when enabled).
  void RecordMessage(double now_ms, std::uint32_t from, std::uint32_t to,
                     std::string_view type, std::size_t bytes,
                     const TraceContext& trace);

  // --- Inspection ---------------------------------------------------------

  /// Every span recorded so far, in creation order (parents precede
  /// children within a trace).
  const std::vector<SpanRecord>& Spans() const noexcept { return spans_; }

  /// Spans of one trace, in creation order.
  std::vector<const SpanRecord*> SpansOf(TraceId trace) const;

  const std::vector<MessageEvent>& Messages() const noexcept { return messages_; }

  std::size_t OpenSpanCount() const noexcept { return open_.size(); }

  /// Drop all recorded spans and messages (id counters keep advancing so
  /// contexts from before the clear cannot collide with new ones).
  void Clear();

 private:
  bool enabled_ = false;
  TraceId next_trace_id_ = 1;
  SpanId next_span_id_ = 1;
  std::vector<SpanRecord> spans_;
  std::unordered_map<SpanId, std::size_t> open_;  ///< span id -> spans_ index
  std::vector<MessageEvent> messages_;
};

/// RAII scope that stamps the active trace/span ids into util::Log* lines
/// (see util::SetLogTrace). Restores the previous ambient ids on exit, so
/// scopes nest. Constructing from an invalid context is a no-op.
class ScopedLogTrace {
 public:
  explicit ScopedLogTrace(const TraceContext& ctx);
  ~ScopedLogTrace();

  ScopedLogTrace(const ScopedLogTrace&) = delete;
  ScopedLogTrace& operator=(const ScopedLogTrace&) = delete;

 private:
  bool set_ = false;
  std::uint64_t prev_trace_ = 0;
  std::uint64_t prev_span_ = 0;
};

}  // namespace peertrack::obs
