#pragma once
// Health ledger: structured violation records for the invariant monitor.
//
// The monitor (obs/invariants.hpp) runs named checks on the sim clock; each
// scan of a check yields a set of findings. The ledger matches findings
// across scans by (check id, subject key) and turns them into Violation
// records with open/close simulated timestamps: a finding seen for the
// first time opens a violation, a finding that disappears closes it. The
// close minus open delta is the structure's *time-to-repair* — the
// convergence-latency signal churn experiments care about (how long was a
// successor pointer wrong, how long did an IOP link dangle).
//
// Timestamps are scan-granular by construction: first_seen_ms is the first
// scan that observed the fault, not the instant the fault appeared, so
// repair latencies are upper-bounded by reality plus one scan period.
//
// This header sits below sim (actor ids are plain integers here) so the
// ledger is unit-testable without a simulator; the monitor in
// invariants.hpp is the sim-facing owner.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace peertrack::obs {

/// How bad a violated invariant is. kFatal marks corruption that cannot
/// self-heal (lost records, cyclic chains); CI fails a run that ends with
/// an open fatal violation.
enum class Severity { kWarn, kError, kFatal };

std::string_view SeverityName(Severity severity) noexcept;

/// One finding reported by a check during one scan. `subject` is the
/// stable identity of the fault (object id + visit time, node address,
/// bucket prefix, ...): the ledger uses it to recognise the same fault
/// across scans.
struct Finding {
  std::uint32_t actor = 0xFFFFFFFFu;  ///< sim::ActorId of the afflicted node.
  std::string subject;
  std::string detail;
};

/// A fault's lifetime as observed by periodic scans.
struct Violation {
  std::string check;
  Severity severity = Severity::kWarn;
  std::uint32_t actor = 0xFFFFFFFFu;
  std::string subject;
  std::string detail;          ///< Detail text from the latest observation.
  double first_seen_ms = 0.0;  ///< Scan that opened the violation.
  double last_seen_ms = 0.0;   ///< Latest scan that still observed it.
  /// Scan at which the finding was gone again; open while unset.
  std::optional<double> cleared_ms;

  bool Open() const noexcept { return !cleared_ms.has_value(); }
  /// Observed time-to-repair. Precondition: !Open().
  double RepairMs() const noexcept { return *cleared_ms - first_seen_ms; }
};

/// Matches findings across scans and owns the full violation history
/// (open and healed).
class HealthLedger {
 public:
  /// What one Reconcile changed: how many violations it opened and the
  /// repair latency of every violation it closed.
  struct Delta {
    std::size_t opened = 0;
    std::size_t refreshed = 0;
    std::vector<double> repaired_ms;
  };

  /// Fold one check's scan results (taken at sim time `now`) into the
  /// ledger: new subjects open violations, seen-again subjects refresh
  /// last_seen, and open violations of this check whose subject is absent
  /// from `findings` close.
  Delta Reconcile(std::string_view check, Severity severity,
                  const std::vector<Finding>& findings, double now);

  std::size_t OpenCount() const noexcept { return open_total_; }
  std::size_t OpenCount(std::string_view check) const noexcept;
  /// Open violations with Severity::kFatal.
  std::size_t OpenFatalCount() const noexcept;

  /// Every violation ever opened, in open order.
  const std::vector<Violation>& violations() const noexcept { return violations_; }

 private:
  std::vector<Violation> violations_;
  /// (check, subject) -> index into violations_ for open records only.
  std::map<std::pair<std::string, std::string>, std::size_t> open_index_;
  std::size_t open_total_ = 0;
};

/// End-of-run snapshot: per-check aggregates plus the violation log.
/// Produced by InvariantMonitor::Report(); renders as machine-readable
/// JSON (CI artifact) or a human summary table.
struct HealthReport {
  struct RepairStats {
    std::uint64_t count = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };
  struct CheckSummary {
    std::string id;
    Severity severity = Severity::kWarn;
    std::uint64_t scans = 0;         ///< Times the check ran.
    std::uint64_t failed_scans = 0;  ///< Scans with >= 1 finding.
    std::uint64_t findings = 0;      ///< Total findings across scans.
    std::uint64_t opened = 0;        ///< Violations opened.
    std::uint64_t healed = 0;        ///< Violations closed.
    std::size_t open = 0;            ///< Violations still open now.
    RepairStats repair;              ///< Over healed violations.
  };

  double generated_at_ms = 0.0;
  std::uint64_t scans = 0;
  std::size_t open_violations = 0;
  std::size_t open_fatal = 0;
  std::vector<CheckSummary> checks;
  /// Sorted by (first_seen, check, subject). May be truncated for huge
  /// runs — `violations_total` always holds the untruncated count.
  std::vector<Violation> violations;
  std::size_t violations_total = 0;

  bool Healthy() const noexcept { return open_violations == 0; }

  /// {"schema":"peertrack.health.v1", ...} — see DESIGN.md §8.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// Column-aligned per-check table plus a one-line verdict.
  std::string SummaryTable() const;
};

/// Minimal JSON string escaping (quotes, backslash, control characters).
/// Shared by every hand-rolled JSON emitter in the obs layer.
std::string JsonEscape(std::string_view s);

}  // namespace peertrack::obs
