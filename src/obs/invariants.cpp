#include "obs/invariants.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "chord/chord_ring.hpp"
#include "tracking/tracking_system.hpp"
#include "util/format.hpp"

namespace peertrack::obs {

// --- InvariantMonitor -------------------------------------------------------

InvariantMonitor::InvariantMonitor(sim::Simulator& simulator, Registry& registry)
    : simulator_(simulator),
      registry_(registry),
      ctr_scans_(registry.GetCounter("invariant.scans")),
      ctr_opened_(registry.GetCounter("invariant.violations_opened")),
      ctr_cleared_(registry.GetCounter("invariant.violations_healed")),
      open_gauge_(registry.GetGauge("invariant.open")),
      repair_all_(registry.GetHistogram("invariant.repair_ms")) {}

void InvariantMonitor::AddCheck(std::string id, Severity severity, CheckFn fn) {
  auto check = std::make_unique<Check>(Check{
      .id = id,
      .severity = severity,
      .fn = std::move(fn),
      .pass = registry_.GetCounter(util::Format("invariant.pass:{}", id)),
      .fail = registry_.GetCounter(util::Format("invariant.fail:{}", id)),
      .open_gauge = registry_.GetGauge(util::Format("invariant.open:{}", id)),
      .repair = registry_.GetHistogram(util::Format("invariant.repair_ms:{}", id)),
  });
  checks_.push_back(std::move(check));
}

void InvariantMonitor::Start(double period_ms, double until_ms) {
  period_ms_ = period_ms;
  until_ms_ = until_ms;
  Tick();
}

void InvariantMonitor::Tick() {
  RunOnce();
  // Bounded-horizon rescheduling (same rule as TimeSeriesSampler): never
  // keep a drained event queue alive past the horizon.
  if (period_ms_ > 0.0 && simulator_.Now() + period_ms_ <= until_ms_) {
    simulator_.ScheduleAfter(period_ms_, [this] { Tick(); });
  }
}

void InvariantMonitor::RunOnce() {
  const auto wall_start = std::chrono::steady_clock::now();
  const double now = simulator_.Now();
  for (auto& check_ptr : checks_) {
    Check& check = *check_ptr;
    CheckContext context(now);
    check.fn(context);
    ++check.scans;
    if (context.findings().empty()) {
      check.pass.Add();
    } else {
      check.fail.Add();
      ++check.failed_scans;
      check.findings += context.findings().size();
    }
    const HealthLedger::Delta delta =
        ledger_.Reconcile(check.id, check.severity, context.findings(), now);
    check.opened += delta.opened;
    opened_total_ += delta.opened;
    if (delta.opened > 0) ctr_opened_.Add(delta.opened);
    if (!delta.repaired_ms.empty()) {
      check.healed += delta.repaired_ms.size();
      ctr_cleared_.Add(delta.repaired_ms.size());
      for (const double repaired : delta.repaired_ms) {
        check.repair.Add(repaired);
        repair_all_.Add(repaired);
      }
    }
    check.open_gauge.Set(static_cast<double>(ledger_.OpenCount(check.id)));
  }
  open_gauge_.Set(static_cast<double>(ledger_.OpenCount()));
  ++scans_;
  ctr_scans_.Add();
  scan_wall_ms_ += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
}

HealthReport InvariantMonitor::Report() const {
  // Bound the per-violation log so a pathological churn run cannot emit a
  // gigabyte of JSON; the aggregate counts always cover everything.
  constexpr std::size_t kMaxReportViolations = 2000;

  HealthReport report;
  report.generated_at_ms = simulator_.Now();
  report.scans = scans_;
  report.open_violations = ledger_.OpenCount();
  report.open_fatal = ledger_.OpenFatalCount();
  for (const auto& check_ptr : checks_) {
    const Check& check = *check_ptr;
    HealthReport::CheckSummary summary;
    summary.id = check.id;
    summary.severity = check.severity;
    summary.scans = check.scans;
    summary.failed_scans = check.failed_scans;
    summary.findings = check.findings;
    summary.opened = check.opened;
    summary.healed = check.healed;
    summary.open = ledger_.OpenCount(check.id);
    summary.repair.count = check.repair.Count();
    summary.repair.p50_ms = check.repair.P50();
    summary.repair.p95_ms = check.repair.P95();
    summary.repair.p99_ms = check.repair.P99();
    summary.repair.max_ms = check.repair.Max();
    report.checks.push_back(std::move(summary));
  }
  report.violations = ledger_.violations();
  report.violations_total = report.violations.size();
  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.first_seen_ms != b.first_seen_ms) {
                return a.first_seen_ms < b.first_seen_ms;
              }
              if (a.check != b.check) return a.check < b.check;
              return a.subject < b.subject;
            });
  if (report.violations.size() > kMaxReportViolations) {
    report.violations.resize(kMaxReportViolations);
  }
  return report;
}

// --- Ring checks ------------------------------------------------------------

namespace {

/// Alive nodes sorted by ring id — the ground-truth ring, built once per
/// scan (ChordRing::ExpectedSuccessor re-sorts per call, too slow to use
/// per finger).
std::vector<const chord::ChordNode*> SortedAliveNodes(const chord::ChordRing& ring) {
  std::vector<const chord::ChordNode*> alive;
  alive.reserve(ring.NodeCount());
  for (const auto& node : ring.Nodes()) {
    if (node->Alive()) alive.push_back(node.get());
  }
  std::sort(alive.begin(), alive.end(),
            [](const chord::ChordNode* a, const chord::ChordNode* b) {
              return a->Self().id < b->Self().id;
            });
  return alive;
}

/// True successor of `key` within the sorted alive ring: first node with
/// id >= key, wrapping to the front (same rule as ChordRing::ExpectedSuccessor).
const chord::ChordNode* TrueOwner(const std::vector<const chord::ChordNode*>& sorted,
                                  const chord::Key& key) {
  if (sorted.empty()) return nullptr;
  auto it = std::lower_bound(sorted.begin(), sorted.end(), key,
                             [](const chord::ChordNode* node, const chord::Key& k) {
                               return node->Self().id < k;
                             });
  if (it == sorted.end()) it = sorted.begin();
  return *it;
}

}  // namespace

void InstallRingChecks(InvariantMonitor& monitor, const chord::ChordRing& ring,
                       RingInvariantOptions options) {
  const chord::ChordRing* ringp = &ring;

  monitor.AddCheck("ring.successor", Severity::kError, [ringp](CheckContext& ctx) {
    const auto sorted = SortedAliveNodes(*ringp);
    const std::size_t n = sorted.size();
    if (n < 2) return;
    for (std::size_t i = 0; i < n; ++i) {
      const chord::ChordNode& node = *sorted[i];
      const chord::NodeRef& expected = sorted[(i + 1) % n]->Self();
      const chord::NodeRef actual = node.Successor();
      if (actual.id != expected.id) {
        ctx.Report(node.Self().actor, node.Address(),
                   util::Format("successor is {}, true ring says {}",
                                actual.Describe(), expected.Describe()));
      }
    }
  });

  monitor.AddCheck("ring.predecessor", Severity::kWarn, [ringp](CheckContext& ctx) {
    const auto sorted = SortedAliveNodes(*ringp);
    const std::size_t n = sorted.size();
    if (n < 2) return;
    for (std::size_t i = 0; i < n; ++i) {
      const chord::ChordNode& node = *sorted[i];
      const chord::NodeRef& expected = sorted[(i + n - 1) % n]->Self();
      if (!node.Predecessor().has_value()) {
        ctx.Report(node.Self().actor, node.Address(),
                   util::Format("predecessor unset, true ring says {}",
                                expected.Describe()));
      } else if (node.Predecessor()->id != expected.id) {
        ctx.Report(node.Self().actor, node.Address(),
                   util::Format("predecessor is {}, true ring says {}",
                                node.Predecessor()->Describe(), expected.Describe()));
      }
    }
  });

  if (options.check_successor_list) {
    monitor.AddCheck("ring.successor_list", Severity::kWarn, [ringp](CheckContext& ctx) {
      const auto sorted = SortedAliveNodes(*ringp);
      const std::size_t n = sorted.size();
      if (n < 2) return;
      for (std::size_t i = 0; i < n; ++i) {
        const chord::ChordNode& node = *sorted[i];
        const auto& entries = node.successors().Entries();
        for (std::size_t j = 0; j < entries.size(); ++j) {
          const chord::NodeRef& expected = sorted[(i + 1 + j) % n]->Self();
          if (entries[j].id != expected.id) {
            ctx.Report(node.Self().actor, node.Address(),
                       util::Format("successor_list[{}] is {}, true sequence says {}",
                                    j, entries[j].Describe(), expected.Describe()));
            break;  // One finding per node; deeper entries depend on this one.
          }
        }
      }
    });
  }

  if (options.check_fingers) {
    monitor.AddCheck("ring.finger", Severity::kWarn, [ringp](CheckContext& ctx) {
      const auto sorted = SortedAliveNodes(*ringp);
      if (sorted.size() < 2) return;
      for (const chord::ChordNode* node : sorted) {
        const chord::FingerTable& fingers = node->fingers();
        for (unsigned i = 0; i < chord::FingerTable::kBits; ++i) {
          const auto& finger = fingers.Get(i);
          if (!finger.has_value()) continue;  // Lazily populated; unset is legal.
          const chord::ChordNode* expected = TrueOwner(sorted, fingers.Start(i));
          if (finger->id != expected->Self().id) {
            ctx.Report(node->Self().actor,
                       util::Format("{}#f{}", node->Address(), i),
                       util::Format("finger[{}] is {}, successor({}..) is {}", i,
                                    finger->Describe(), fingers.Start(i).ToShortHex(),
                                    expected->Self().Describe()));
          }
        }
      }
    });
  }
}

// --- Tracking checks --------------------------------------------------------

namespace {

/// Where one index entry for an object physically lives.
struct EntrySite {
  const tracking::TrackerNode* node = nullptr;
  bool individual = false;     ///< Flat individual-mode map vs prefix bucket.
  hash::Prefix prefix;         ///< Valid when !individual.
  tracking::IndexEntry entry;
};

using SiteMap = std::unordered_map<hash::UInt160, std::vector<EntrySite>,
                                   hash::UInt160Hasher>;

/// One sweep over every alive tracker's index state (individual map and
/// every prefix bucket; replicas are backups, not index authority, and are
/// deliberately excluded).
SiteMap CollectIndexSites(tracking::TrackingSystem& system) {
  SiteMap sites;
  for (std::size_t i = 0; i < system.NodeCount(); ++i) {
    tracking::TrackerNode& tracker = system.Tracker(i);
    if (!tracker.chord().Alive()) continue;
    for (const auto& [object, entry] : tracker.individual_index().Entries()) {
      sites[object].push_back(EntrySite{&tracker, true, {}, entry});
    }
    for (const auto& prefix : tracker.prefix_store().Prefixes()) {
      const tracking::PrefixBucket* bucket = tracker.prefix_store().TryBucket(prefix);
      if (bucket == nullptr) continue;
      for (const auto& [object, entry] : bucket->Entries()) {
        sites[object].push_back(EntrySite{&tracker, false, prefix, entry});
      }
    }
  }
  return sites;
}

/// Per-scan-pass cache for CollectIndexSites: three index-wide checks need
/// the same sweep, and at perf-smoke scale (512k objects) each build is a
/// measurable slice of the scan budget. Keyed on the monitor's scan count,
/// which only advances after a full pass over every check — so the first
/// index-wide check of a pass builds the sweep and the rest reuse it.
struct SiteCache {
  std::uint64_t key = ~0ull;
  SiteMap sites;
};

const SiteMap& CachedIndexSites(SiteCache& cache, std::uint64_t key,
                                tracking::TrackingSystem& system) {
  if (cache.key != key) {
    cache.sites = CollectIndexSites(system);
    cache.key = key;
  }
  return cache.sites;
}

}  // namespace

void InstallTrackingChecks(InvariantMonitor& monitor,
                           tracking::TrackingSystem& system,
                           TrackingInvariantOptions options) {
  tracking::TrackingSystem* sys = &system;
  // Faults younger than the grace window are in flight, not violations: a
  // capture sits in its window for up to Tmax, then M1 routes over O(log n)
  // hops and M2/M3 add one more before both chain ends agree.
  const double staleness = options.staleness_ms > 0.0
                               ? options.staleness_ms
                               : system.config().tracker.window.tmax_ms + 2000.0;
  // One index sweep shared by the gateway/triangle/replication checks of a
  // scan pass (see SiteCache); each lambda holds the cache alive, and the
  // monitor (which owns the lambdas) outlives them.
  auto site_cache = std::make_shared<SiteCache>();
  const InvariantMonitor* mon = &monitor;

  if (options.check_iop) {
    monitor.AddCheck("iop.link", Severity::kError, [sys, staleness](CheckContext& ctx) {
      const double settled_before = ctx.Now() - staleness;
      for (std::size_t i = 0; i < sys->NodeCount(); ++i) {
        tracking::TrackerNode& tracker = sys->Tracker(i);
        if (!tracker.chord().Alive()) continue;
        const sim::ActorId self = tracker.Self().actor;
        tracker.iop().ForEachObject([&](const hash::UInt160& object,
                                        const std::vector<moods::Visit>& visits) {
          for (const moods::Visit& visit : visits) {
            const auto subject = [&](const char* end) {
              return util::Format("{}@{:.3f}:{}", object.ToShortHex(), visit.arrived,
                                  end);
            };
            // Forward: our to-link must have a matching from-link on the
            // destination's visit record.
            if (visit.to.has_value() && visit.to->Valid() &&
                visit.to_arrived.has_value() && *visit.to_arrived <= settled_before) {
              tracking::TrackerNode* dest = sys->TrackerByActor(visit.to->actor);
              // A link into a crashed node is unverifiable and unfixable —
              // the corpse's records are gone and nothing can reciprocate.
              // Trace walks surface it as a broken chain; graceful leavers
              // are NOT exempt (their records were handed over, so a
              // dangling reference is a handoff bug).
              const bool dest_crashed = dest != nullptr &&
                                        !dest->chord().Alive() &&
                                        !dest->LeftGracefully();
              const moods::Visit* far =
                  dest == nullptr ? nullptr
                                  : dest->iop().VisitAt(object, *visit.to_arrived);
              if (dest_crashed) {
                // Skip: nothing alive can make this link symmetric again.
              } else if (far == nullptr) {
                ctx.Report(self, subject("to"),
                           util::Format("to-link points at {} @ {:.3f} but no such "
                                        "visit exists there",
                                        visit.to->Describe(), *visit.to_arrived));
              } else if (!far->from.has_value() || !far->from->Valid() ||
                         far->from->actor != self ||
                         far->from_arrived != visit.arrived) {
                ctx.Report(self, subject("to"),
                           util::Format("to-link points at {} @ {:.3f} but its "
                                        "from-link does not point back here",
                                        visit.to->Describe(), *visit.to_arrived));
              }
            }
            // Reverse: our from-link must have a matching to-link on the
            // source's visit record.
            if (visit.from.has_value() && visit.from->Valid() &&
                visit.from_arrived.has_value() && visit.arrived <= settled_before) {
              tracking::TrackerNode* src = sys->TrackerByActor(visit.from->actor);
              const bool src_crashed = src != nullptr &&
                                       !src->chord().Alive() &&
                                       !src->LeftGracefully();
              const moods::Visit* far =
                  src == nullptr ? nullptr
                                 : src->iop().VisitAt(object, *visit.from_arrived);
              if (!src_crashed &&
                  (far == nullptr || !far->to.has_value() || !far->to->Valid() ||
                   far->to->actor != self || far->to_arrived != visit.arrived)) {
                ctx.Report(self, subject("from"),
                           util::Format("from-link points at {} @ {:.3f} but its "
                                        "to-link does not point back here",
                                        visit.from->Describe(), *visit.from_arrived));
              }
            }
            // An M3 is issued for every indexed arrival; a settled visit
            // that never learned its provenance marks a lost/missing M3.
            if (!visit.from.has_value() && visit.arrived <= settled_before) {
              ctx.Report(self, subject("m3"),
                         "visit never received its M3 (from-link unset)");
            }
          }
        });
      }
    });

    monitor.AddCheck("iop.acyclic", Severity::kFatal, [sys](CheckContext& ctx) {
      // A cycle in a time-sorted chain must contain a link that does not
      // advance time, so strict per-link monotonicity implies acyclicity —
      // O(visits) instead of a global chain walk.
      for (std::size_t i = 0; i < sys->NodeCount(); ++i) {
        tracking::TrackerNode& tracker = sys->Tracker(i);
        if (!tracker.chord().Alive()) continue;
        const sim::ActorId self = tracker.Self().actor;
        tracker.iop().ForEachObject([&](const hash::UInt160& object,
                                        const std::vector<moods::Visit>& visits) {
          for (const moods::Visit& visit : visits) {
            if (visit.to.has_value() && visit.to->Valid() &&
                visit.to_arrived.has_value() && *visit.to_arrived <= visit.arrived) {
              ctx.Report(self,
                         util::Format("{}@{:.3f}:to", object.ToShortHex(),
                                      visit.arrived),
                         util::Format("to-link goes backward in time ({:.3f} -> "
                                      "{:.3f}): chain is cyclic",
                                      visit.arrived, *visit.to_arrived));
            }
            if (visit.from.has_value() && visit.from->Valid() &&
                visit.from_arrived.has_value() &&
                *visit.from_arrived >= visit.arrived) {
              ctx.Report(self,
                         util::Format("{}@{:.3f}:from", object.ToShortHex(),
                                      visit.arrived),
                         util::Format("from-link goes forward in time ({:.3f} <- "
                                      "{:.3f}): chain is cyclic",
                                      visit.arrived, *visit.from_arrived));
            }
          }
        });
      }
    });
  }

  if (options.check_gateway) {
    monitor.AddCheck("gateway.staleness", Severity::kError,
                     [sys, staleness, site_cache, mon](CheckContext& ctx) {
      const double settled_before = ctx.Now() - staleness;
      const SiteMap& sites = CachedIndexSites(*site_cache, mon->ScansRun(), *sys);
      sys->oracle().ForEachObject([&](const hash::UInt160& object,
                                      const std::vector<moods::OracleVisit>& trips) {
        if (trips.empty()) return;
        const moods::OracleVisit& truth = trips.back();
        if (truth.arrived > settled_before) return;  // Still in flight.
        const auto it = sites.find(object);
        if (it == sites.end()) return;  // Loss is triangle.coverage's finding.
        const EntrySite* best = nullptr;
        for (const EntrySite& site : it->second) {
          if (best == nullptr ||
              site.entry.latest_arrived > best->entry.latest_arrived) {
            best = &site;
          }
        }
        const moods::NodeIndex indexed =
            sys->NodeIndexOfActor(best->entry.latest_node.actor);
        if (indexed != truth.node || best->entry.latest_arrived != truth.arrived) {
          ctx.Report(best->node->Self().actor, object.ToShortHex(),
                     util::Format("index says node {} @ {:.3f}, oracle latest is "
                                  "node {} @ {:.3f}",
                                  indexed, best->entry.latest_arrived, truth.node,
                                  truth.arrived));
        }
      });
    });
  }

  if (options.check_triangle) {
    monitor.AddCheck("triangle.coverage", Severity::kFatal,
                     [sys, staleness, site_cache, mon](CheckContext& ctx) {
      const double settled_before = ctx.Now() - staleness;
      const SiteMap& sites = CachedIndexSites(*site_cache, mon->ScansRun(), *sys);
      sys->oracle().ForEachObject([&](const hash::UInt160& object,
                                      const std::vector<moods::OracleVisit>& trips) {
        if (trips.empty()) return;
        if (trips.back().arrived > settled_before) return;
        const auto it = sites.find(object);
        if (it == sites.end() || it->second.empty()) {
          const tracking::TrackerNode* gateway = sys->OwnerOf(object);
          ctx.Report(gateway != nullptr ? gateway->Self().actor : sim::kInvalidActor,
                     object.ToShortHex(), "no index entry anywhere: record lost");
          return;
        }
        const std::vector<EntrySite>& found = it->second;
        if (found.size() == 1) return;
        // Query-time caching copies a child/parent entry onto the object's
        // own prefix chain at another level (data_triangle.cpp); that is
        // the only sanctioned form of duplication.
        bool sanctioned = true;
        std::set<unsigned> levels;
        for (const EntrySite& site : found) {
          if (site.individual || !site.prefix.Matches(object) ||
              !levels.insert(site.prefix.length).second) {
            sanctioned = false;
            break;
          }
        }
        if (!sanctioned) {
          ctx.Report(found.front().node->Self().actor, object.ToShortHex(),
                     util::Format("{} index entries off the object's own prefix "
                                  "chain: record duplicated",
                                  found.size()));
        }
      });
    });
  }

  if (options.check_replication) {
    monitor.AddCheck("gateway.replication", Severity::kError,
                     [sys, staleness, site_cache, mon](CheckContext& ctx) {
      if (!sys->config().tracker.replicate_index) return;
      const double settled_before = ctx.Now() - staleness;
      const auto sorted = SortedAliveNodes(sys->ring());
      const std::size_t n = sorted.size();
      if (n < 2) return;
      const std::size_t r = std::min<std::size_t>(
          sys->config().tracker.replication_factor, n - 1);
      if (r == 0) return;
      // Resolve every alive node's ring position and first r successor
      // trackers up front, so the per-object loop below only does
      // pointer-keyed lookups (this check visits every indexed object —
      // 512k at perf-smoke scale — every scan).
      std::unordered_map<const tracking::TrackerNode*, std::size_t> position;
      position.reserve(n);
      std::vector<std::vector<tracking::TrackerNode*>> successors(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (tracking::TrackerNode* tracker =
                sys->TrackerByActor(sorted[i]->Self().actor)) {
          position.emplace(tracker, i);
        }
        successors[i].reserve(r);
        for (std::size_t j = 1; j <= r; ++j) {
          successors[i].push_back(
              sys->TrackerByActor(sorted[(i + j) % n]->Self().actor));
        }
      }
      const SiteMap& sites = CachedIndexSites(*site_cache, mon->ScansRun(), *sys);
      for (const auto& [object, holders] : sites) {
        if (holders.empty()) continue;
        moods::Time freshest = holders.front().entry.latest_arrived;
        for (const EntrySite& site : holders) {
          freshest = std::max(freshest, site.entry.latest_arrived);
        }
        // The replica push itself needs time to land.
        if (freshest > settled_before) continue;
        bool covered = false;
        for (const EntrySite& site : holders) {
          if (site.entry.latest_arrived != freshest) continue;
          const auto pos = position.find(site.node);
          if (pos == position.end()) continue;
          bool all_successors_hold_it = true;
          for (tracking::TrackerNode* succ : successors[pos->second]) {
            bool holds = false;
            if (succ != nullptr) {
              const tracking::IndexEntry* replica =
                  succ->replica_store().Find(object);
              holds = replica != nullptr && replica->latest_arrived >= freshest;
              if (!holds) {
                // The successor may hold the object authoritatively
                // instead (promotion or index migration landed there).
                for (const EntrySite& other : holders) {
                  if (other.node == succ &&
                      other.entry.latest_arrived >= freshest) {
                    holds = true;
                    break;
                  }
                }
              }
            }
            if (!holds) {
              all_successors_hold_it = false;
              break;
            }
          }
          if (all_successors_hold_it) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          ctx.Report(holders.front().node->Self().actor, object.ToShortHex(),
                     util::Format("freshest entry (@ {:.3f}) is not mirrored on "
                                  "the {} successors of any holder: a gateway "
                                  "crash would lose L(o,t)",
                                  freshest, r));
        }
      }
    });
  }

  if (options.check_handoff) {
    monitor.AddCheck("handoff.complete", Severity::kError, [sys](CheckContext& ctx) {
      // Nodes that finished the two-phase leave protocol. A node crashed
      // mid-leave never sets the flag and is judged like any crash.
      std::unordered_set<sim::ActorId> departed;
      for (std::size_t i = 0; i < sys->NodeCount(); ++i) {
        tracking::TrackerNode& tracker = sys->Tracker(i);
        if (!tracker.chord().Alive() && tracker.LeftGracefully()) {
          departed.insert(tracker.Self().actor);
        }
      }
      if (departed.empty()) return;
      for (std::size_t i = 0; i < sys->NodeCount(); ++i) {
        tracking::TrackerNode& tracker = sys->Tracker(i);
        if (!tracker.chord().Alive()) continue;
        const sim::ActorId self = tracker.Self().actor;
        const std::string& address = tracker.chord().Address();
        tracker.iop().ForEachObject([&](const hash::UInt160& object,
                                        const std::vector<moods::Visit>& visits) {
          for (const moods::Visit& visit : visits) {
            if (visit.from.has_value() && departed.contains(visit.from->actor)) {
              ctx.Report(self,
                         util::Format("{}@{:.3f}:from", object.ToShortHex(),
                                      visit.arrived),
                         util::Format("from-link references departed node {}",
                                      visit.from->Describe()));
            }
            if (visit.to.has_value() && departed.contains(visit.to->actor)) {
              ctx.Report(self,
                         util::Format("{}@{:.3f}:to", object.ToShortHex(),
                                      visit.arrived),
                         util::Format("to-link references departed node {}",
                                      visit.to->Describe()));
            }
          }
        });
        const auto report_entry = [&](const hash::UInt160& object,
                                      const tracking::IndexEntry& entry,
                                      const char* where) {
          if (!departed.contains(entry.latest_node.actor)) return;
          ctx.Report(self,
                     util::Format("{}:{}:{}", address, object.ToShortHex(), where),
                     util::Format("{} entry says latest location is departed "
                                  "node {}",
                                  where, entry.latest_node.Describe()));
        };
        for (const auto& [object, entry] : tracker.individual_index().Entries()) {
          report_entry(object, entry, "index");
        }
        for (const auto& prefix : tracker.prefix_store().Prefixes()) {
          const tracking::PrefixBucket* bucket =
              tracker.prefix_store().TryBucket(prefix);
          if (bucket == nullptr) continue;
          for (const auto& [object, entry] : bucket->Entries()) {
            report_entry(object, entry, "index");
          }
        }
        for (const auto& [object, record] : tracker.replica_store().Records()) {
          report_entry(object, record.entry, "replica");
        }
      }
    });
  }

  if (options.check_prefix_shape) {
    monitor.AddCheck("prefix.shape", Severity::kError, [sys](CheckContext& ctx) {
      const auto sorted = SortedAliveNodes(sys->ring());
      if (sorted.empty()) return;
      const unsigned lp = sys->CurrentLp();
      const bool group =
          sys->config().tracker.mode == tracking::IndexingMode::kGroup;
      for (std::size_t i = 0; i < sys->NodeCount(); ++i) {
        tracking::TrackerNode& tracker = sys->Tracker(i);
        if (!tracker.chord().Alive()) continue;
        if (group) {
          for (const auto& prefix : tracker.prefix_store().Prefixes()) {
            const tracking::PrefixBucket* bucket =
                tracker.prefix_store().TryBucket(prefix);
            if (bucket == nullptr || bucket->Empty()) continue;
            const auto subject =
                util::Format("{}:{}", tracker.chord().Address(), prefix.ToString());
            if (prefix.length != lp && prefix.length != lp + 1) {
              ctx.Report(tracker.Self().actor, subject,
                         util::Format("bucket at level {} with Lp={} (only Lp and "
                                      "the delegated Lp+1 are legal)",
                                      prefix.length, lp));
              continue;
            }
            const chord::ChordNode* owner = TrueOwner(sorted, hash::GroupKey(prefix));
            if (owner->Self().actor != tracker.Self().actor) {
              ctx.Report(tracker.Self().actor, subject,
                         util::Format("bucket hosted off its gateway (owner of "
                                      "hash('{}') is {})",
                                      prefix.ToString(), owner->Self().Describe()));
            }
          }
        } else {
          std::size_t misplaced = 0;
          for (const auto& [object, entry] : tracker.individual_index().Entries()) {
            const chord::ChordNode* owner = TrueOwner(sorted, object);
            if (owner->Self().actor != tracker.Self().actor) ++misplaced;
          }
          if (misplaced > 0) {
            ctx.Report(tracker.Self().actor,
                       util::Format("{}:individual", tracker.chord().Address()),
                       util::Format("{} individual entries for keys this node does "
                                    "not own",
                                    misplaced));
          }
        }
      }
    });
  }
}

}  // namespace peertrack::obs
