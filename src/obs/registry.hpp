#pragma once
// Typed metric instruments and the registry that names them.
//
// Replaces the ad-hoc `std::map<std::string, uint64>` counters that
// sim::Metrics grew: protocol code asks the registry for a named Counter /
// Gauge / Histogram once and bumps it directly. Histograms are
// log-bucketed (geometric bucket bounds, a fixed number of sub-buckets per
// octave) so one 128-bucket array covers sub-millisecond rpc attempts and
// minute-long tail queries with bounded relative error, and p50/p95/p99
// come straight out of the bucket counts — the paper's mean-only latency
// reporting hides exactly the tail these expose.
//
// Instruments handed out by a Registry live as long as the registry and
// never move (std::map nodes), so hot paths may cache the reference.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace peertrack::obs {

class Counter {
 public:
  void Add(std::uint64_t by = 1) noexcept { value_ += by; }
  std::uint64_t Value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) noexcept { value_ = value; }
  double Value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Bucket layout of a log-bucketed histogram. Bucket 0 is the underflow
/// bucket [0, min_bound); bucket i >= 1 covers
/// [min_bound * growth^(i-1), min_bound * growth^i) where
/// growth = 2^(1/buckets_per_octave). The last bucket absorbs overflow.
struct HistogramOptions {
  double min_bound = 0.01;           ///< Lower edge of bucket 1.
  unsigned buckets_per_octave = 4;   ///< Sub-buckets per power of two
                                     ///< (4 => <= ~9% relative error).
  std::size_t max_buckets = 128;     ///< Total buckets incl. under/overflow.
};

/// Log-bucketed histogram with exact count/sum/min/max. Negative samples
/// clamp to 0 (latencies and sizes are non-negative by construction).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void Add(double value) noexcept;

  std::uint64_t Count() const noexcept { return count_; }
  double Sum() const noexcept { return sum_; }
  double Mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double Min() const noexcept { return count_ ? min_ : 0.0; }
  double Max() const noexcept { return count_ ? max_ : 0.0; }

  /// Percentile estimate for p in [0, 100]: locate the bucket holding the
  /// target rank and interpolate linearly inside it, clamped to the exact
  /// observed [Min, Max]. Returns 0 when empty.
  double Percentile(double p) const noexcept;
  double P50() const noexcept { return Percentile(50.0); }
  double P95() const noexcept { return Percentile(95.0); }
  double P99() const noexcept { return Percentile(99.0); }

  // --- Bucket introspection (tests / renderers) ---------------------------

  std::size_t BucketCount() const noexcept { return counts_.size(); }
  std::uint64_t BucketValue(std::size_t bucket) const noexcept { return counts_[bucket]; }
  /// Index of the bucket `value` falls into.
  std::size_t BucketIndexFor(double value) const noexcept;
  /// Inclusive lower / exclusive upper bound of `bucket` (bucket 0 starts
  /// at 0; the last bucket's upper bound is +inf).
  double BucketLow(std::size_t bucket) const noexcept;
  double BucketHigh(std::size_t bucket) const noexcept;

  const HistogramOptions& options() const noexcept { return options_; }

  void Reset() noexcept;

 private:
  HistogramOptions options_;
  double inv_log_growth_ = 0.0;  ///< 1 / ln(growth), cached for BucketIndexFor.
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> instrument. Creation is implicit on first Get*; asking for an
/// existing name returns the same instrument (options of later calls are
/// ignored for histograms). Iteration is sorted by name so Summary/CSV
/// output is stable.
class Registry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, HistogramOptions options = {});

  /// Value of a counter, 0 when it was never created.
  std::uint64_t CounterValue(std::string_view name) const noexcept;
  /// Histogram lookup without creation; nullptr when absent.
  const Histogram* FindHistogram(std::string_view name) const noexcept;

  const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const noexcept {
    return histograms_;
  }

  void Reset() { counters_.clear(); gauges_.clear(); histograms_.clear(); }

  /// Zero every instrument's value but keep the instruments themselves:
  /// names, histogram bucket layouts, and — critically — addresses survive,
  /// so references cached by hot paths stay valid across a reset.
  void ResetValues() noexcept;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace peertrack::obs
