#pragma once
// Online invariant monitor: continuous structural health auditing.
//
// The paper's correctness rests on three distributed structures staying
// mutually consistent — the Chord ring, the IOP doubly-linked list, and the
// Data Triangle's delegation — yet under churn and loss they drift and
// (usually) re-converge without anything observing either event. The
// InvariantMonitor is the distributed-systems analogue of a NaN/divergence
// watchdog: it registers named checks, runs them periodically on the
// simulated clock, and turns the findings into open/close Violation
// records via a HealthLedger, so transient inconsistency becomes a
// measurable time-to-repair distribution instead of silent luck.
//
// Checks are omniscient-but-read-only: they scan live node state directly
// (the simulator's equivalent of a debug sidecar with a consistent
// snapshot) and never mutate it, so an enabled monitor cannot change
// protocol behaviour — only event counts (its own ticks) and wall time.
//
// Pass/fail counters, open-violation gauges, and repair-latency histograms
// feed the obs::Registry, so the existing TimeSeriesSampler captures
// structural health as a time series next to traffic metrics.
//
// Like export.hpp, this header sits *above* sim/chord/tracking; health.hpp
// and registry.hpp stay below sim. See DESIGN.md §8 for the check
// catalogue.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"

namespace peertrack::chord {
class ChordRing;
}
namespace peertrack::tracking {
class TrackingSystem;
}

namespace peertrack::obs {

/// Collector handed to a check for one scan.
class CheckContext {
 public:
  explicit CheckContext(double now) : now_(now) {}

  /// Report one finding. `subject` must identify the fault stably across
  /// scans (the ledger matches on it); `detail` is free-form.
  void Report(std::uint32_t actor, std::string subject, std::string detail) {
    findings_.push_back(Finding{actor, std::move(subject), std::move(detail)});
  }

  double Now() const noexcept { return now_; }
  const std::vector<Finding>& findings() const noexcept { return findings_; }

 private:
  double now_;
  std::vector<Finding> findings_;
};

class InvariantMonitor {
 public:
  using CheckFn = std::function<void(CheckContext&)>;

  /// Instruments are created in `registry` (typically
  /// network.metrics().registry() so samplers see them). The monitor must
  /// not outlive the simulator, the registry, or any structure its checks
  /// scan.
  InvariantMonitor(sim::Simulator& simulator, Registry& registry);

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Register a named check. Per-check instruments:
  ///   counter invariant.pass:<id> / invariant.fail:<id>  (scan granularity)
  ///   gauge   invariant.open:<id>                        (open violations)
  ///   histogram invariant.repair_ms:<id>                 (heal latencies)
  void AddCheck(std::string id, Severity severity, CheckFn fn);

  /// Scan now, then every `period_ms` while the next tick is <= `until_ms`
  /// — the same bounded-horizon scheduling as TimeSeriesSampler, so a
  /// drained simulator still terminates. May be called mid-run; the first
  /// scan happens at the current simulated time.
  void Start(double period_ms, double until_ms);

  /// Run every check once at the current simulated time.
  void RunOnce();

  /// Snapshot: per-check aggregates plus the violation log. Violations
  /// still open are reported with open=true and no cleared_ms.
  HealthReport Report() const;

  const HealthLedger& ledger() const noexcept { return ledger_; }
  std::uint64_t ScansRun() const noexcept { return scans_; }
  std::size_t OpenViolations() const noexcept { return ledger_.OpenCount(); }
  std::size_t ViolationsOpened() const noexcept { return opened_total_; }
  /// Cumulative host wall-clock spent inside RunOnce — the monitor's
  /// overhead (informational; never fed back into the simulation).
  double ScanWallMs() const noexcept { return scan_wall_ms_; }

 private:
  struct Check {
    std::string id;
    Severity severity;
    CheckFn fn;
    std::uint64_t scans = 0;
    std::uint64_t failed_scans = 0;
    std::uint64_t findings = 0;
    std::uint64_t opened = 0;
    std::uint64_t healed = 0;
    Counter& pass;
    Counter& fail;
    Gauge& open_gauge;
    Histogram& repair;
  };

  void Tick();

  sim::Simulator& simulator_;
  Registry& registry_;
  std::vector<std::unique_ptr<Check>> checks_;
  HealthLedger ledger_;
  double period_ms_ = 0.0;
  double until_ms_ = 0.0;
  std::uint64_t scans_ = 0;
  std::uint64_t opened_total_ = 0;
  double scan_wall_ms_ = 0.0;
  Counter& ctr_scans_;
  Counter& ctr_opened_;
  Counter& ctr_cleared_;
  Gauge& open_gauge_;
  Histogram& repair_all_;
};

// --- Concrete check installers ---------------------------------------------

/// Ring-structure checks against the oracle ring (the sorted alive id set):
///   ring.successor       successor pointer agrees with the true ring (error)
///   ring.predecessor     predecessor set, alive, and correct        (warn)
///   ring.successor_list  list is a prefix of the true successor seq (warn)
///   ring.finger          populated fingers point at successor(start)(warn)
/// `ring` must outlive the monitor.
struct RingInvariantOptions {
  bool check_fingers = true;
  bool check_successor_list = true;
};
void InstallRingChecks(InvariantMonitor& monitor, const chord::ChordRing& ring,
                       RingInvariantOptions options = {});

/// Tracking-layer checks against the ground-truth oracle:
///   iop.link           every to-link has the matching from-link (and vice
///                      versa) on the counterpart node              (error)
///   iop.acyclic        links move strictly forward in time — a cycle
///                      must contain a non-increasing link          (fatal)
///   gateway.staleness  the index entry for each settled object points at
///                      its true latest location                    (error)
///   triangle.coverage  each settled object has exactly one authoritative
///                      index entry (query caching along the object's own
///                      parent/child prefix chain is allowed)       (fatal)
///   prefix.shape       buckets live at level Lp or Lp+1 on the gateway
///                      that owns their prefix key; individual entries
///                      live on the owner of the object key         (error)
///   gateway.replication  every settled object's freshest index entry is
///                      mirrored (replica or authoritative copy) on the
///                      first min(R, alive-1) true successors of some
///                      node holding it — i.e. a single gateway crash
///                      cannot lose L(o,t). No-op unless the tracker
///                      config enables replicate_index             (error)
///   handoff.complete   no alive node's IOP link, index entry, or replica
///                      references a node that has completed a graceful
///                      leave — the departing handoff repointed them all
///                                                                 (error)
/// `system` must outlive the monitor.
struct TrackingInvariantOptions {
  /// Updates younger than this are considered in flight and not judged
  /// (capture windows hold reports for up to Tmax, then M1 routing and
  /// M2/M3 delivery add network latency). 0 = derive from the tracker
  /// config: window Tmax + 2000 ms.
  double staleness_ms = 0.0;
  bool check_iop = true;
  bool check_gateway = true;
  bool check_triangle = true;
  bool check_prefix_shape = true;
  bool check_replication = true;
  bool check_handoff = true;
};
void InstallTrackingChecks(InvariantMonitor& monitor,
                           tracking::TrackingSystem& system,
                           TrackingInvariantOptions options = {});

}  // namespace peertrack::obs
