#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace peertrack::obs {

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (options_.min_bound <= 0.0) options_.min_bound = 0.01;
  if (options_.buckets_per_octave == 0) options_.buckets_per_octave = 4;
  if (options_.max_buckets < 2) options_.max_buckets = 2;
  const double growth =
      std::exp2(1.0 / static_cast<double>(options_.buckets_per_octave));
  inv_log_growth_ = 1.0 / std::log(growth);
  counts_.assign(options_.max_buckets, 0);
}

std::size_t Histogram::BucketIndexFor(double value) const noexcept {
  if (value < options_.min_bound) return 0;
  // value in [min * g^(i-1), min * g^i) => i = floor(log_g(value/min)) + 1.
  const double octaves = std::log(value / options_.min_bound) * inv_log_growth_;
  const auto index = static_cast<std::size_t>(octaves) + 1;
  return std::min(index, counts_.size() - 1);
}

double Histogram::BucketLow(std::size_t bucket) const noexcept {
  if (bucket == 0) return 0.0;
  return options_.min_bound *
         std::exp2(static_cast<double>(bucket - 1) /
                   static_cast<double>(options_.buckets_per_octave));
}

double Histogram::BucketHigh(std::size_t bucket) const noexcept {
  if (bucket + 1 >= counts_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.min_bound *
         std::exp2(static_cast<double>(bucket) /
                   static_cast<double>(options_.buckets_per_octave));
}

void Histogram::Add(double value) noexcept {
  if (value < 0.0) value = 0.0;
  ++counts_[BucketIndexFor(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank target, then linear interpolation inside the bucket.
  const double target = std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < counts_.size(); ++bucket) {
    if (counts_[bucket] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[bucket];
    if (static_cast<double>(cumulative) >= target) {
      const double fraction =
          (target - before) / static_cast<double>(counts_[bucket]);
      const double low = BucketLow(bucket);
      const double high = bucket + 1 >= counts_.size()
                              ? max_  // overflow bucket: cap at observed max
                              : BucketHigh(bucket);
      const double value = low + fraction * (high - low);
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Counter& Registry::GetCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::GetHistogram(std::string_view name, HistogramOptions options) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(options)).first->second;
}

std::uint64_t Registry::CounterValue(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.Value();
}

void Registry::ResetValues() noexcept {
  for (auto& [name, counter] : counters_) counter = Counter{};
  for (auto& [name, gauge] : gauges_) gauge = Gauge{};
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

const Histogram* Registry::FindHistogram(std::string_view name) const noexcept {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace peertrack::obs
