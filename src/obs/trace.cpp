#include "obs/trace.hpp"

#include "util/logging.hpp"

namespace peertrack::obs {

TraceContext Tracer::StartTrace(std::string_view name, std::uint32_t actor,
                                double now_ms) {
  if (!enabled_) return {};
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  ctx.span_id = next_span_id_++;
  SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  record.parent_id = 0;
  record.name.assign(name);
  record.actor = actor;
  record.start_ms = now_ms;
  record.end_ms = now_ms;
  open_.emplace(ctx.span_id, spans_.size());
  spans_.push_back(std::move(record));
  return ctx;
}

TraceContext Tracer::StartSpan(const TraceContext& parent, std::string_view name,
                               std::uint32_t actor, double now_ms) {
  if (!enabled_ || !parent.Valid()) return {};
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = next_span_id_++;
  SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  record.parent_id = parent.span_id;
  record.name.assign(name);
  record.actor = actor;
  record.start_ms = now_ms;
  record.end_ms = now_ms;
  open_.emplace(ctx.span_id, spans_.size());
  spans_.push_back(std::move(record));
  return ctx;
}

void Tracer::EndSpan(const TraceContext& ctx, double now_ms, std::string_view status) {
  if (!ctx.Valid()) return;
  const auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;  // already closed (or recorded before a Clear)
  SpanRecord& record = spans_[it->second];
  record.end_ms = now_ms;
  record.status.assign(status);
  record.open = false;
  open_.erase(it);
}

void Tracer::AddEvent(const TraceContext& ctx, std::string_view name,
                      std::uint32_t actor, double now_ms) {
  if (!enabled_ || !ctx.Valid()) return;
  SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = next_span_id_++;
  record.parent_id = ctx.span_id;
  record.name.assign(name);
  record.actor = actor;
  record.start_ms = now_ms;
  record.end_ms = now_ms;
  record.status = "ok";
  record.open = false;
  spans_.push_back(std::move(record));
}

void Tracer::RecordMessage(double now_ms, std::uint32_t from, std::uint32_t to,
                           std::string_view type, std::size_t bytes,
                           const TraceContext& trace) {
  if (!enabled_) return;
  MessageEvent event;
  event.at_ms = now_ms;
  event.from = from;
  event.to = to;
  event.type.assign(type);
  event.bytes = bytes;
  event.trace = trace;
  messages_.push_back(std::move(event));
}

std::vector<const SpanRecord*> Tracer::SpansOf(TraceId trace) const {
  std::vector<const SpanRecord*> result;
  for (const SpanRecord& span : spans_) {
    if (span.trace_id == trace) result.push_back(&span);
  }
  return result;
}

void Tracer::Clear() {
  spans_.clear();
  open_.clear();
  messages_.clear();
}

ScopedLogTrace::ScopedLogTrace(const TraceContext& ctx) {
  if (!ctx.Valid()) return;
  const auto [prev_trace, prev_span] = util::GetLogTrace();
  prev_trace_ = prev_trace;
  prev_span_ = prev_span;
  util::SetLogTrace(ctx.trace_id, ctx.span_id);
  set_ = true;
}

ScopedLogTrace::~ScopedLogTrace() {
  if (set_) util::SetLogTrace(prev_trace_, prev_span_);
}

}  // namespace peertrack::obs
