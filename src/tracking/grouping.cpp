#include "tracking/grouping.hpp"

namespace peertrack::tracking {

bool CaptureWindow::Add(const hash::UInt160& object, moods::Time captured_at) {
  if (buffer_.empty()) opened_at_ = captured_at;
  buffer_.emplace_back(object, captured_at);
  return buffer_.size() >= limits_.nmax;
}

std::map<hash::Prefix, std::vector<std::pair<hash::UInt160, moods::Time>>>
CaptureWindow::CloseAndGroup(unsigned prefix_length) {
  std::map<hash::Prefix, std::vector<std::pair<hash::UInt160, moods::Time>>> groups;
  for (auto& [object, time] : buffer_) {
    groups[hash::Prefix::OfKey(object, prefix_length)].emplace_back(object, time);
  }
  buffer_.clear();
  ++windows_closed_;
  return groups;
}

}  // namespace peertrack::tracking
