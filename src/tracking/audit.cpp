#include "tracking/audit.hpp"

#include "util/format.hpp"

namespace peertrack::tracking {

std::string TraceAuditor::Anomaly::Describe() const {
  switch (kind) {
    case AnomalyKind::kImpossibleTransit:
      return util::Format(
          "impossible transit into {} ({} ms since previous site) — clone suspected",
          site.Describe(), gap_ms);
    case AnomalyKind::kExcessiveDwell:
      return util::Format("excessive dwell at {} ({} ms)", site.Describe(), gap_ms);
    case AnomalyKind::kMissingLink:
      return util::Format(
          "broken chain after {}: the IOP walk hit a dead link — records "
          "missing or diverted",
          site.Describe());
    case AnomalyKind::kSilenceGap:
      return util::Format(
          "reappeared at {} after {} ms of silence — diversion suspected",
          site.Describe(), gap_ms);
  }
  return "unknown anomaly";
}

std::vector<TraceAuditor::Anomaly> TraceAuditor::Audit(
    const std::vector<TrackerNode::TraceStep>& path) const {
  std::vector<Anomaly> anomalies;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const moods::Time gap = path[i].arrived - path[i - 1].arrived;
    const bool different_site = path[i].node.actor != path[i - 1].node.actor;
    if (different_site && gap < limits_.min_transit_ms) {
      anomalies.push_back(Anomaly{AnomalyKind::kImpossibleTransit, i, path[i].node, gap});
    }
    if (limits_.max_dwell_ms > 0.0 && gap > limits_.max_dwell_ms) {
      // The dwell at the previous site lasted `gap` ms.
      anomalies.push_back(
          Anomaly{AnomalyKind::kExcessiveDwell, i - 1, path[i - 1].node, gap});
    }
    if (different_site && limits_.max_silence_ms > 0.0 &&
        gap > limits_.max_silence_ms) {
      // Off the books for `gap` ms, then surfaced somewhere else.
      anomalies.push_back(Anomaly{AnomalyKind::kSilenceGap, i, path[i].node, gap});
    }
  }
  return anomalies;
}

std::vector<TraceAuditor::Anomaly> TraceAuditor::Audit(
    const TrackerNode::TraceResult& result) const {
  std::vector<Anomaly> anomalies = Audit(result.path);
  if (result.chain_broken) {
    Anomaly anomaly{AnomalyKind::kMissingLink, 0, chord::NodeRef{}, 0.0};
    if (!result.path.empty()) {
      anomaly.step_index = result.path.size() - 1;
      anomaly.site = result.path.back().node;
    }
    anomalies.push_back(anomaly);
  }
  return anomalies;
}

bool TraceAuditor::LooksCloned(const std::vector<TrackerNode::TraceStep>& path) const {
  for (const auto& anomaly : Audit(path)) {
    if (anomaly.kind == AnomalyKind::kImpossibleTransit) return true;
  }
  return false;
}

}  // namespace peertrack::tracking
