#include "tracking/prefix_scheme.hpp"

#include <algorithm>
#include <cmath>

namespace peertrack::tracking {

namespace {

unsigned Clamp(double lp_raw, unsigned lmin) {
  if (!(lp_raw > 0.0)) return lmin;
  const double ceiled = std::ceil(lp_raw);
  const auto lp = static_cast<unsigned>(std::min(ceiled, 64.0));
  return std::max(lp, lmin);
}

}  // namespace

unsigned PrefixLengthFor(PrefixScheme scheme, std::size_t nodes, unsigned lmin) {
  if (nodes < 2) return lmin;
  const double n = static_cast<double>(nodes);
  const double log_n = std::log2(n);
  switch (scheme) {
    case PrefixScheme::kLogN:
      return Clamp(log_n, lmin);
    case PrefixScheme::kLogNLogLogN:
      return Clamp(log_n + std::log2(std::max(log_n, 1.0)), lmin);
    case PrefixScheme::kTwoLogN:
      return Clamp(2.0 * log_n, lmin);
  }
  return lmin;
}

double DeltaForPrefixLength(unsigned lp, std::size_t nodes) {
  if (nodes == 0) return 0.0;
  if (nodes == 1) return 1.0;
  const double n = static_cast<double>(nodes);
  const double m = std::pow(2.0, static_cast<double>(std::min(lp, 64u)));
  // 1 - ((n-1)/n)^m, computed in log space to avoid underflow for large m.
  const double log_term = m * std::log((n - 1.0) / n);
  return 1.0 - std::exp(log_term);
}

std::size_t NodesUntilNextIncrement(std::size_t nodes, unsigned lmin) {
  const unsigned current = PrefixLengthFor(PrefixScheme::kLogNLogLogN, nodes, lmin);
  for (std::size_t extra = 1; extra < nodes * 4 + 16; ++extra) {
    if (PrefixLengthFor(PrefixScheme::kLogNLogLogN, nodes + extra, lmin) > current) {
      return extra;
    }
  }
  return 0;  // No increment within the searched horizon.
}

std::string SchemeName(PrefixScheme scheme) {
  switch (scheme) {
    case PrefixScheme::kLogN: return "scheme1(log2 N)";
    case PrefixScheme::kLogNLogLogN: return "scheme2(log2 N + log2 log2 N)";
    case PrefixScheme::kTwoLogN: return "scheme3(2 log2 N)";
  }
  return "unknown";
}

}  // namespace peertrack::tracking
