#pragma once
// TrackingSystem — the top-level facade a downstream user instantiates.
//
// Owns the full stack for one simulated traceable network: event simulator,
// latency model, network, Chord ring, one TrackerNode per organization, the
// ground-truth oracle, and the global prefix-length state. Also implements
// PeerDirectory (gateway address resolution for the cached-address RPCs).
//
// Typical use (see examples/quickstart.cpp):
//   TrackingSystem system(64, config);
//   system.CaptureAt(3, obj, 10.0);     // receptor at node 3 reads obj
//   system.Run();                        // drain the event queue
//   system.TraceQuery(0, obj.Key(), cb); // "where has obj been?"
//   system.Run();

#include <memory>
#include <unordered_map>
#include <string>
#include <vector>

#include "chord/chord_ring.hpp"
#include "moods/oracle.hpp"
#include "tracking/tracker_node.hpp"

namespace peertrack::tracking {

struct SystemConfig {
  TrackerConfig tracker;
  PrefixScheme scheme = PrefixScheme::kLogNLogLogN;
  std::string latency = "constant:5";  ///< Paper: 5 ms per network message.
  std::uint64_t seed = 0x9e2fULL;
  /// 0 disables Chord maintenance (the experiments run on a converged,
  /// oracle-wired ring, matching the paper's static evaluation setup).
  double stabilize_every_ms = 0.0;
  double fix_fingers_every_ms = 0.0;
};

class TrackingSystem final : public PeerDirectory {
 public:
  /// Build a converged network of `nodes` organizations.
  TrackingSystem(std::size_t nodes, SystemConfig config);
  ~TrackingSystem() override;

  TrackingSystem(const TrackingSystem&) = delete;
  TrackingSystem& operator=(const TrackingSystem&) = delete;

  std::size_t NodeCount() const noexcept { return trackers_.size(); }
  TrackerNode& Tracker(std::size_t index) { return *trackers_[index]; }
  chord::ChordRing& ring() noexcept { return *ring_; }
  sim::Simulator& simulator() noexcept { return simulator_; }
  sim::Network& network() noexcept { return *network_; }
  sim::Metrics& metrics() noexcept { return network_->metrics(); }
  util::Rng& rng() noexcept { return rng_; }
  moods::TrajectoryOracle& oracle() noexcept { return oracle_; }
  unsigned CurrentLp() const noexcept { return global_lp_.lp; }
  const SystemConfig& config() const noexcept { return config_; }

  // --- Workload ----------------------------------------------------------

  /// Schedule a capture of `object` at node `node_index` at simulated time
  /// `at`, and record it in the ground-truth oracle.
  void CaptureAt(std::size_t node_index, const hash::UInt160& object, moods::Time at);

  /// Close all open capture windows (end of a workload phase) and drain.
  void FlushAllWindows();

  /// Drain the event queue.
  void Run() { simulator_.Run(); }
  void RunUntil(moods::Time t) { simulator_.RunUntil(t); }

  // --- Queries -------------------------------------------------------------

  void TraceQuery(std::size_t origin_index, const hash::UInt160& object,
                  TrackerNode::TraceCallback callback);

  /// Index-free flooding trace query (baseline; O(N) messages).
  void FloodTraceQuery(std::size_t origin_index, const hash::UInt160& object,
                       FloodingQueryEngine::Callback callback);
  void LocateQuery(std::size_t origin_index, const hash::UInt160& object,
                   TrackerNode::LocateCallback callback);

  // --- Membership / Lp management ------------------------------------------

  /// Recompute the scheme's Lp for the current alive node count; on change,
  /// broadcast to all trackers (triggering split/merge). Returns new Lp.
  unsigned RecomputePrefixLength();

  /// Add `extra` organizations to a running network. Each new node is wired
  /// into the (oracle-converged) ring and the previous owner of its key
  /// range hands matching index state over — the same migration a protocol
  /// join triggers via notify/OnRangeTransfer. Call RecomputePrefixLength()
  /// afterwards to let Lp react (split cascade).
  void GrowNetwork(std::size_t extra);

  /// Protocol-level join (churn extension; see DESIGN.md §8): one new
  /// organization joins through the Chord join protocol — no oracle
  /// wiring. Requires maintenance timers in the config; the caller
  /// advances the simulator to let stabilization integrate the node (and
  /// ownership handoff happens through notify/OnRangeTransfer). Returns
  /// the new node's index.
  std::size_t ProtocolJoinNode();

  /// Graceful departure of node `index`: starts the two-phase leave
  /// (rehome on-premise objects at the successor now, hand state over
  /// after the settle delay) and mirrors the rehoming into the oracle.
  TrackerNode::LeaveSummary LeaveNode(std::size_t index);

  /// Crash node `index` without notice. A node crashed mid-leave never
  /// counts as gracefully departed.
  void CrashNode(std::size_t index);

  /// Map an overlay actor id back to the experiment's node index
  /// (kNowhere when unknown) — used to validate against the oracle.
  moods::NodeIndex NodeIndexOfActor(sim::ActorId actor) const;

  /// Per-node gateway load (objects indexed), for the Fig. 8a curves.
  std::vector<std::uint64_t> IndexLoadPerNode() const;

  /// Per-node stored index entries.
  std::vector<std::uint64_t> StoredEntriesPerNode() const;

  // --- PeerDirectory ---------------------------------------------------------

  TrackerNode* TrackerByActor(sim::ActorId actor) override;
  TrackerNode* OwnerOf(const chord::Key& key) override;

 private:
  SystemConfig config_;
  util::Rng rng_;
  sim::Simulator simulator_;
  std::unique_ptr<sim::LatencyModel> latency_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<chord::ChordRing> ring_;
  GlobalPrefixState global_lp_;
  std::vector<std::unique_ptr<TrackerNode>> trackers_;
  std::vector<sim::ActorId> actor_of_index_;
  std::unordered_map<sim::ActorId, moods::NodeIndex> index_of_actor_;
  moods::TrajectoryOracle oracle_;
};

}  // namespace peertrack::tracking
