// Data-Triangle machinery (paper Section IV-A2 and Figure 5).
//
// A prefix gateway delegates its oldest entries to the gateways of the two
// one-bit-longer prefixes; during index persistence, records for objects
// unknown locally are pulled back from ascent (shorter-prefix) and descent
// (longer-prefix) gateways; and when the global Lp changes, buckets split
// down or merge up so the structure stays a triangle rather than a deep
// tree. Gateway addresses are cached (per the paper), so each exchange is
// charged as exactly one request + one response message.

#include <algorithm>

#include "tracking/tracker_node.hpp"
#include "util/logging.hpp"

namespace peertrack::tracking {

namespace {

constexpr std::size_t kEntryWireBytes = 20 + chord::kNodeRefBytes + 8;

/// Remove from `unknown` every object that now has an entry in `bucket`.
void PruneKnown(std::vector<hash::UInt160>& unknown, const PrefixBucket& bucket) {
  std::erase_if(unknown,
                [&](const hash::UInt160& object) { return bucket.Find(object) != nullptr; });
}

}  // namespace

void TrackerNode::ChargeRpc(std::string_view request_type, std::size_t request_bytes,
                            std::string_view response_type, std::size_t response_bytes,
                            sim::ActorId peer) {
  if (peer == Self().actor) return;  // Local: no wire cost.
  auto& metrics = chord_.network().metrics();
  metrics.RecordMessage(request_type, sim::kMessageHeaderBytes + request_bytes,
                        Self().actor, peer);
  metrics.RecordMessage(response_type, sim::kMessageHeaderBytes + response_bytes,
                        peer, Self().actor);
}

TrackerNode::FetchResult TrackerNode::FetchEntries(
    const hash::Prefix& prefix, std::span<const hash::UInt160> objects, bool remove) {
  FetchResult result;
  PrefixBucket* bucket = store_.TryBucket(prefix);
  if (bucket == nullptr) return result;
  result.bucket_exists = true;
  for (const auto& object : objects) {
    if (remove) {
      if (auto entry = bucket->Extract(object)) {
        result.entries.emplace_back(object, *entry);
      }
    } else if (const IndexEntry* entry = bucket->Find(object)) {
      result.entries.emplace_back(object, *entry);
    }
  }
  if (remove) store_.DropIfEmpty(prefix);
  return result;
}

void TrackerNode::RefreshFromAscent(std::vector<hash::UInt160>& unknown,
                                    const hash::Prefix& prefix, PrefixBucket& bucket) {
  // Figure 5, refresh_from_ascent: walk shorter prefixes down to Lmin,
  // stopping at the first level with no gateway bucket.
  hash::Prefix ancestor = prefix;
  while (ancestor.length > config_.lmin && !unknown.empty()) {
    ancestor = ancestor.Parent();
    TrackerNode* owner = peers_.OwnerOf(hash::GroupKey(ancestor));
    if (owner == nullptr) break;
    FetchResult fetched;
    if (owner == this) {
      fetched = FetchEntries(ancestor, unknown, /*remove=*/true);
    } else {
      ChargeRpc("track.fetch_req", 9 + unknown.size() * 20, "track.fetch_resp",
                1 + kEntryWireBytes, owner->Self().actor);
      fetched = owner->FetchEntries(ancestor, unknown, /*remove=*/true);
    }
    if (!fetched.bucket_exists) break;  // "while there exists gateway node".
    for (auto& [object, entry] : fetched.entries) {
      bucket.Upsert(object, entry);
    }
    PruneKnown(unknown, bucket);
  }
}

void TrackerNode::RefreshFromDescent(std::vector<hash::UInt160>& unknown,
                                     const hash::Prefix& prefix, PrefixBucket& bucket,
                                     std::size_t depth) {
  // Figure 5, refresh_from_descent: recurse into both children, pruning by
  // prefix match; in steady state the triangle is one level deep, but the
  // recursion handles transient deeper shapes after Lp changes.
  if (depth >= config_.max_descent_depth || prefix.length >= 63 || unknown.empty()) {
    return;
  }
  for (const bool bit : {false, true}) {
    const hash::Prefix child = prefix.Child(bit);
    std::vector<hash::UInt160> filtered;
    for (const auto& object : unknown) {
      if (child.Matches(object)) filtered.push_back(object);
    }
    if (filtered.empty()) continue;
    TrackerNode* owner = peers_.OwnerOf(hash::GroupKey(child));
    if (owner == nullptr) continue;
    FetchResult fetched;
    if (owner == this) {
      fetched = FetchEntries(child, filtered, /*remove=*/true);
    } else {
      ChargeRpc("track.fetch_req", 9 + filtered.size() * 20, "track.fetch_resp",
                1 + kEntryWireBytes, owner->Self().actor);
      fetched = owner->FetchEntries(child, filtered, /*remove=*/true);
    }
    for (auto& [object, entry] : fetched.entries) {
      bucket.Upsert(object, entry);
    }
    if (fetched.bucket_exists) {
      // Entries may have been delegated further down; keep descending with
      // the objects still unresolved in this subtree.
      std::vector<hash::UInt160> still_unknown;
      for (const auto& object : filtered) {
        if (bucket.Find(object) == nullptr) still_unknown.push_back(object);
      }
      if (!still_unknown.empty()) {
        RefreshFromDescent(still_unknown, child, bucket, depth + 1);
      }
    }
  }
  PruneKnown(unknown, bucket);
}

void TrackerNode::MaybeDelegate(const hash::Prefix& prefix, PrefixBucket& bucket) {
  if (bucket.Size() <= config_.delegation_threshold) return;
  if (prefix.length >= 63) return;
  const auto count =
      static_cast<std::size_t>(config_.alpha * static_cast<double>(bucket.Size()));
  if (count == 0) return;
  auto moving = bucket.ExtractEarliest(count);
  chord_.network().metrics().Bump("track.triangle_delegation");
  delegated_children_.insert(prefix);
  if (config_.replicate_index) {
    // The entries leave this gateway; replicas must not resurrect them at
    // this level on a later promotion. The child gateways re-replicate
    // them at their own successors on accept.
    std::vector<hash::UInt160> moved;
    moved.reserve(moving.size());
    for (const auto& [object, _] : moving) moved.push_back(object);
    SendReplicaErase(std::move(moved));
  }

  // Partition by the next bit after the prefix.
  std::vector<std::pair<hash::UInt160, IndexEntry>> child0;
  std::vector<std::pair<hash::UInt160, IndexEntry>> child1;
  for (auto& item : moving) {
    const bool bit = item.first.BitFromMsb(prefix.length);
    (bit ? child1 : child0).push_back(std::move(item));
  }
  if (!child0.empty()) {
    DeliverEntries(prefix.Child(false), std::move(child0), "track.delegate",
                   /*as_delegation=*/true);
  }
  if (!child1.empty()) {
    DeliverEntries(prefix.Child(true), std::move(child1), "track.delegate",
                   /*as_delegation=*/true);
  }
}

void TrackerNode::DeliverEntries(
    const hash::Prefix& prefix,
    std::vector<std::pair<hash::UInt160, IndexEntry>> entries,
    std::string_view charge_type, bool as_delegation) {
  TrackerNode* owner = peers_.OwnerOf(hash::GroupKey(prefix));
  if (owner == nullptr) {
    util::LogWarn("no owner for prefix {}", prefix.ToString());
    return;
  }
  if (owner != this) {
    ChargeRpc(charge_type, 9 + entries.size() * kEntryWireBytes, "track.delegate_ack",
              8, owner->Self().actor);
  }
  owner->AcceptEntries(prefix, std::move(entries), as_delegation);
}

void TrackerNode::AcceptEntries(
    const hash::Prefix& prefix,
    std::vector<std::pair<hash::UInt160, IndexEntry>> entries, bool as_delegation) {
  const unsigned lp = CurrentLp();
  // Delegation children live one level below the gateway; everything else
  // normalizes to exactly Lp so no entry strands at an unprobed level.
  if (as_delegation && prefix.length == lp + 1) {
    PrefixBucket& bucket = store_.BucketFor(prefix);
    std::vector<ReplicaUpdate::Item> accepted;
    for (auto& [object, entry] : entries) {
      const IndexEntry* existing = bucket.Find(object);
      if (existing == nullptr || existing->latest_arrived < entry.latest_arrived) {
        bucket.Upsert(object, entry);
        if (config_.replicate_index) {
          accepted.push_back({object, entry.latest_node, entry.latest_arrived, prefix});
        }
      }
    }
    ReplicateEntries(accepted, obs::TraceContext{});
    return;
  }
  if (prefix.length < lp) {
    std::vector<std::pair<hash::UInt160, IndexEntry>> child0;
    std::vector<std::pair<hash::UInt160, IndexEntry>> child1;
    for (auto& item : entries) {
      const bool bit = item.first.BitFromMsb(prefix.length);
      (bit ? child1 : child0).push_back(std::move(item));
    }
    if (!child0.empty()) DeliverEntries(prefix.Child(false), std::move(child0), "track.split");
    if (!child1.empty()) DeliverEntries(prefix.Child(true), std::move(child1), "track.split");
    return;
  }
  if (prefix.length > lp) {
    DeliverEntries(prefix.Parent(), std::move(entries), "track.merge");
    return;
  }
  PrefixBucket& bucket = store_.BucketFor(prefix);
  std::vector<ReplicaUpdate::Item> accepted;
  for (auto& [object, entry] : entries) {
    const IndexEntry* existing = bucket.Find(object);
    if (existing == nullptr || existing->latest_arrived < entry.latest_arrived) {
      bucket.Upsert(object, entry);
      if (config_.replicate_index) {
        accepted.push_back({object, entry.latest_node, entry.latest_arrived, prefix});
      }
    }
  }
  ReplicateEntries(accepted, obs::TraceContext{});
}

void TrackerNode::OnPrefixLengthChanged(unsigned new_lp) {
  // Splitting-merging process (Section IV-A2): buckets shorter than the new
  // Lp split into their children; buckets deeper than Lp+1 merge upward.
  delegated_children_.clear();  // Delegations re-form under load at the new shape.
  for (const auto& prefix : store_.Prefixes()) {
    if (prefix.length == new_lp) continue;
    PrefixBucket* bucket = store_.TryBucket(prefix);
    if (bucket == nullptr || bucket->Empty()) continue;
    auto entries = bucket->ExtractAll();
    store_.DropIfEmpty(prefix);
    if (prefix.length < new_lp) {
      chord_.network().metrics().Bump("track.triangle_split");
      std::vector<std::pair<hash::UInt160, IndexEntry>> child0;
      std::vector<std::pair<hash::UInt160, IndexEntry>> child1;
      for (auto& item : entries) {
        const bool bit = item.first.BitFromMsb(prefix.length);
        (bit ? child1 : child0).push_back(std::move(item));
      }
      if (!child0.empty()) DeliverEntries(prefix.Child(false), std::move(child0), "track.split");
      if (!child1.empty()) DeliverEntries(prefix.Child(true), std::move(child1), "track.split");
    } else {
      chord_.network().metrics().Bump("track.triangle_merge");
      DeliverEntries(prefix.Parent(), std::move(entries), "track.merge");
    }
  }
}

const IndexEntry* TrackerNode::TriangleLookup(const hash::UInt160& object, unsigned lp) {
  // Lookup algorithm (Section IV-A3): gateway bucket first, then parent and
  // the two children — 3 extra lookups per object at most in steady state.
  const hash::Prefix prefix = hash::Prefix::OfKey(object, lp);
  if (PrefixBucket* bucket = store_.TryBucket(prefix)) {
    if (const IndexEntry* entry = bucket->Find(object)) return entry;
  }
  const hash::UInt160 probe[] = {object};

  if (config_.always_refresh_ascent && prefix.length > config_.lmin) {
    const hash::Prefix parent = prefix.Parent();
    TrackerNode* owner = peers_.OwnerOf(hash::GroupKey(parent));
    if (owner != nullptr) {
      if (owner != this) {
        ChargeRpc("track.lookup_req", 29, "track.lookup_resp",
                  1 + kEntryWireBytes, owner->Self().actor);
      }
      auto fetched = owner->FetchEntries(parent, probe, /*remove=*/false);
      if (!fetched.entries.empty()) {
        // Cache locally so repeated queries hit the gateway bucket.
        store_.BucketFor(prefix).Upsert(object, fetched.entries.front().second);
        return store_.BucketFor(prefix).Find(object);
      }
    }
  }
  if (prefix.length < 63 && delegated_children_.contains(prefix)) {
    const hash::Prefix child = prefix.Child(object.BitFromMsb(prefix.length));
    TrackerNode* owner = peers_.OwnerOf(hash::GroupKey(child));
    if (owner != nullptr) {
      if (owner != this) {
        ChargeRpc("track.lookup_req", 29, "track.lookup_resp",
                  1 + kEntryWireBytes, owner->Self().actor);
      }
      auto fetched = owner->FetchEntries(child, probe, /*remove=*/false);
      if (!fetched.bucket_exists) {
        // Stale marker (the child bucket merged away); self-clean.
        delegated_children_.erase(prefix);
      }
      if (!fetched.entries.empty()) {
        store_.BucketFor(prefix).Upsert(object, fetched.entries.front().second);
        return store_.BucketFor(prefix).Find(object);
      }
    }
  }
  return nullptr;
}

}  // namespace peertrack::tracking
