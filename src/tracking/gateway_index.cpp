#include "tracking/gateway_index.hpp"

#include <algorithm>

namespace peertrack::tracking {

std::optional<IndexEntry> PrefixBucket::Extract(const hash::UInt160& object) {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return std::nullopt;
  IndexEntry entry = it->second;
  entries_.erase(it);
  return entry;
}

std::vector<std::pair<hash::UInt160, IndexEntry>> PrefixBucket::ExtractEarliest(
    std::size_t count) {
  count = std::min(count, entries_.size());
  std::vector<std::pair<hash::UInt160, IndexEntry>> all;
  all.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) all.emplace_back(key, entry);
  // Oldest `count` by last update time; ties broken by key for determinism
  // (unordered_map iteration order must not leak into results).
  std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count),
                   all.end(), [](const auto& a, const auto& b) {
                     if (a.second.latest_arrived != b.second.latest_arrived) {
                       return a.second.latest_arrived < b.second.latest_arrived;
                     }
                     return a.first < b.first;
                   });
  all.resize(count);
  for (const auto& [key, _] : all) entries_.erase(key);
  return all;
}

std::vector<std::pair<hash::UInt160, IndexEntry>> PrefixBucket::ExtractAll() {
  std::vector<std::pair<hash::UInt160, IndexEntry>> all;
  all.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) all.emplace_back(key, entry);
  entries_.clear();
  return all;
}

std::vector<std::pair<hash::UInt160, ReplicaRecord>> ReplicaStore::ExtractAll() {
  std::vector<std::pair<hash::UInt160, ReplicaRecord>> all;
  all.reserve(records_.size());
  for (const auto& [key, record] : records_) all.emplace_back(key, record);
  records_.clear();
  return all;
}

PrefixBucket* PrefixIndexStore::TryBucket(const hash::Prefix& prefix) {
  const auto it = buckets_.find(prefix);
  return it == buckets_.end() ? nullptr : &it->second;
}

const PrefixBucket* PrefixIndexStore::TryBucket(const hash::Prefix& prefix) const {
  const auto it = buckets_.find(prefix);
  return it == buckets_.end() ? nullptr : &it->second;
}

void PrefixIndexStore::DropIfEmpty(const hash::Prefix& prefix) {
  const auto it = buckets_.find(prefix);
  if (it != buckets_.end() && it->second.Empty()) buckets_.erase(it);
}

std::vector<hash::Prefix> PrefixIndexStore::Prefixes() const {
  std::vector<hash::Prefix> prefixes;
  prefixes.reserve(buckets_.size());
  for (const auto& [prefix, bucket] : buckets_) {
    if (!bucket.Empty()) prefixes.push_back(prefix);
  }
  return prefixes;
}

std::size_t PrefixIndexStore::TotalEntries() const {
  std::size_t total = 0;
  for (const auto& [_, bucket] : buckets_) total += bucket.Size();
  return total;
}

}  // namespace peertrack::tracking
