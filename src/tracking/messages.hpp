#pragma once
// Tracking-layer wire messages.
//
// Naming follows the paper's Figure 2: M1 is the arrival report from the
// capturing node to the gateway, M2 updates the previous node's IOP
// ("o.to = dst"), M3 updates the new node's IOP ("o.from = src"). Group
// indexing batches M1 per prefix group and M2/M3 per destination node.
//
// M1/GroupArrival are DHT-routed via RoutedEnvelope (greedy forwarding, one
// message per overlay hop); M2/M3 go point-to-point because the gateway
// knows the target addresses from its index. All of these are one-way
// (sim::MessageBase). The query-side exchanges — trace probes and IOP walk
// steps — are request/response RPCs (rpc::RequestBase/ResponseBase), so
// they retry through rpc::RpcClient and always complete or fail fast.

#include <memory>
#include <vector>

#include "chord/types.hpp"
#include "hash/keyspace.hpp"
#include "moods/object.hpp"
#include "rpc/rpc.hpp"
#include "sim/network.hpp"

namespace peertrack::tracking {

using chord::Key;
using chord::NodeRef;
using moods::Time;

/// Greedy DHT routing wrapper: forwarded hop by hop toward the owner of
/// `target`, then unwrapped and dispatched locally.
struct RoutedEnvelope final : sim::MessageBase<RoutedEnvelope> {
  Key target;
  std::unique_ptr<sim::Message> inner;

  std::string_view TypeName() const noexcept override { return "track.routed"; }
  std::size_t ApproxBytes() const noexcept override {
    // Accounted once per overlay hop; the inner payload is immutable while
    // the envelope is in flight, so the virtual chain is walked only once.
    if (cached_bytes_ == 0) {
      cached_bytes_ = 20 + (inner ? inner->ApproxBytes() : 0);
    }
    return cached_bytes_;
  }

 private:
  mutable std::size_t cached_bytes_ = 0;
};

/// M1 (individual indexing): object `object` arrived at `at` (time
/// `arrived`). `prev_hint` is unused by the paper's protocol but kept in
/// the struct for wire-size parity with deployments that echo it.
struct ObjectArrival final : sim::MessageBase<ObjectArrival> {
  Key object;
  NodeRef at;
  Time arrived = 0.0;

  std::string_view TypeName() const noexcept override { return "track.arrival"; }
  std::size_t ApproxBytes() const noexcept override { return 20 + chord::kNodeRefBytes + 8; }
};

/// M1 (group indexing): one message per (window, prefix group).
/// Wire format per the paper: (group id, (objects), timestamp).
struct GroupArrival final : sim::MessageBase<GroupArrival> {
  hash::Prefix prefix;
  NodeRef at;
  std::vector<std::pair<Key, Time>> objects;

  std::string_view TypeName() const noexcept override { return "track.group_arrival"; }
  std::size_t ApproxBytes() const noexcept override {
    return 9 + chord::kNodeRefBytes + objects.size() * (20 + 8);
  }
};

/// M2: tells the object's previous node where it went. Batched: one
/// message per (gateway, previous-node) pair.
struct IopToUpdate final : sim::MessageBase<IopToUpdate> {
  struct Item {
    Key object;
    NodeRef to;
    Time to_arrived = 0.0;
  };
  std::vector<Item> items;
  /// Set on M2s forwarded along an existing IOP chain (the gateway's index
  /// entry was stale — e.g. resurrected from an old replica after a crash
  /// — and named the wrong previous node). The node that finally accepts a
  /// re-announced link also re-sends the matching M3 so the capturer's
  /// orphaned from-link heals.
  bool reannounce = false;

  std::string_view TypeName() const noexcept override { return "track.iop_to"; }
  std::size_t ApproxBytes() const noexcept override {
    return 1 + items.size() * (20 + chord::kNodeRefBytes + 8);
  }
};

/// M3: tells the object's new node where it came from. Batched: one
/// message per (gateway, capturing-node) pair.
struct IopFromUpdate final : sim::MessageBase<IopFromUpdate> {
  struct Item {
    Key object;
    Time arrived = 0.0;          ///< Arrival time at the receiving node.
    NodeRef from;                ///< Invalid => first appearance.
    Time from_arrived = 0.0;     ///< Arrival time at `from` (visit id there).
  };
  std::vector<Item> items;
  /// Set on M3s re-sent while healing an orphaned from-link (see
  /// IopToUpdate::reannounce). Re-announced links only move the from-link
  /// deeper along the chain (monotonically later `from_arrived`), so
  /// stragglers cannot undo a better correction.
  bool reannounce = false;

  std::string_view TypeName() const noexcept override { return "track.iop_from"; }
  std::size_t ApproxBytes() const noexcept override {
    return 1 + items.size() * (20 + 8 + chord::kNodeRefBytes + 8);
  }
};

/// Gateway-index replication (extension; see DESIGN.md): every index
/// update is mirrored to the gateway's first R ring successors, which by
/// Chord's ownership rule are exactly the nodes that become the key's
/// owner if the gateway (and its nearer successors) crash — the backup is
/// where queries will look next. Sent as an acknowledged RPC so a push to
/// a transiently-unreachable successor retries with backoff instead of
/// silently dropping. `prefix` tags each item with the bucket it came from
/// (length 0 = individual-mode entry) so promotion after a crash restores
/// it at the right triangle level.
struct ReplicaUpdate final : rpc::RequestBase<ReplicaUpdate> {
  struct Item {
    Key object;
    NodeRef latest_node;
    Time latest_arrived = 0.0;
    hash::Prefix prefix;
  };
  std::vector<Item> items;

  std::string_view TypeName() const noexcept override { return "track.replica"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + items.size() * (20 + chord::kNodeRefBytes + 8 + 9);
  }
};

struct ReplicaAck final : rpc::ResponseBase<ReplicaAck> {
  std::string_view TypeName() const noexcept override { return "track.replica_ack"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes; }
};

/// Anti-entropy removal: the authoritative gateway delegated or migrated
/// these entries away, so replicas must not resurrect them as stale copies
/// on a later promotion. Fire-and-forget — a lost erase only widens the
/// sanctioned-duplicate window the Data Triangle already tolerates.
struct ReplicaErase final : sim::MessageBase<ReplicaErase> {
  std::vector<Key> objects;

  std::string_view TypeName() const noexcept override { return "track.replica_erase"; }
  std::size_t ApproxBytes() const noexcept override { return objects.size() * 20; }
};

/// Graceful-leave link re-announce: the departing node hands its IOP visit
/// records to its successor and tells every linked neighbour to repoint
/// the matching link at the successor, so TR walks keep resolving across
/// the departure. `arrived` identifies the neighbour's own visit;
/// `fix_to` selects which side of that visit referenced the departing
/// node.
struct IopRepoint final : sim::MessageBase<IopRepoint> {
  struct Item {
    Key object;
    Time arrived = 0.0;   ///< Visit id at the receiving node.
    bool fix_to = false;  ///< true: repoint to-link, false: from-link.
    NodeRef new_node;     ///< The departing node's successor.
  };
  std::vector<Item> items;

  std::string_view TypeName() const noexcept override { return "track.iop_repoint"; }
  std::size_t ApproxBytes() const noexcept override {
    return items.size() * (20 + 8 + 1 + chord::kNodeRefBytes);
  }
};

/// Query routing probe (paper Section IV-B): the querying node walks the
/// overlay toward the object's gateway key, asking each hop whether it can
/// already answer from local IOP.
struct TraceProbe final : rpc::RequestBase<TraceProbe> {
  Key object;
  Key routing_target;  ///< hash(object) or hash(prefix) depending on mode.
  bool allow_intercept = true;  ///< Locate queries need the gateway's
                                ///< authoritative latest; no interception.

  std::string_view TypeName() const noexcept override { return "track.probe"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes + 40 + 1; }
};

struct TraceProbeReply final : rpc::ResponseBase<TraceProbeReply> {
  enum class Kind : std::uint8_t {
    kNextHop,     ///< Keep routing; `node` is the next hop.
    kHasIop,      ///< I witnessed the object; walk can start from me.
    kGatewayHit,  ///< I am the gateway; `node`/`arrived` give latest location.
    kNotFound,    ///< I am the gateway; the object is unknown.
  };
  Kind kind = Kind::kNextHop;
  NodeRef node;
  Time arrived = 0.0;  ///< For kGatewayHit: arrival time at latest node.
                       ///< For kHasIop: arrival time of my latest visit.

  std::string_view TypeName() const noexcept override { return "track.probe_reply"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + 1 + chord::kNodeRefBytes + 8;
  }
};

/// One step of the IOP walk: ask a node for its visit record of `object`
/// identified by arrival time.
struct IopWalkRequest final : rpc::RequestBase<IopWalkRequest> {
  Key object;
  Time arrived = 0.0;

  std::string_view TypeName() const noexcept override { return "track.walk_req"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes + 20 + 8; }
};

struct IopWalkResponse final : rpc::ResponseBase<IopWalkResponse> {
  bool found = false;
  Time arrived = 0.0;
  bool has_from = false;
  NodeRef from;             ///< Valid iff a predecessor visit exists.
  Time from_arrived = 0.0;
  bool has_to = false;
  NodeRef to;
  Time to_arrived = 0.0;

  std::string_view TypeName() const noexcept override { return "track.walk_resp"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + 1 + 8 + 2 * (1 + chord::kNodeRefBytes + 8);
  }
};

}  // namespace peertrack::tracking
