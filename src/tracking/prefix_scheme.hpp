#pragma once
// Prefix-length (Lp) selection — paper Section IV-A1, Equations 4-6, and
// the three schemes evaluated in Section V-C.
//
//   Scheme 1: Lp = ceil(log2 Nn)                       (fewest groups)
//   Scheme 2: Lp = ceil(log2 Nn + log2 log2 Nn)        (the paper's choice)
//   Scheme 3: Lp = ceil(2 * log2 Nn)                   (best balance, costly)
//
// Scheme 2 comes from requiring m = 2^Lp ≈ Nn log2 Nn groups so that the
// probability δ = 1 - ((Nn-1)/Nn)^m that a node indexes at least one group
// tends to 1 (coupon-collector argument, Equation 5).

#include <cstdint>
#include <string>

namespace peertrack::tracking {

enum class PrefixScheme : int {
  kLogN = 1,        ///< Scheme 1.
  kLogNLogLogN = 2, ///< Scheme 2 (paper default).
  kTwoLogN = 3,     ///< Scheme 3.
};

/// Lp for `scheme` at network size `nodes`, clamped to [lmin, 64].
/// Network sizes below 2 yield lmin.
unsigned PrefixLengthFor(PrefixScheme scheme, std::size_t nodes, unsigned lmin);

/// Equation 4: probability that a given node indexes at least one of the
/// m = 2^lp groups, for `nodes` nodes.
double DeltaForPrefixLength(unsigned lp, std::size_t nodes);

/// Equation 7's increment question: smallest number of additional nodes
/// that bumps Scheme-2 Lp by one, from network size `nodes`.
std::size_t NodesUntilNextIncrement(std::size_t nodes, unsigned lmin);

std::string SchemeName(PrefixScheme scheme);

}  // namespace peertrack::tracking
