#pragma once
// Flooding trace queries — the naive PDMS baseline.
//
// The paper positions IOP + gateway indexing against systems that must
// "flood queries to all nodes in the network" when no movement-path
// information is available (Section I's discussion of Theseos). This
// module implements that baseline honestly: the querying node broadcasts a
// probe to every peer, each peer returns its local visits of the object,
// and the origin assembles the trajectory. Correct, index-free, and
// O(N) messages per query — the benchmark `ablation_flooding` quantifies
// exactly the trade-off the paper's design removes.
//
// Each per-peer probe is an RPC, so a down or unreachable peer costs a
// retry sequence and then counts as answered-empty instead of stalling the
// whole broadcast forever.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "chord/types.hpp"
#include "moods/iop.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/rpc.hpp"
#include "sim/network.hpp"

namespace peertrack::tracking {

class TrackerNode;

/// Broadcast probe: "send me every visit you witnessed for `object`".
struct FloodProbe final : rpc::RequestBase<FloodProbe> {
  chord::Key object;

  std::string_view TypeName() const noexcept override { return "track.flood_probe"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes + 20; }
};

struct FloodReply final : rpc::ResponseBase<FloodReply> {
  /// Arrival times of the sender's visits (empty = never seen).
  std::vector<moods::Time> arrivals;

  std::string_view TypeName() const noexcept override { return "track.flood_reply"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + arrivals.size() * 8;
  }
};

/// Per-node flooding query engine. Owns its pending-query state; plugs into
/// TrackerNode's message dispatch via RegisterHandlers.
class FloodingQueryEngine {
 public:
  struct Result {
    bool ok = false;  ///< At least one node reported the object.
    /// (node, arrival) steps sorted by time — same shape as a TraceResult.
    std::vector<std::pair<chord::NodeRef, moods::Time>> path;
    moods::Time issued_at = 0.0;
    moods::Time completed_at = 0.0;
    std::size_t messages = 0;  ///< Probes + replies for this query.
    double DurationMs() const noexcept { return completed_at - issued_at; }
  };
  using Callback = std::function<void(Result)>;

  FloodingQueryEngine(sim::Network& network, const chord::NodeRef& self,
                      const moods::IopStore& iop)
      : network_(network), self_(self), iop_(iop), rpc_(network), server_(network) {
    rpc_.Bind(self_.actor);
    server_.Bind(self_.actor);
  }

  /// Wire the probe server and reply routing into the owning node's
  /// dispatcher. Call once.
  void RegisterHandlers(rpc::Dispatcher& dispatcher);

  /// Deadline/backoff per probed peer.
  void SetRetryPolicy(const rpc::RetryPolicy& policy) { policy_ = policy; }

  /// Peers to flood (every alive organization; maintained by the system).
  void SetMembership(std::vector<chord::NodeRef> peers) { peers_ = std::move(peers); }

  /// Broadcast a trace query for `object`. The callback always fires once
  /// every per-peer call has completed or exhausted its retries.
  void Query(const chord::Key& object, Callback callback);

 private:
  struct Pending {
    chord::Key object;
    Callback callback;
    moods::Time issued_at = 0.0;
    std::size_t awaiting = 0;
    std::size_t messages = 0;
    std::vector<std::pair<chord::NodeRef, moods::Time>> collected;
    obs::TraceContext span;  ///< Root "query.flood" span (invalid untraced).
  };

  void OnPeerDone(std::uint64_t query_id);
  void Finish(std::uint64_t query_id);

  sim::Network& network_;
  chord::NodeRef self_;
  const moods::IopStore& iop_;
  rpc::RpcClient rpc_;
  rpc::RpcServer server_;
  rpc::RetryPolicy policy_;
  std::vector<chord::NodeRef> peers_;
  std::uint64_t next_query_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace peertrack::tracking
