#pragma once
// Movement prediction — the paper's stated future work ("add capabilities
// for predicting future status of objects", Section VII), implemented as a
// first-order Markov model over observed traces.
//
// The predictor consumes completed trace-query results (so it runs at any
// querying organization without extra protocol support) and learns
// node-to-node transition frequencies plus per-node dwell times. It then
// answers "where will object o go next, and roughly when?" with smoothed
// probabilities. This matches the discrete-space MOODS view: predictions
// are over the finite node set, not a continuous region.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "tracking/tracker_node.hpp"
#include "util/stats.hpp"

namespace peertrack::tracking {

class MovementPredictor {
 public:
  /// Laplace smoothing constant for unseen transitions (0 = max-likelihood).
  explicit MovementPredictor(double smoothing = 0.0) : smoothing_(smoothing) {}

  /// Learn from one object trajectory (node actors with arrival times, as a
  /// TraceResult provides).
  void ObserveTrace(const std::vector<TrackerNode::TraceStep>& path);

  /// Convenience: learn from a sequence of node ids only.
  void ObserveSequence(const std::vector<sim::ActorId>& nodes);

  struct Prediction {
    sim::ActorId node = sim::kInvalidActor;
    double probability = 0.0;
    double expected_dwell_ms = 0.0;  ///< Mean observed dwell at the source.
  };

  /// Most likely next hops from `node`, highest probability first.
  /// `top_k = 0` returns all known candidates.
  std::vector<Prediction> NextFrom(sim::ActorId node, std::size_t top_k = 3) const;

  /// P(next = to | at = from), with Laplace smoothing over the observed
  /// candidate set. 0 when `from` was never seen as a source.
  double TransitionProbability(sim::ActorId from, sim::ActorId to) const;

  /// Mean dwell time (ms between arrival and departure) observed at `node`;
  /// 0 when unknown.
  double MeanDwellMs(sim::ActorId node) const;

  std::uint64_t ObservedTransitions() const noexcept { return total_transitions_; }
  std::size_t KnownSources() const noexcept { return transitions_.size(); }

 private:
  struct SourceStats {
    std::map<sim::ActorId, std::uint64_t> next_counts;
    std::uint64_t total = 0;
    util::RunningStats dwell_ms;
  };

  double smoothing_;
  std::unordered_map<sim::ActorId, SourceStats> transitions_;
  std::uint64_t total_transitions_ = 0;
};

}  // namespace peertrack::tracking
