#pragma once
// Trace auditing: anomaly detection over trace-query results.
//
// The paper's motivating applications include counterfeit prevention and
// pilferage reduction (abstract / Section I). Both reduce to analyses of
// the trajectory a trace query returns:
//  * clone detection — the same EPC observed at two sites with less time
//    between captures than any physical transport allows (cloned tags);
//  * gap detection — an object that reappears after an implausibly long
//    silence, or whose chain has missing links (diverted/pilfered goods).
// TraceAuditor packages these checks as a reusable component with explicit,
// tunable physical limits.

#include <string>
#include <vector>

#include "tracking/tracker_node.hpp"

namespace peertrack::tracking {

class TraceAuditor {
 public:
  struct Limits {
    /// Minimum plausible time between captures at *different* sites (the
    /// fastest transport leg in the network).
    moods::Time min_transit_ms = 600'000.0;
    /// Dwell beyond which a visit is suspicious (goods parked off-books).
    /// 0 disables the check.
    moods::Time max_dwell_ms = 0.0;
    /// Silence beyond which a reappearance at a *different* site is
    /// suspicious (goods off the books between two sightings — diversion /
    /// pilferage suspected). 0 disables the check.
    moods::Time max_silence_ms = 0.0;
  };

  enum class AnomalyKind {
    kImpossibleTransit,  ///< Too fast between different sites: clone suspected.
    kExcessiveDwell,     ///< Sat at one site longer than policy allows.
    kMissingLink,        ///< The IOP chain is broken: the walk hit a dead link.
    kSilenceGap,         ///< Reappeared elsewhere after implausible silence.
  };

  struct Anomaly {
    AnomalyKind kind;
    std::size_t step_index = 0;  ///< Index into the trace path (the later step).
    chord::NodeRef site;         ///< Where the anomaly surfaces.
    moods::Time gap_ms = 0.0;    ///< The offending interval.
    std::string Describe() const;
  };

  explicit TraceAuditor(Limits limits) : limits_(limits) {}
  TraceAuditor() : TraceAuditor(Limits{}) {}

  /// Audit one trace result. Returns all anomalies (empty = clean).
  std::vector<Anomaly> Audit(const std::vector<TrackerNode::TraceStep>& path) const;

  /// Audit a full query result: the path checks above, plus kMissingLink
  /// when the walk reported a broken chain (dead link / timed-out step).
  std::vector<Anomaly> Audit(const TrackerNode::TraceResult& result) const;

  /// Convenience verdict.
  bool LooksCloned(const std::vector<TrackerNode::TraceStep>& path) const;

  const Limits& limits() const noexcept { return limits_; }

 private:
  Limits limits_;
};

}  // namespace peertrack::tracking
