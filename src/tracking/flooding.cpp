#include "tracking/flooding.hpp"

#include <algorithm>

namespace peertrack::tracking {

void FloodingQueryEngine::RegisterHandlers(rpc::Dispatcher& dispatcher) {
  server_.Handle<FloodProbe>(
      dispatcher, [this](sim::ActorId, std::unique_ptr<FloodProbe> probe) {
        auto reply = std::make_unique<FloodReply>();
        if (const auto* visits = iop_.VisitsOf(probe->object)) {
          reply->arrivals.reserve(visits->size());
          for (const auto& visit : *visits) reply->arrivals.push_back(visit.arrived);
        }
        return reply;
      });
  rpc_.RouteResponses<FloodReply>(dispatcher);
}

void FloodingQueryEngine::Query(const chord::Key& object, Callback callback) {
  const std::uint64_t query_id = next_query_id_++;
  Pending pending;
  pending.object = object;
  pending.callback = std::move(callback);
  pending.issued_at = network_.simulator().Now();
  if (network_.tracer().Enabled()) {
    pending.span =
        network_.tracer().StartTrace("query.flood", self_.actor, pending.issued_at);
  }
  const obs::TraceContext span = pending.span;

  // Local visits count immediately.
  if (const auto* visits = iop_.VisitsOf(object)) {
    for (const auto& visit : *visits) {
      pending.collected.emplace_back(self_, visit.arrived);
    }
  }
  auto [it, inserted] = pending_.emplace(query_id, std::move(pending));
  (void)inserted;

  std::size_t sent = 0;
  for (const auto& peer : peers_) {
    if (peer.actor == self_.actor) continue;
    auto probe = std::make_unique<FloodProbe>();
    probe->object = object;
    probe->trace = span;
    rpc_.Call<FloodReply>(
        peer.actor, std::move(probe), policy_,
        [this, query_id, peer](rpc::Status status,
                               std::unique_ptr<FloodReply> reply) {
          auto pit = pending_.find(query_id);
          if (pit == pending_.end()) return;
          if (status == rpc::Status::kOk) {
            ++pit->second.messages;
            for (const moods::Time arrived : reply->arrivals) {
              pit->second.collected.emplace_back(peer, arrived);
            }
          }
          OnPeerDone(query_id);
        });
    ++sent;
  }
  // The emplaced entry cannot have been touched yet: every call completes
  // asynchronously (first deadline or delivery is strictly in the future).
  it->second.awaiting = sent;
  it->second.messages = sent;
  if (sent == 0) Finish(query_id);
}

void FloodingQueryEngine::OnPeerDone(std::uint64_t query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  if (it->second.awaiting > 0) --it->second.awaiting;
  if (it->second.awaiting == 0) Finish(query_id);
}

void FloodingQueryEngine::Finish(std::uint64_t query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);

  Result result;
  result.ok = !pending.collected.empty();
  network_.tracer().EndSpan(pending.span, network_.simulator().Now(),
                            result.ok ? "ok" : "not-found");
  network_.metrics().RecordLatency("query.flood_ms",
                                   network_.simulator().Now() - pending.issued_at);
  result.path = std::move(pending.collected);
  std::sort(result.path.begin(), result.path.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  result.issued_at = pending.issued_at;
  result.completed_at = network_.simulator().Now();
  result.messages = pending.messages;
  if (pending.callback) pending.callback(std::move(result));
}

}  // namespace peertrack::tracking
