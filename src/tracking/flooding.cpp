#include "tracking/flooding.hpp"

#include <algorithm>

namespace peertrack::tracking {

void FloodingQueryEngine::Query(const chord::Key& object, Callback callback) {
  const std::uint64_t query_id = next_query_id_++;
  Pending pending;
  pending.object = object;
  pending.callback = std::move(callback);
  pending.issued_at = network_.simulator().Now();

  // Local visits count immediately.
  if (const auto* visits = iop_.VisitsOf(object)) {
    for (const auto& visit : *visits) {
      pending.collected.emplace_back(self_, visit.arrived);
    }
  }

  std::size_t sent = 0;
  for (const auto& peer : peers_) {
    if (peer.actor == self_.actor) continue;
    peer_by_actor_[peer.actor] = peer;
    auto probe = std::make_unique<FloodProbe>();
    probe->query_id = query_id;
    probe->object = object;
    network_.Send(self_.actor, peer.actor, std::move(probe));
    ++sent;
  }
  pending.awaiting = sent;
  pending.messages = sent;
  pending_.emplace(query_id, std::move(pending));
  if (sent == 0) Finish(query_id);
}

void FloodingQueryEngine::HandleProbe(sim::ActorId from, const FloodProbe& probe) {
  auto reply = std::make_unique<FloodReply>();
  reply->query_id = probe.query_id;
  if (const auto* visits = iop_.VisitsOf(probe.object)) {
    reply->arrivals.reserve(visits->size());
    for (const auto& visit : *visits) reply->arrivals.push_back(visit.arrived);
  }
  network_.Send(self_.actor, from, std::move(reply));
}

void FloodingQueryEngine::HandleReply(sim::ActorId from, const FloodReply& reply) {
  const auto it = pending_.find(reply.query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  ++pending.messages;
  const auto peer_it = peer_by_actor_.find(from);
  const chord::NodeRef peer =
      peer_it == peer_by_actor_.end() ? chord::NodeRef{} : peer_it->second;
  for (const moods::Time arrived : reply.arrivals) {
    pending.collected.emplace_back(peer, arrived);
  }
  if (pending.awaiting > 0) --pending.awaiting;
  if (pending.awaiting == 0) Finish(reply.query_id);
}

void FloodingQueryEngine::Finish(std::uint64_t query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);

  Result result;
  result.ok = !pending.collected.empty();
  result.path = std::move(pending.collected);
  std::sort(result.path.begin(), result.path.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  result.issued_at = pending.issued_at;
  result.completed_at = network_.simulator().Now();
  result.messages = pending.messages;
  if (pending.callback) pending.callback(std::move(result));
}

}  // namespace peertrack::tracking
