#pragma once
// Adaptive capture window (paper Section IV-A1, "Group Generation").
//
// Captures are buffered per node; a window closes when Tmax elapses since
// the window opened OR when Nmax objects have accumulated, whichever comes
// first. On close, the buffered captures are grouped by the Lp-bit prefix
// of their hashed ids. Timer scheduling is the owner's job (the window is
// pure state), keeping this class trivially unit-testable.

#include <cstdint>
#include <map>
#include <vector>

#include "hash/keyspace.hpp"
#include "moods/object.hpp"

namespace peertrack::tracking {

class CaptureWindow {
 public:
  struct Limits {
    moods::Time tmax_ms = 1000.0;  ///< Maximum window width.
    std::size_t nmax = 512;        ///< Maximum captures per window.
  };

  explicit CaptureWindow(Limits limits) : limits_(limits) {}

  const Limits& limits() const noexcept { return limits_; }

  /// Buffer a capture. Returns true when the window is now full (Nmax) and
  /// the owner must flush immediately.
  bool Add(const hash::UInt160& object, moods::Time captured_at);

  bool Empty() const noexcept { return buffer_.empty(); }
  std::size_t Size() const noexcept { return buffer_.size(); }

  /// Time the currently-open window opened (first capture).
  moods::Time OpenedAt() const noexcept { return opened_at_; }

  /// Deadline by which the owner must flush (OpenedAt + Tmax).
  moods::Time Deadline() const noexcept { return opened_at_ + limits_.tmax_ms; }

  /// Close the window: group buffered captures by `prefix_length` bits and
  /// reset the buffer. Groups are keyed by prefix in deterministic order.
  std::map<hash::Prefix, std::vector<std::pair<hash::UInt160, moods::Time>>>
  CloseAndGroup(unsigned prefix_length);

  /// Drop everything (node shutdown).
  void Clear() { buffer_.clear(); }

  std::uint64_t WindowsClosed() const noexcept { return windows_closed_; }

 private:
  Limits limits_;
  moods::Time opened_at_ = 0.0;
  std::vector<std::pair<hash::UInt160, moods::Time>> buffer_;
  std::uint64_t windows_closed_ = 0;
};

}  // namespace peertrack::tracking
