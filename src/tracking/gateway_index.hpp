#pragma once
// Gateway-side index storage.
//
// In individual mode a gateway keeps a flat map object -> latest location.
// In group mode a node may be gateway for several prefixes; entries live in
// per-prefix buckets, and the Data-Triangle machinery (paper Section
// IV-A2) moves entries between a bucket, its parent prefix, and its two
// child prefixes. This class is pure storage + selection policy; all
// messaging lives in TrackerNode.

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chord/types.hpp"
#include "hash/keyspace.hpp"
#include "moods/object.hpp"

namespace peertrack::tracking {

/// Latest-state record for one object (the paper's "index").
struct IndexEntry {
  chord::NodeRef latest_node;
  moods::Time latest_arrived = 0.0;
};

/// One prefix gateway's entries.
class PrefixBucket {
 public:
  using EntryMap =
      std::unordered_map<hash::UInt160, IndexEntry, hash::UInt160Hasher>;

  // Find/Upsert are inline: group-mode indexing runs both per object per
  // GroupArrival, and the out-of-line call cost shows up in profiles.
  const IndexEntry* Find(const hash::UInt160& object) const {
    const auto it = entries_.find(object);
    return it == entries_.end() ? nullptr : &it->second;
  }
  void Upsert(const hash::UInt160& object, const IndexEntry& entry) {
    entries_[object] = entry;
  }
  /// Removes and returns the entry if present.
  std::optional<IndexEntry> Extract(const hash::UInt160& object);

  std::size_t Size() const noexcept { return entries_.size(); }
  bool Empty() const noexcept { return entries_.empty(); }
  const EntryMap& Entries() const noexcept { return entries_; }

  /// The `count` entries with the earliest latest_arrived (FIFO delegation
  /// policy, paper Section IV-A2: "the latest records are more likely to be
  /// read and updated in the near future"). Removes them from the bucket.
  std::vector<std::pair<hash::UInt160, IndexEntry>> ExtractEarliest(std::size_t count);

  /// Removes and returns every entry (split/merge migration).
  std::vector<std::pair<hash::UInt160, IndexEntry>> ExtractAll();

 private:
  EntryMap entries_;
};

/// Replicated copy of another gateway's entry, tagged with the prefix of
/// the bucket it came from so a promoted replica lands in the right bucket
/// (length 0 = individual-mode entry; the object key is the gateway key).
struct ReplicaRecord {
  IndexEntry entry;
  hash::Prefix prefix;
};

/// Backup entries a node holds on behalf of preceding gateways (the
/// replication extension, see DESIGN.md §8). Flat by object: a replica
/// answers point lookups and is promoted wholesale on ownership change, so
/// bucket structure would buy nothing.
class ReplicaStore {
 public:
  using RecordMap =
      std::unordered_map<hash::UInt160, ReplicaRecord, hash::UInt160Hasher>;

  const IndexEntry* Find(const hash::UInt160& object) const {
    const auto it = records_.find(object);
    return it == records_.end() ? nullptr : &it->second.entry;
  }
  /// Upsert guarded by freshness: stale updates (older latest_arrived than
  /// what is already held) are ignored. Returns true if stored.
  bool Offer(const hash::UInt160& object, const ReplicaRecord& record) {
    const auto it = records_.find(object);
    if (it != records_.end() &&
        it->second.entry.latest_arrived > record.entry.latest_arrived) {
      return false;
    }
    records_[object] = record;
    return true;
  }
  bool Remove(const hash::UInt160& object) { return records_.erase(object) > 0; }

  std::size_t Size() const noexcept { return records_.size(); }
  bool Empty() const noexcept { return records_.empty(); }
  const RecordMap& Records() const noexcept { return records_; }

  /// Removes and returns every record (graceful-leave handoff).
  std::vector<std::pair<hash::UInt160, ReplicaRecord>> ExtractAll();

 private:
  RecordMap records_;
};

/// All prefix buckets hosted on one node.
class PrefixIndexStore {
 public:
  /// Bucket for `prefix`, created on demand.
  PrefixBucket& BucketFor(const hash::Prefix& prefix) { return buckets_[prefix]; }

  /// Bucket if it exists (no creation).
  PrefixBucket* TryBucket(const hash::Prefix& prefix);
  const PrefixBucket* TryBucket(const hash::Prefix& prefix) const;

  void DropIfEmpty(const hash::Prefix& prefix);

  /// Prefixes of all (non-empty) buckets.
  std::vector<hash::Prefix> Prefixes() const;

  /// Total entries across buckets.
  std::size_t TotalEntries() const;

  bool Empty() const noexcept { return buckets_.empty(); }

 private:
  std::map<hash::Prefix, PrefixBucket> buckets_;
};

}  // namespace peertrack::tracking
