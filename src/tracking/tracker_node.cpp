#include "tracking/tracker_node.hpp"

#include "util/logging.hpp"

namespace peertrack::tracking {

TrackerNode::TrackerNode(chord::ChordNode& chord, PeerDirectory& peers,
                         GlobalPrefixState& global_lp, TrackerConfig config)
    : chord_(chord),
      peers_(peers),
      global_lp_(global_lp),
      config_(config),
      rpc_(chord.network()),
      server_(chord.network()),
      window_(config.window),
      flood_(chord.network(), chord.Self(), iop_),
      ctr_window_flush_(
          chord.network().metrics().registry().GetCounter("track.window_flush")),
      ctr_group_handled_(
          chord.network().metrics().registry().GetCounter("track.group_handled")),
      ctr_stale_arrival_(
          chord.network().metrics().registry().GetCounter("track.stale_arrival")),
      ctr_query_timeout_(
          chord.network().metrics().registry().GetCounter("track.query_timeout")),
      ctr_replica_hit_(
          chord.network().metrics().registry().GetCounter("track.replica_hit")),
      ctr_probe_timeout_(
          chord.network().metrics().registry().GetCounter("track.probe_timeout")),
      ctr_walk_timeout_(
          chord.network().metrics().registry().GetCounter("track.walk_timeout")),
      ctr_replica_promoted_(
          chord.network().metrics().registry().GetCounter("track.replica_promoted")),
      ctr_anti_entropy_(
          chord.network().metrics().registry().GetCounter("track.anti_entropy")),
      ctr_chain_forward_(
          chord.network().metrics().registry().GetCounter("track.iop_chain_forward")) {
  chord_.SetAppHandler(this);
  rpc_.Bind(Self().actor);
  server_.Bind(Self().actor);
  flood_.SetRetryPolicy(config_.rpc);
  RegisterHandlers();
}

void TrackerNode::RegisterHandlers() {
  dispatcher_.On<RoutedEnvelope>(
      [this](sim::ActorId, std::unique_ptr<RoutedEnvelope> envelope) {
        HandleEnvelope(std::move(envelope));
      });
  dispatcher_.On<ObjectArrival>(
      [this](sim::ActorId, std::unique_ptr<ObjectArrival> arrival) {
        HandleObjectArrival(*arrival);
      });
  dispatcher_.On<GroupArrival>(
      [this](sim::ActorId, std::unique_ptr<GroupArrival> arrival) {
        HandleGroupArrival(*arrival);
      });
  dispatcher_.On<IopToUpdate>(
      [this](sim::ActorId, std::unique_ptr<IopToUpdate> update) {
        HandleIopTo(*update);
      });
  dispatcher_.On<IopFromUpdate>(
      [this](sim::ActorId, std::unique_ptr<IopFromUpdate> update) {
        HandleIopFrom(*update);
      });
  dispatcher_.On<ReplicaErase>(
      [this](sim::ActorId, std::unique_ptr<ReplicaErase> erase) {
        HandleReplicaErase(*erase);
      });
  dispatcher_.On<IopRepoint>(
      [this](sim::ActorId, std::unique_ptr<IopRepoint> update) {
        HandleIopRepoint(*update);
      });
  server_.Handle<ReplicaUpdate>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<ReplicaUpdate> update) {
        return HandleReplica(*update);
      });
  server_.Handle<TraceProbe>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<TraceProbe> probe) {
        return HandleProbe(*probe);
      });
  server_.Handle<IopWalkRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<IopWalkRequest> request) {
        return HandleWalkRequest(*request);
      });
  rpc_.RouteResponses<TraceProbeReply>(dispatcher_);
  rpc_.RouteResponses<IopWalkResponse>(dispatcher_);
  rpc_.RouteResponses<ReplicaAck>(dispatcher_);
  flood_.RegisterHandlers(dispatcher_);
}

moods::Receptor& TrackerNode::AddReceptor(std::string name) {
  receptors_.push_back(std::make_unique<moods::Receptor>(
      std::move(name),
      [this](const moods::Object& object, moods::Time at) { OnCapture(object, at); }));
  return *receptors_.back();
}

// --- Capture path ---------------------------------------------------------

void TrackerNode::OnCapture(const moods::Object& object, moods::Time at) {
  OnCapture(object.Key(), at);
}

void TrackerNode::OnCapture(const hash::UInt160& object_key, moods::Time at) {
  iop_.RecordArrival(object_key, at);
  if (config_.mode == IndexingMode::kIndividual) {
    IndexIndividually(object_key, at);
  } else {
    BufferForGroupIndexing(object_key, at);
  }
}

void TrackerNode::IndexIndividually(const hash::UInt160& object, moods::Time at) {
  auto report = std::make_unique<ObjectArrival>();
  report->object = object;
  report->at = Self();
  report->arrived = at;
  obs::Tracer& tracer = chord_.network().tracer();
  if (tracer.Enabled()) {
    // Zero-length root marker: the id rides the M1 → M2/M3/replica chain,
    // so the one-way indexing fan-out reconstructs as one causal trace.
    const double now = chord_.network().simulator().Now();
    report->trace = tracer.StartTrace("index.m1", Self().actor, now);
    tracer.EndSpan(report->trace, now);
  }
  RoutedSend(object, std::move(report));
}

void TrackerNode::BufferForGroupIndexing(const hash::UInt160& object, moods::Time at) {
  const bool was_empty = window_.Empty();
  const bool full = window_.Add(object, at);
  if (full) {
    FlushWindow();
  } else if (was_empty) {
    ArmWindowTimer();
  }
}

void TrackerNode::ArmWindowTimer() {
  const std::uint64_t generation = window_generation_;
  window_timer_ = chord_.network().simulator().ScheduleAt(
      window_.Deadline(), [this, generation] {
        if (generation == window_generation_ && !window_.Empty()) FlushWindow();
      });
}

void TrackerNode::FlushWindow() {
  if (window_.Empty()) return;
  ++window_generation_;
  window_timer_.Cancel();
  auto groups = window_.CloseAndGroup(CurrentLp());
  ctr_window_flush_.Add();
  obs::Tracer& tracer = chord_.network().tracer();
  for (auto& [prefix, members] : groups) {
    auto report = std::make_unique<GroupArrival>();
    report->prefix = prefix;
    report->at = Self();
    report->objects = std::move(members);
    if (tracer.Enabled()) {
      const double now = chord_.network().simulator().Now();
      report->trace = tracer.StartTrace("index.m1", Self().actor, now);
      tracer.EndSpan(report->trace, now);
    }
    RoutedSend(hash::GroupKey(prefix), std::move(report));
  }
}

// --- DHT-routed delivery ----------------------------------------------------

void TrackerNode::RoutedSend(const chord::Key& target,
                             std::unique_ptr<sim::Message> inner) {
  if (chord_.Owns(target)) {
    DispatchInner(std::move(inner));
    return;
  }
  auto envelope = std::make_unique<RoutedEnvelope>();
  envelope->target = target;
  envelope->trace = inner->trace;
  envelope->inner = std::move(inner);
  const auto step = chord_.NextRouteStep(target);
  chord_.network().Send(Self().actor, step.node.actor, std::move(envelope));
}

void TrackerNode::HandleEnvelope(std::unique_ptr<RoutedEnvelope> envelope) {
  if (chord_.Owns(envelope->target)) {
    DispatchInner(std::move(envelope->inner));
    return;
  }
  const auto step = chord_.NextRouteStep(envelope->target);
  if (step.node.actor == Self().actor) {
    // Routing dead-end (immature tables): deliver here rather than loop.
    DispatchInner(std::move(envelope->inner));
    return;
  }
  chord_.network().Send(Self().actor, step.node.actor, std::move(envelope));
}

void TrackerNode::DispatchInner(std::unique_ptr<sim::Message> inner) {
  // Unwrapped envelope payloads (ObjectArrival / GroupArrival) reuse the
  // same typed dispatch table as direct deliveries.
  if (dispatcher_.Dispatch(Self().actor, inner)) return;
  util::LogWarn("tracker {}: unexpected routed payload {}", Self().Describe(),
                inner->TypeName());
}

// --- Gateway handlers -------------------------------------------------------

void TrackerNode::HandleObjectArrival(const ObjectArrival& arrival) {
  ++objects_indexed_;
  const obs::ScopedLogTrace log_scope(arrival.trace);
  const IndexEntry* previous = individual_.Find(arrival.object);

  auto m3 = std::make_unique<IopFromUpdate>();
  m3->trace = arrival.trace;
  IopFromUpdate::Item item;
  item.object = arrival.object;
  item.arrived = arrival.arrived;
  if (previous != nullptr && previous->latest_arrived <= arrival.arrived) {
    item.from = previous->latest_node;
    item.from_arrived = previous->latest_arrived;
    auto m2 = std::make_unique<IopToUpdate>();
    m2->trace = arrival.trace;
    m2->items.push_back({arrival.object, arrival.at, arrival.arrived});
    chord_.network().Send(Self().actor, previous->latest_node.actor, std::move(m2));
  } else if (previous != nullptr) {
    // Report older than the index: cross-node reordering. Linking it into
    // the middle of the list is ambiguous from latest-only state; record
    // the anomaly and treat it as a first appearance for IOP purposes.
    ctr_stale_arrival_.Add();
  }
  m3->items.push_back(item);
  chord_.network().Send(Self().actor, arrival.at.actor, std::move(m3));

  if (previous == nullptr || previous->latest_arrived <= arrival.arrived) {
    individual_.Upsert(arrival.object, IndexEntry{arrival.at, arrival.arrived});
    if (config_.replicate_index) {
      ReplicateEntries(
          {{arrival.object, arrival.at, arrival.arrived, hash::Prefix{}}},
          arrival.trace);
    }
  }
}

void TrackerNode::HandleGroupArrival(const GroupArrival& arrival) {
  objects_indexed_ += arrival.objects.size();
  const obs::ScopedLogTrace log_scope(arrival.trace);
  ctr_group_handled_.Add();
  PrefixBucket& bucket = store_.BucketFor(arrival.prefix);

  // Figure 5, `index`: objects with no local record are refreshed from
  // ascents and descents before the index is updated.
  if (config_.enable_triangle) {
    std::vector<hash::UInt160> unknown;
    for (const auto& [object, _] : arrival.objects) {
      if (bucket.Find(object) == nullptr) unknown.push_back(object);
    }
    if (!unknown.empty()) {
      if (config_.always_refresh_ascent) {
        RefreshFromAscent(unknown, arrival.prefix, bucket);
      }
      if (!unknown.empty() && delegated_children_.contains(arrival.prefix)) {
        RefreshFromDescent(unknown, arrival.prefix, bucket, 0);
      }
    }
  }

  // Figure 5, `update_index` + the batched M2/M3 exchange: one IopToUpdate
  // per distinct previous node, one IopFromUpdate back to the capturer.
  auto m3 = std::make_unique<IopFromUpdate>();
  m3->trace = arrival.trace;
  std::map<sim::ActorId, std::unique_ptr<IopToUpdate>> m2_batches;
  for (const auto& [object, arrived] : arrival.objects) {
    const IndexEntry* previous = bucket.Find(object);
    IopFromUpdate::Item item;
    item.object = object;
    item.arrived = arrived;
    if (previous != nullptr && previous->latest_arrived <= arrived) {
      item.from = previous->latest_node;
      item.from_arrived = previous->latest_arrived;
      auto& batch = m2_batches[previous->latest_node.actor];
      if (!batch) {
        batch = std::make_unique<IopToUpdate>();
        batch->trace = arrival.trace;
      }
      batch->items.push_back({object, arrival.at, arrived});
    } else if (previous != nullptr) {
      ctr_stale_arrival_.Add();
    }
    m3->items.push_back(item);
    if (previous == nullptr || previous->latest_arrived <= arrived) {
      bucket.Upsert(object, IndexEntry{arrival.at, arrived});
    }
  }
  for (auto& [actor, batch] : m2_batches) {
    chord_.network().Send(Self().actor, actor, std::move(batch));
  }
  chord_.network().Send(Self().actor, arrival.at.actor, std::move(m3));

  if (config_.replicate_index) {
    std::vector<ReplicaUpdate::Item> items;
    items.reserve(arrival.objects.size());
    for (const auto& [object, arrived] : arrival.objects) {
      if (const IndexEntry* entry = bucket.Find(object)) {
        items.push_back(
            {object, entry->latest_node, entry->latest_arrived, arrival.prefix});
      }
    }
    ReplicateEntries(items, arrival.trace);
  }

  if (config_.enable_triangle) MaybeDelegate(arrival.prefix, bucket);
}

std::vector<chord::NodeRef> TrackerNode::ReplicaTargets() const {
  std::vector<chord::NodeRef> targets;
  for (const chord::NodeRef& node : chord_.successors().Entries()) {
    if (node.actor == Self().actor) continue;
    bool seen = false;
    for (const auto& existing : targets) {
      if (existing.actor == node.actor) { seen = true; break; }
    }
    if (seen) continue;
    targets.push_back(node);
    if (targets.size() >= config_.replication_factor) break;
  }
  return targets;
}

void TrackerNode::ReplicateEntries(const std::vector<ReplicaUpdate::Item>& items,
                                   const obs::TraceContext& ctx) {
  if (items.empty() || !config_.replicate_index) return;
  for (const chord::NodeRef& target : ReplicaTargets()) {
    auto update = std::make_unique<ReplicaUpdate>();
    update->items = items;
    update->trace = ctx;
    // Losing a push would silently orphan the replica until the next
    // anti-entropy round, so it retries; a target that stays dead is
    // handled by chord maintenance, not here.
    rpc_.Call<ReplicaAck>(target.actor, std::move(update), config_.rpc,
                          [](rpc::Status, std::unique_ptr<ReplicaAck>) {});
  }
}

std::unique_ptr<ReplicaAck> TrackerNode::HandleReplica(const ReplicaUpdate& update) {
  for (const auto& item : update.items) {
    replica_.Offer(item.object,
                   ReplicaRecord{IndexEntry{item.latest_node, item.latest_arrived},
                                 item.prefix});
  }
  return std::make_unique<ReplicaAck>();
}

void TrackerNode::HandleReplicaErase(const ReplicaErase& erase) {
  for (const auto& object : erase.objects) replica_.Remove(object);
}

void TrackerNode::SendReplicaErase(std::vector<hash::UInt160> objects) {
  if (objects.empty() || !config_.replicate_index) return;
  for (const chord::NodeRef& target : ReplicaTargets()) {
    auto erase = std::make_unique<ReplicaErase>();
    erase->objects = objects;
    chord_.network().Send(Self().actor, target.actor, std::move(erase));
  }
}

void TrackerNode::HandleIopRepoint(const IopRepoint& update) {
  for (const auto& item : update.items) {
    iop_.RepointLink(item.object, item.arrived, item.fix_to, item.new_node);
  }
}

void TrackerNode::HandleIopTo(const IopToUpdate& update) {
  for (const auto& item : update.items) {
    const moods::Visit* visit =
        iop_.DepartingVisit(item.object, item.to_arrived);
    if (visit != nullptr && visit->to.has_value() &&
        visit->to_arrived.has_value() &&
        *visit->to_arrived != item.to_arrived) {
      // The gateway named this node as the object's previous stop, but the
      // local chain already continues elsewhere — its index entry was
      // stale (e.g. resurrected from an old replica after a crash).
      // Overwriting would orphan the rest of the chain; instead the link
      // walks forward until the true tail accepts it and re-announces
      // itself to the capturer.
      if (*visit->to_arrived < item.to_arrived) {
        auto forward = std::make_unique<IopToUpdate>();
        forward->reannounce = true;
        forward->items.push_back(item);
        ctr_chain_forward_.Add();
        chord_.network().Send(Self().actor, visit->to->actor,
                              std::move(forward));
        // Repoint the capturer at this hop's successor right away: if the
        // chain dead-ends at a crashed node further on, the from-link still
        // converges to the deepest reachable hop (the monotonic guard in
        // HandleIopFrom keeps later, deeper corrections from being undone).
        auto correction = std::make_unique<IopFromUpdate>();
        correction->reannounce = true;
        correction->items.push_back(
            {item.object, item.to_arrived, *visit->to, *visit->to_arrived});
        chord_.network().Send(Self().actor, item.to.actor,
                              std::move(correction));
        continue;
      }
      // The new link precedes the known successor: splice it in here and
      // push the old successor one hop down the chain (its from-link gets
      // re-announced by whoever accepts the forwarded M2).
      auto forward = std::make_unique<IopToUpdate>();
      forward->reannounce = true;
      forward->items.push_back({item.object, *visit->to, *visit->to_arrived});
      ctr_chain_forward_.Add();
      chord_.network().Send(Self().actor, item.to.actor, std::move(forward));
    }
    iop_.SetTo(item.object, item.to, item.to_arrived);
    if (update.reannounce && visit != nullptr) {
      // This node turned out to be the true predecessor of the forwarded
      // link; the capturer's from-link (set from the stale index) must be
      // rewritten to point here.
      auto m3 = std::make_unique<IopFromUpdate>();
      m3->reannounce = true;
      m3->items.push_back(
          {item.object, item.to_arrived, Self(), visit->arrived});
      chord_.network().Send(Self().actor, item.to.actor, std::move(m3));
    }
  }
}

void TrackerNode::HandleIopFrom(const IopFromUpdate& update) {
  for (const auto& item : update.items) {
    if (update.reannounce) {
      // Chain-repair corrections only ever move a from-link deeper along
      // the chain; a straggler naming an earlier predecessor must not undo
      // a better correction that already landed.
      const moods::Visit* visit = iop_.VisitAt(item.object, item.arrived);
      if (visit != nullptr && visit->from_arrived.has_value() &&
          *visit->from_arrived >= item.from_arrived) {
        continue;
      }
    }
    iop_.SetFrom(item.object, item.arrived,
                 item.from.Valid() ? item.from : chord::NodeRef{},
                 item.from.Valid() ? std::optional<moods::Time>(item.from_arrived)
                                   : std::nullopt);
  }
}

// --- Replica promotion & anti-entropy ----------------------------------------

void TrackerNode::PromoteOwnedReplicas() {
  // Without a predecessor Owns() claims the whole ring, which would promote
  // every replica this node holds; wait for stabilization to set one.
  if (!chord_.Predecessor().has_value()) return;
  std::vector<std::pair<hash::UInt160, ReplicaRecord>> promote;
  for (const auto& [object, record] : replica_.Records()) {
    const chord::Key key =
        record.prefix.length == 0 ? object : hash::GroupKey(record.prefix);
    if (chord_.Owns(key)) promote.emplace_back(object, record);
  }
  if (promote.empty()) return;
  std::vector<std::pair<hash::UInt160, IndexEntry>> individual;
  std::map<hash::Prefix, std::vector<std::pair<hash::UInt160, IndexEntry>>> grouped;
  for (auto& [object, record] : promote) {
    replica_.Remove(object);
    ctr_replica_promoted_.Add();
    if (record.prefix.length == 0) {
      individual.emplace_back(object, record.entry);
    } else {
      grouped[record.prefix].emplace_back(object, record.entry);
    }
  }
  // Promotion goes through the standard accept paths so entries normalize
  // to the current triangle shape (and re-replicate at this node's own
  // successors).
  if (!individual.empty()) AcceptIndividualEntries(std::move(individual));
  for (auto& [prefix, entries] : grouped) {
    AcceptEntries(prefix, std::move(entries));
  }
}

void TrackerNode::ScheduleAntiEntropy() {
  if (anti_entropy_scheduled_) return;
  anti_entropy_scheduled_ = true;
  auto& simulator = chord_.network().simulator();
  anti_entropy_timer_ = simulator.ScheduleAt(
      simulator.Now() + config_.anti_entropy_delay_ms, [this] {
        anti_entropy_scheduled_ = false;
        if (chord_.Alive() && !leaving_) RunAntiEntropy();
      });
}

void TrackerNode::RunAntiEntropy() {
  std::vector<ReplicaUpdate::Item> items;
  items.reserve(individual_.Size() + store_.TotalEntries());
  for (const auto& [object, entry] : individual_.Entries()) {
    items.push_back({object, entry.latest_node, entry.latest_arrived, hash::Prefix{}});
  }
  for (const auto& prefix : store_.Prefixes()) {
    const PrefixBucket* bucket = store_.TryBucket(prefix);
    for (const auto& [object, entry] : bucket->Entries()) {
      items.push_back({object, entry.latest_node, entry.latest_arrived, prefix});
    }
  }
  if (items.empty()) return;
  ctr_anti_entropy_.Add();
  ReplicateEntries(items, obs::TraceContext{});
}

// --- Graceful departure -------------------------------------------------------

TrackerNode::LeaveSummary TrackerNode::BeginLeave() {
  LeaveSummary summary;
  if (leaving_ || !chord_.Alive()) return summary;
  leaving_ = true;
  summary.left = true;
  FlushWindow();
  const chord::NodeRef successor = chord_.Successor();
  summary.successor = successor;
  if (successor.actor == Self().actor) {
    // Last node standing: nobody to hand state to.
    chord_.Leave();
    left_gracefully_ = true;
    return summary;
  }
  TrackerNode* heir = peers_.TrackerByActor(successor.actor);
  const double now = chord_.network().simulator().Now();
  if (heir != nullptr) {
    // Recapture every on-premise object at the heir: the gateway index
    // moves to a live node through the ordinary M1 path, and the resulting
    // M2 extends this node's IOP chain toward the heir while this node can
    // still receive it (hence the settle delay before FinishLeave).
    const auto inventory = iop_.InventoryAt(now);
    summary.rehomed = inventory.size();
    if (!inventory.empty()) {
      ChargeRpc("track.rehome", inventory.size() * 20, "track.rehome_ack", 8,
                successor.actor);
      for (const auto& object : inventory) heir->OnCapture(object, now);
    }
  }
  leave_timer_ = chord_.network().simulator().ScheduleAt(
      now + config_.leave_settle_ms, [this] { FinishLeave(); });
  return summary;
}

void TrackerNode::FinishLeave() {
  if (!chord_.Alive()) return;  // Crashed mid-leave; nothing left to hand off.
  FlushWindow();
  const chord::NodeRef successor = chord_.Successor();
  TrackerNode* heir =
      successor.actor == Self().actor ? nullptr : peers_.TrackerByActor(successor.actor);
  if (heir == nullptr || heir == this) {
    chord_.Leave();
    left_gracefully_ = true;
    return;
  }

  // Re-announce IOP links: every neighbour holding a link at this node is
  // told to point it at the heir, where the records are about to live.
  std::map<sim::ActorId, std::unique_ptr<IopRepoint>> batches;
  iop_.ForEachObject([&](const hash::UInt160& object,
                         const std::vector<moods::Visit>& visits) {
    for (const moods::Visit& visit : visits) {
      if (visit.from.has_value() && visit.from->Valid() &&
          visit.from->actor != Self().actor && visit.from_arrived.has_value()) {
        auto& batch = batches[visit.from->actor];
        if (!batch) batch = std::make_unique<IopRepoint>();
        batch->items.push_back(
            {object, *visit.from_arrived, /*fix_to=*/true, successor});
      }
      if (visit.to.has_value() && visit.to->Valid() &&
          visit.to->actor != Self().actor && visit.to_arrived.has_value()) {
        auto& batch = batches[visit.to->actor];
        if (!batch) batch = std::make_unique<IopRepoint>();
        batch->items.push_back(
            {object, *visit.to_arrived, /*fix_to=*/false, successor});
      }
    }
  });
  for (auto& [actor, batch] : batches) {
    chord_.network().Send(Self().actor, actor, std::move(batch));
  }

  // Self-links (revisits) follow the records to the heir.
  iop_.RepointNode(Self().actor, successor);
  auto records = iop_.ExtractAll();
  if (!records.empty()) {
    std::size_t visit_count = 0;
    for (const auto& [object, visits] : records) visit_count += visits.size();
    ChargeRpc("track.iop_handoff",
              visit_count * moods::IopStore::kVisitWireBytes,
              "track.iop_handoff_ack", 8, successor.actor);
    heir->AdoptIopRecords(std::move(records));
  }
  if (!delegated_children_.empty()) {
    heir->AdoptDelegationMarkers(delegated_children_);
  }
  if (!replica_.Empty()) {
    auto replicas = replica_.ExtractAll();
    ChargeRpc("track.replica_handoff", replicas.size() * (20 + 32 + 9),
              "track.replica_handoff_ack", 8, successor.actor);
    heir->AdoptReplicaRecords(std::move(replicas));
  }

  // Chord leave migrates the gateway index (OnRangeTransfer) and notifies
  // ring neighbours before going down.
  chord_.Leave();
  left_gracefully_ = true;
}

void TrackerNode::AdoptIopRecords(
    std::vector<std::pair<hash::UInt160, std::vector<moods::Visit>>> records) {
  for (auto& [object, visits] : records) iop_.AdoptVisits(object, visits);
}

void TrackerNode::AdoptDelegationMarkers(const std::set<hash::Prefix>& prefixes) {
  delegated_children_.insert(prefixes.begin(), prefixes.end());
}

void TrackerNode::AdoptReplicaRecords(
    std::vector<std::pair<hash::UInt160, ReplicaRecord>> records) {
  for (auto& [object, record] : records) replica_.Offer(object, record);
  if (config_.replicate_index) PromoteOwnedReplicas();
}

// --- AppHandler --------------------------------------------------------------

void TrackerNode::OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  if (dispatcher_.Dispatch(from, message)) return;
  util::LogWarn("tracker {}: unhandled app message {}", Self().Describe(),
                message->TypeName());
}

void TrackerNode::OnRangeTransfer(const chord::Key& lo, const chord::Key& hi,
                                  const chord::NodeRef& new_owner) {
  TrackerNode* peer = peers_.TrackerByActor(new_owner.actor);
  if (peer == nullptr || peer == this) return;

  // Individual-mode entries keyed in (lo, hi] move to the new owner.
  std::vector<std::pair<hash::UInt160, IndexEntry>> moving;
  for (const auto& [object, entry] : individual_.Entries()) {
    if (object.InHalfOpenLoHi(lo, hi)) moving.emplace_back(object, entry);
  }
  for (const auto& [object, _] : moving) individual_.Extract(object);
  if (!moving.empty()) {
    ChargeRpc("track.migrate", moving.size() * 52, "track.migrate_ack", 8,
              new_owner.actor);
    peer->AcceptIndividualEntries(std::move(moving));
  }

  // Prefix buckets whose gateway key falls in (lo, hi] move wholesale.
  for (const auto& prefix : store_.Prefixes()) {
    if (hash::GroupKey(prefix).InHalfOpenLoHi(lo, hi)) {
      auto* bucket = store_.TryBucket(prefix);
      auto entries = bucket->ExtractAll();
      store_.DropIfEmpty(prefix);
      if (!entries.empty()) {
        ChargeRpc("track.migrate", entries.size() * 52, "track.migrate_ack", 8,
                  new_owner.actor);
        peer->AcceptEntries(prefix, std::move(entries));
      }
    }
  }
}

void TrackerNode::OnNeighborhoodChanged() {
  if (!config_.replicate_index || leaving_ || !chord_.Alive()) return;
  // A predecessor change may have made this node the owner of keys whose
  // replicas it holds (the previous owner crashed or was scrubbed);
  // a successor-set change means the index may be mirrored at nodes that
  // no longer inherit it. Promote synchronously, re-push debounced.
  PromoteOwnedReplicas();
  ScheduleAntiEntropy();
}

void TrackerNode::AcceptIndividualEntries(
    std::vector<std::pair<hash::UInt160, IndexEntry>> entries) {
  std::vector<ReplicaUpdate::Item> accepted;
  for (auto& [object, entry] : entries) {
    const IndexEntry* existing = individual_.Find(object);
    if (existing == nullptr || existing->latest_arrived < entry.latest_arrived) {
      individual_.Upsert(object, entry);
      if (config_.replicate_index) {
        accepted.push_back(
            {object, entry.latest_node, entry.latest_arrived, hash::Prefix{}});
      }
    }
  }
  ReplicateEntries(accepted, obs::TraceContext{});
}

}  // namespace peertrack::tracking
