#include "tracking/tracker_node.hpp"

#include "util/logging.hpp"

namespace peertrack::tracking {

TrackerNode::TrackerNode(chord::ChordNode& chord, PeerDirectory& peers,
                         GlobalPrefixState& global_lp, TrackerConfig config)
    : chord_(chord),
      peers_(peers),
      global_lp_(global_lp),
      config_(config),
      rpc_(chord.network()),
      server_(chord.network()),
      window_(config.window),
      flood_(chord.network(), chord.Self(), iop_),
      ctr_window_flush_(
          chord.network().metrics().registry().GetCounter("track.window_flush")),
      ctr_group_handled_(
          chord.network().metrics().registry().GetCounter("track.group_handled")),
      ctr_stale_arrival_(
          chord.network().metrics().registry().GetCounter("track.stale_arrival")),
      ctr_query_timeout_(
          chord.network().metrics().registry().GetCounter("track.query_timeout")),
      ctr_replica_hit_(
          chord.network().metrics().registry().GetCounter("track.replica_hit")),
      ctr_probe_timeout_(
          chord.network().metrics().registry().GetCounter("track.probe_timeout")),
      ctr_walk_timeout_(
          chord.network().metrics().registry().GetCounter("track.walk_timeout")) {
  chord_.SetAppHandler(this);
  rpc_.Bind(Self().actor);
  server_.Bind(Self().actor);
  flood_.SetRetryPolicy(config_.rpc);
  RegisterHandlers();
}

void TrackerNode::RegisterHandlers() {
  dispatcher_.On<RoutedEnvelope>(
      [this](sim::ActorId, std::unique_ptr<RoutedEnvelope> envelope) {
        HandleEnvelope(std::move(envelope));
      });
  dispatcher_.On<ObjectArrival>(
      [this](sim::ActorId, std::unique_ptr<ObjectArrival> arrival) {
        HandleObjectArrival(*arrival);
      });
  dispatcher_.On<GroupArrival>(
      [this](sim::ActorId, std::unique_ptr<GroupArrival> arrival) {
        HandleGroupArrival(*arrival);
      });
  dispatcher_.On<IopToUpdate>(
      [this](sim::ActorId, std::unique_ptr<IopToUpdate> update) {
        HandleIopTo(*update);
      });
  dispatcher_.On<IopFromUpdate>(
      [this](sim::ActorId, std::unique_ptr<IopFromUpdate> update) {
        HandleIopFrom(*update);
      });
  dispatcher_.On<ReplicaUpdate>(
      [this](sim::ActorId, std::unique_ptr<ReplicaUpdate> update) {
        HandleReplica(*update);
      });
  server_.Handle<TraceProbe>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<TraceProbe> probe) {
        return HandleProbe(*probe);
      });
  server_.Handle<IopWalkRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<IopWalkRequest> request) {
        return HandleWalkRequest(*request);
      });
  rpc_.RouteResponses<TraceProbeReply>(dispatcher_);
  rpc_.RouteResponses<IopWalkResponse>(dispatcher_);
  flood_.RegisterHandlers(dispatcher_);
}

moods::Receptor& TrackerNode::AddReceptor(std::string name) {
  receptors_.push_back(std::make_unique<moods::Receptor>(
      std::move(name),
      [this](const moods::Object& object, moods::Time at) { OnCapture(object, at); }));
  return *receptors_.back();
}

// --- Capture path ---------------------------------------------------------

void TrackerNode::OnCapture(const moods::Object& object, moods::Time at) {
  OnCapture(object.Key(), at);
}

void TrackerNode::OnCapture(const hash::UInt160& object_key, moods::Time at) {
  iop_.RecordArrival(object_key, at);
  if (config_.mode == IndexingMode::kIndividual) {
    IndexIndividually(object_key, at);
  } else {
    BufferForGroupIndexing(object_key, at);
  }
}

void TrackerNode::IndexIndividually(const hash::UInt160& object, moods::Time at) {
  auto report = std::make_unique<ObjectArrival>();
  report->object = object;
  report->at = Self();
  report->arrived = at;
  obs::Tracer& tracer = chord_.network().tracer();
  if (tracer.Enabled()) {
    // Zero-length root marker: the id rides the M1 → M2/M3/replica chain,
    // so the one-way indexing fan-out reconstructs as one causal trace.
    const double now = chord_.network().simulator().Now();
    report->trace = tracer.StartTrace("index.m1", Self().actor, now);
    tracer.EndSpan(report->trace, now);
  }
  RoutedSend(object, std::move(report));
}

void TrackerNode::BufferForGroupIndexing(const hash::UInt160& object, moods::Time at) {
  const bool was_empty = window_.Empty();
  const bool full = window_.Add(object, at);
  if (full) {
    FlushWindow();
  } else if (was_empty) {
    ArmWindowTimer();
  }
}

void TrackerNode::ArmWindowTimer() {
  const std::uint64_t generation = window_generation_;
  window_timer_ = chord_.network().simulator().ScheduleAt(
      window_.Deadline(), [this, generation] {
        if (generation == window_generation_ && !window_.Empty()) FlushWindow();
      });
}

void TrackerNode::FlushWindow() {
  if (window_.Empty()) return;
  ++window_generation_;
  window_timer_.Cancel();
  auto groups = window_.CloseAndGroup(CurrentLp());
  ctr_window_flush_.Add();
  obs::Tracer& tracer = chord_.network().tracer();
  for (auto& [prefix, members] : groups) {
    auto report = std::make_unique<GroupArrival>();
    report->prefix = prefix;
    report->at = Self();
    report->objects = std::move(members);
    if (tracer.Enabled()) {
      const double now = chord_.network().simulator().Now();
      report->trace = tracer.StartTrace("index.m1", Self().actor, now);
      tracer.EndSpan(report->trace, now);
    }
    RoutedSend(hash::GroupKey(prefix), std::move(report));
  }
}

// --- DHT-routed delivery ----------------------------------------------------

void TrackerNode::RoutedSend(const chord::Key& target,
                             std::unique_ptr<sim::Message> inner) {
  if (chord_.Owns(target)) {
    DispatchInner(std::move(inner));
    return;
  }
  auto envelope = std::make_unique<RoutedEnvelope>();
  envelope->target = target;
  envelope->trace = inner->trace;
  envelope->inner = std::move(inner);
  const auto step = chord_.NextRouteStep(target);
  chord_.network().Send(Self().actor, step.node.actor, std::move(envelope));
}

void TrackerNode::HandleEnvelope(std::unique_ptr<RoutedEnvelope> envelope) {
  if (chord_.Owns(envelope->target)) {
    DispatchInner(std::move(envelope->inner));
    return;
  }
  const auto step = chord_.NextRouteStep(envelope->target);
  if (step.node.actor == Self().actor) {
    // Routing dead-end (immature tables): deliver here rather than loop.
    DispatchInner(std::move(envelope->inner));
    return;
  }
  chord_.network().Send(Self().actor, step.node.actor, std::move(envelope));
}

void TrackerNode::DispatchInner(std::unique_ptr<sim::Message> inner) {
  // Unwrapped envelope payloads (ObjectArrival / GroupArrival) reuse the
  // same typed dispatch table as direct deliveries.
  if (dispatcher_.Dispatch(Self().actor, inner)) return;
  util::LogWarn("tracker {}: unexpected routed payload {}", Self().Describe(),
                inner->TypeName());
}

// --- Gateway handlers -------------------------------------------------------

void TrackerNode::HandleObjectArrival(const ObjectArrival& arrival) {
  ++objects_indexed_;
  const obs::ScopedLogTrace log_scope(arrival.trace);
  const IndexEntry* previous = individual_.Find(arrival.object);

  auto m3 = std::make_unique<IopFromUpdate>();
  m3->trace = arrival.trace;
  IopFromUpdate::Item item;
  item.object = arrival.object;
  item.arrived = arrival.arrived;
  if (previous != nullptr && previous->latest_arrived <= arrival.arrived) {
    item.from = previous->latest_node;
    item.from_arrived = previous->latest_arrived;
    auto m2 = std::make_unique<IopToUpdate>();
    m2->trace = arrival.trace;
    m2->items.push_back({arrival.object, arrival.at, arrival.arrived});
    chord_.network().Send(Self().actor, previous->latest_node.actor, std::move(m2));
  } else if (previous != nullptr) {
    // Report older than the index: cross-node reordering. Linking it into
    // the middle of the list is ambiguous from latest-only state; record
    // the anomaly and treat it as a first appearance for IOP purposes.
    ctr_stale_arrival_.Add();
  }
  m3->items.push_back(item);
  chord_.network().Send(Self().actor, arrival.at.actor, std::move(m3));

  if (previous == nullptr || previous->latest_arrived <= arrival.arrived) {
    individual_.Upsert(arrival.object, IndexEntry{arrival.at, arrival.arrived});
    if (config_.replicate_index) {
      ReplicateEntries({{arrival.object, arrival.at, arrival.arrived}},
                       arrival.trace);
    }
  }
}

void TrackerNode::HandleGroupArrival(const GroupArrival& arrival) {
  objects_indexed_ += arrival.objects.size();
  const obs::ScopedLogTrace log_scope(arrival.trace);
  ctr_group_handled_.Add();
  PrefixBucket& bucket = store_.BucketFor(arrival.prefix);

  // Figure 5, `index`: objects with no local record are refreshed from
  // ascents and descents before the index is updated.
  if (config_.enable_triangle) {
    std::vector<hash::UInt160> unknown;
    for (const auto& [object, _] : arrival.objects) {
      if (bucket.Find(object) == nullptr) unknown.push_back(object);
    }
    if (!unknown.empty()) {
      if (config_.always_refresh_ascent) {
        RefreshFromAscent(unknown, arrival.prefix, bucket);
      }
      if (!unknown.empty() && delegated_children_.contains(arrival.prefix)) {
        RefreshFromDescent(unknown, arrival.prefix, bucket, 0);
      }
    }
  }

  // Figure 5, `update_index` + the batched M2/M3 exchange: one IopToUpdate
  // per distinct previous node, one IopFromUpdate back to the capturer.
  auto m3 = std::make_unique<IopFromUpdate>();
  m3->trace = arrival.trace;
  std::map<sim::ActorId, std::unique_ptr<IopToUpdate>> m2_batches;
  for (const auto& [object, arrived] : arrival.objects) {
    const IndexEntry* previous = bucket.Find(object);
    IopFromUpdate::Item item;
    item.object = object;
    item.arrived = arrived;
    if (previous != nullptr && previous->latest_arrived <= arrived) {
      item.from = previous->latest_node;
      item.from_arrived = previous->latest_arrived;
      auto& batch = m2_batches[previous->latest_node.actor];
      if (!batch) {
        batch = std::make_unique<IopToUpdate>();
        batch->trace = arrival.trace;
      }
      batch->items.push_back({object, arrival.at, arrived});
    } else if (previous != nullptr) {
      ctr_stale_arrival_.Add();
    }
    m3->items.push_back(item);
    if (previous == nullptr || previous->latest_arrived <= arrived) {
      bucket.Upsert(object, IndexEntry{arrival.at, arrived});
    }
  }
  for (auto& [actor, batch] : m2_batches) {
    chord_.network().Send(Self().actor, actor, std::move(batch));
  }
  chord_.network().Send(Self().actor, arrival.at.actor, std::move(m3));

  if (config_.replicate_index) {
    std::vector<ReplicaUpdate::Item> items;
    items.reserve(arrival.objects.size());
    for (const auto& [object, arrived] : arrival.objects) {
      if (const IndexEntry* entry = bucket.Find(object)) {
        items.push_back({object, entry->latest_node, entry->latest_arrived});
      }
    }
    ReplicateEntries(items, arrival.trace);
  }

  if (config_.enable_triangle) MaybeDelegate(arrival.prefix, bucket);
}

void TrackerNode::ReplicateEntries(const std::vector<ReplicaUpdate::Item>& items,
                                   const obs::TraceContext& ctx) {
  if (items.empty()) return;
  const chord::NodeRef successor = chord_.Successor();
  if (successor.actor == Self().actor) return;  // Single-node ring.
  auto update = std::make_unique<ReplicaUpdate>();
  update->items = items;
  update->trace = ctx;
  chord_.network().Send(Self().actor, successor.actor, std::move(update));
}

void TrackerNode::HandleReplica(const ReplicaUpdate& update) {
  for (const auto& item : update.items) {
    const IndexEntry* existing = replica_.Find(item.object);
    if (existing == nullptr || existing->latest_arrived <= item.latest_arrived) {
      replica_.Upsert(item.object, IndexEntry{item.latest_node, item.latest_arrived});
    }
  }
}

void TrackerNode::HandleIopTo(const IopToUpdate& update) {
  for (const auto& item : update.items) {
    iop_.SetTo(item.object, item.to, item.to_arrived);
  }
}

void TrackerNode::HandleIopFrom(const IopFromUpdate& update) {
  for (const auto& item : update.items) {
    iop_.SetFrom(item.object, item.arrived,
                 item.from.Valid() ? item.from : chord::NodeRef{},
                 item.from.Valid() ? std::optional<moods::Time>(item.from_arrived)
                                   : std::nullopt);
  }
}

// --- AppHandler --------------------------------------------------------------

void TrackerNode::OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  if (dispatcher_.Dispatch(from, message)) return;
  util::LogWarn("tracker {}: unhandled app message {}", Self().Describe(),
                message->TypeName());
}

void TrackerNode::OnRangeTransfer(const chord::Key& lo, const chord::Key& hi,
                                  const chord::NodeRef& new_owner) {
  TrackerNode* peer = peers_.TrackerByActor(new_owner.actor);
  if (peer == nullptr || peer == this) return;

  // Individual-mode entries keyed in (lo, hi] move to the new owner.
  std::vector<std::pair<hash::UInt160, IndexEntry>> moving;
  for (const auto& [object, entry] : individual_.Entries()) {
    if (object.InHalfOpenLoHi(lo, hi)) moving.emplace_back(object, entry);
  }
  for (const auto& [object, _] : moving) individual_.Extract(object);
  if (!moving.empty()) {
    ChargeRpc("track.migrate", moving.size() * 52, "track.migrate_ack", 8,
              new_owner.actor);
    peer->AcceptIndividualEntries(std::move(moving));
  }

  // Prefix buckets whose gateway key falls in (lo, hi] move wholesale.
  for (const auto& prefix : store_.Prefixes()) {
    if (hash::GroupKey(prefix).InHalfOpenLoHi(lo, hi)) {
      auto* bucket = store_.TryBucket(prefix);
      auto entries = bucket->ExtractAll();
      store_.DropIfEmpty(prefix);
      if (!entries.empty()) {
        ChargeRpc("track.migrate", entries.size() * 52, "track.migrate_ack", 8,
                  new_owner.actor);
        peer->AcceptEntries(prefix, std::move(entries));
      }
    }
  }
}

void TrackerNode::AcceptIndividualEntries(
    std::vector<std::pair<hash::UInt160, IndexEntry>> entries) {
  for (auto& [object, entry] : entries) {
    const IndexEntry* existing = individual_.Find(object);
    if (existing == nullptr || existing->latest_arrived < entry.latest_arrived) {
      individual_.Upsert(object, entry);
    }
  }
}

}  // namespace peertrack::tracking
