#pragma once
// TrackerNode — the per-organization traceability node (the paper's core).
//
// One TrackerNode sits on top of one ChordNode and implements:
//  * capture handling: receptors feed arrivals; IOP visits are recorded
//    locally (Section II-C);
//  * individual indexing (Section III): every arrival is reported to the
//    object's gateway = successor(SHA1(object id)), which maintains the
//    latest-location index and issues the M2/M3 IOP updates;
//  * group indexing (Section IV-A): arrivals buffer in an adaptive window
//    (Tmax/Nmax) and one report per prefix group is routed to the group's
//    gateway = successor(SHA1(prefix string));
//  * the Data Triangle (Section IV-A2): delegation of the oldest α·|bucket|
//    entries to the two child prefixes, refresh_from_ascent /
//    refresh_from_descent during index persistence, and splitting/merging
//    when the global prefix length changes;
//  * query processing (Section IV-B): iterative routing toward the gateway
//    with intermediate-node interception, then an IOP walk along the
//    distributed doubly-linked list.
//
// Index-persistence RPCs between gateways (fetch/delegate/split/merge) are
// executed as direct calls through a PeerDirectory while their wire cost is
// charged to the metrics explicitly; the paper notes parent/child gateway
// addresses are cached, so each such exchange costs one request and one
// response message, which is exactly what we charge.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "chord/chord_node.hpp"
#include "moods/iop.hpp"
#include "moods/receptor.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/rpc.hpp"
#include "tracking/gateway_index.hpp"
#include "tracking/grouping.hpp"
#include "tracking/flooding.hpp"
#include "tracking/messages.hpp"
#include "tracking/prefix_scheme.hpp"

namespace peertrack::tracking {

enum class IndexingMode { kIndividual, kGroup };

struct TrackerConfig {
  IndexingMode mode = IndexingMode::kGroup;
  CaptureWindow::Limits window;
  unsigned lmin = 2;                      ///< Floor for Lp (paper's Lmin).
  double alpha = 0.5;                     ///< Delegated fraction per overflow.
  std::size_t delegation_threshold = 4096;///< Bucket size that triggers delegation.
  bool enable_triangle = true;            ///< Data-Triangle machinery on/off.
  /// Probe ancestor gateways for records even when no local state suggests
  /// they hold any. Our split/merge migrates eagerly, so ascents cannot
  /// hold live records and the probes are pure overhead; enable this when
  /// modelling deployments with lazy (pull-based) migration, where the
  /// Fig.-5 ascent walk is load-bearing.
  bool always_refresh_ascent = false;
  std::size_t max_descent_depth = 8;      ///< Safety bound for descent walks.
  std::size_t max_probe_steps = 128;      ///< Query routing safety valve.
  double query_timeout_ms = 60000.0;      ///< Global per-query safety net on
                                          ///< top of per-RPC deadlines.
  /// Deadline/backoff for every query-side RPC (trace probes, IOP walk
  /// steps, flood probes). A step that exhausts this policy fails the
  /// query to its callback instead of hanging.
  rpc::RetryPolicy rpc;
  /// Extension (not in the paper): mirror every gateway index update to
  /// the gateway's first `replication_factor` ring successors. When the
  /// gateway crashes, Chord makes the nearest surviving successor the key's
  /// new owner, which promotes its replica — so L(o, t) keeps resolving.
  /// One acknowledged push per batch per replica target.
  bool replicate_index = false;
  /// Replica targets per gateway (only used when replicate_index). R=2
  /// survives a gateway crash plus one concurrent successor crash.
  std::size_t replication_factor = 2;
  /// Delay between BeginLeave (which rehomes on-premise objects at the
  /// successor) and the final state handoff. Must cover the capture window
  /// Tmax plus a few network round-trips, so the rehoming M2/M3 updates
  /// land while the departing node can still receive them.
  double leave_settle_ms = 2500.0;
  /// Debounce for the anti-entropy push after a neighborhood change.
  double anti_entropy_delay_ms = 100.0;
};

/// Network-wide prefix length, shared by reference across all trackers
/// (the paper assumes a global Lp derived from the estimated Nn).
struct GlobalPrefixState {
  unsigned lp = 4;
};

class TrackerNode;

/// Resolver for direct-call RPCs between gateways. Implemented by
/// TrackingSystem from the ring oracle; the paper's justification is that
/// gateway/parent/child addresses are cached after first resolution.
class PeerDirectory {
 public:
  virtual ~PeerDirectory() = default;
  virtual TrackerNode* TrackerByActor(sim::ActorId actor) = 0;
  /// Tracker on the node currently owning `key` (never null while any node
  /// is alive).
  virtual TrackerNode* OwnerOf(const chord::Key& key) = 0;
};

class TrackerNode final : public chord::ChordNode::AppHandler {
 public:
  TrackerNode(chord::ChordNode& chord, PeerDirectory& peers,
              GlobalPrefixState& global_lp, TrackerConfig config);

  TrackerNode(const TrackerNode&) = delete;
  TrackerNode& operator=(const TrackerNode&) = delete;

  chord::ChordNode& chord() noexcept { return chord_; }
  const chord::NodeRef& Self() const noexcept { return chord_.Self(); }
  const TrackerConfig& config() const noexcept { return config_; }
  const moods::IopStore& iop() const noexcept { return iop_; }

  /// Create a receptor feeding this node (reads become captures).
  moods::Receptor& AddReceptor(std::string name);

  // --- Capture path -----------------------------------------------------

  /// An object was captured at this node at simulated time `at`. Records
  /// the IOP visit and triggers (or buffers) indexing.
  void OnCapture(const moods::Object& object, moods::Time at);
  void OnCapture(const hash::UInt160& object_key, moods::Time at);

  /// Force-close the capture window (used at end of a workload phase; the
  /// Tmax timer does this in steady state).
  void FlushWindow();

  // --- Graceful departure (churn extension; see DESIGN.md §8) -----------

  struct LeaveSummary {
    bool left = false;         ///< Departure initiated (was alive, not leaving).
    chord::NodeRef successor;  ///< Heir at BeginLeave time.
    std::size_t rehomed = 0;   ///< On-premise objects recaptured at the heir.
  };
  /// Phase 1 of the two-phase leave: flush the capture window, recapture
  /// every on-premise object at the ring successor (so the index and the
  /// IOP chain extend to a live node), and schedule FinishLeave after
  /// `leave_settle_ms`. The second phase repoints every IOP link at this
  /// node to the heir, hands over IOP/replica/delegation state, and runs
  /// the Chord leave (which migrates the gateway index).
  LeaveSummary BeginLeave();
  bool Leaving() const noexcept { return leaving_; }
  /// True once the full handoff completed; the invariant monitor's
  /// handoff.complete check asserts no live state references such a node.
  bool LeftGracefully() const noexcept { return left_gracefully_; }

  /// Direct-call handoff surface, used by a departing predecessor (wire
  /// cost charged by the caller via ChargeRpc).
  void AdoptIopRecords(
      std::vector<std::pair<hash::UInt160, std::vector<moods::Visit>>> records);
  void AdoptDelegationMarkers(const std::set<hash::Prefix>& prefixes);
  void AdoptReplicaRecords(
      std::vector<std::pair<hash::UInt160, ReplicaRecord>> records);

  // --- Queries ----------------------------------------------------------

  struct TraceStep {
    chord::NodeRef node;
    moods::Time arrived = 0.0;
  };
  struct TraceResult {
    bool ok = false;            ///< Object found and walk completed.
    std::vector<TraceStep> path;///< Visits sorted by arrival time.
    /// The IOP walk hit a dead link (a visit pointing at a node that could
    /// not produce the referenced record) and degraded to a partial path.
    /// `ok` stays true when some steps were collected; auditors treat this
    /// as a broken chain (TraceAuditor::AnomalyKind::kMissingLink).
    bool chain_broken = false;
    moods::Time issued_at = 0.0;
    moods::Time completed_at = 0.0;
    std::size_t probe_hops = 0; ///< Routing probes before an answerer was found.
    double DurationMs() const noexcept { return completed_at - issued_at; }
  };
  using TraceCallback = std::function<void(TraceResult)>;

  /// TR(o): full-lifetime trace query issued from this node.
  void TraceQuery(const hash::UInt160& object, TraceCallback callback);

  struct LocateResult {
    bool ok = false;
    chord::NodeRef node;
    moods::Time arrived = 0.0;
    moods::Time issued_at = 0.0;
    moods::Time completed_at = 0.0;
    double DurationMs() const noexcept { return completed_at - issued_at; }
  };
  using LocateCallback = std::function<void(LocateResult)>;

  /// L(o, now): current location via the gateway index.
  void LocateQuery(const hash::UInt160& object, LocateCallback callback);

  /// Index-free baseline: broadcast the trace query to every organization
  /// (the flooding approach the paper's design avoids; used by the
  /// `ablation_flooding` benchmark). Membership comes from the system via
  /// flooding().SetMembership().
  FloodingQueryEngine& flooding() noexcept { return flood_; }

  // --- Gateway-to-gateway RPC surface (direct calls, cost pre-charged by
  // the caller via ChargeRpc) ---------------------------------------------

  struct FetchResult {
    bool bucket_exists = false;
    std::vector<std::pair<hash::UInt160, IndexEntry>> entries;
  };
  /// Look up (and optionally remove) entries for `objects` in the bucket
  /// for `prefix`.
  FetchResult FetchEntries(const hash::Prefix& prefix,
                           std::span<const hash::UInt160> objects, bool remove);

  /// Receive entries delegated/split/merged into the bucket for `prefix`.
  /// Delegation deliveries (`as_delegation`) may live at Lp+1 (the child
  /// level of the triangle); every other delivery is normalized to exactly
  /// Lp via split/merge cascades, so entries can never strand at a level
  /// no gateway probes.
  void AcceptEntries(const hash::Prefix& prefix,
                     std::vector<std::pair<hash::UInt160, IndexEntry>> entries,
                     bool as_delegation = false);

  /// Receive individual-mode entries (churn migration).
  void AcceptIndividualEntries(
      std::vector<std::pair<hash::UInt160, IndexEntry>> entries);

  /// Global Lp changed: split/merge owned buckets to the new shape.
  void OnPrefixLengthChanged(unsigned new_lp);

  // --- AppHandler ---------------------------------------------------------

  void OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override;
  void OnRangeTransfer(const chord::Key& lo, const chord::Key& hi,
                       const chord::NodeRef& new_owner) override;
  void OnNeighborhoodChanged() override;

  // --- Introspection ------------------------------------------------------

  /// Objects this node has processed as a gateway (Fig. 8a's load measure).
  std::uint64_t ObjectsIndexed() const noexcept { return objects_indexed_; }
  /// Replicated entries held on behalf of the predecessor gateway.
  std::size_t ReplicaEntries() const noexcept { return replica_.Size(); }
  /// Index entries currently stored here (all buckets + individual).
  std::size_t StoredIndexEntries() const {
    return store_.TotalEntries() + individual_.Size();
  }
  const PrefixIndexStore& prefix_store() const noexcept { return store_; }
  /// Individual-mode gateway map (read-only; invariant monitor scans).
  const PrefixBucket& individual_index() const noexcept { return individual_; }
  /// Replica records (read-only; gateway.replication check scans).
  const ReplicaStore& replica_store() const noexcept { return replica_; }
  std::uint64_t WindowsFlushed() const noexcept { return window_.WindowsClosed(); }

  // --- Fault injection (tests only) ---------------------------------------
  // Mutable views of the stores the invariant monitor audits, so seeded-
  // corruption tests can break a to-link, stale a gateway entry, or drop a
  // delegated record and assert the matching check fires. Protocol code
  // must never touch these.
  moods::IopStore& mutable_iop() noexcept { return iop_; }
  PrefixBucket& mutable_individual_index() noexcept { return individual_; }
  PrefixIndexStore& mutable_prefix_store() noexcept { return store_; }

 private:
  friend class TrackingSystem;

  // Capture/indexing (tracker_node.cpp).
  void IndexIndividually(const hash::UInt160& object, moods::Time at);
  void BufferForGroupIndexing(const hash::UInt160& object, moods::Time at);
  void ArmWindowTimer();
  void RoutedSend(const chord::Key& target, std::unique_ptr<sim::Message> inner);
  void DispatchInner(std::unique_ptr<sim::Message> inner);
  void HandleEnvelope(std::unique_ptr<RoutedEnvelope> envelope);
  void HandleObjectArrival(const ObjectArrival& arrival);
  void HandleGroupArrival(const GroupArrival& arrival);
  void HandleIopTo(const IopToUpdate& update);
  void HandleIopFrom(const IopFromUpdate& update);
  std::unique_ptr<ReplicaAck> HandleReplica(const ReplicaUpdate& update);
  void HandleReplicaErase(const ReplicaErase& erase);
  void HandleIopRepoint(const IopRepoint& update);
  /// Mirror freshly-updated entries to the first R ring successors (one
  /// acknowledged RPC per target). `ctx` is the originating index trace
  /// (invalid when untraced).
  void ReplicateEntries(const std::vector<ReplicaUpdate::Item>& items,
                        const obs::TraceContext& ctx);
  /// First `replication_factor` distinct successor-list entries (excluding
  /// self) — the nodes that inherit this gateway's keys on a crash.
  std::vector<chord::NodeRef> ReplicaTargets() const;
  /// Tell replica holders these entries left this gateway (delegation).
  void SendReplicaErase(std::vector<hash::UInt160> objects);
  /// Move replica records whose gateway key this node now owns into the
  /// authoritative index (successor promotion after a crash).
  void PromoteOwnedReplicas();
  /// Debounced full-state push to the current replica targets; re-protects
  /// the index after the successor set changes (join, crash, scrub).
  void ScheduleAntiEntropy();
  void RunAntiEntropy();
  void FinishLeave();
  /// Replica fall-through used by gateway lookups after a crash.
  const IndexEntry* ReplicaLookup(const hash::UInt160& object) const {
    return replica_.Find(object);
  }
  unsigned CurrentLp() const noexcept { return global_lp_.lp; }

  // Data triangle (data_triangle.cpp).
  void RefreshFromAscent(std::vector<hash::UInt160>& unknown,
                         const hash::Prefix& prefix, PrefixBucket& bucket);
  void RefreshFromDescent(std::vector<hash::UInt160>& unknown,
                          const hash::Prefix& prefix, PrefixBucket& bucket,
                          std::size_t depth);
  void MaybeDelegate(const hash::Prefix& prefix, PrefixBucket& bucket);
  void DeliverEntries(const hash::Prefix& prefix,
                      std::vector<std::pair<hash::UInt160, IndexEntry>> entries,
                      std::string_view charge_type, bool as_delegation = false);
  /// Charge one request/response pair to the metrics (addresses cached per
  /// the paper, so no routing hops).
  void ChargeRpc(std::string_view request_type, std::size_t request_bytes,
                 std::string_view response_type, std::size_t response_bytes,
                 sim::ActorId peer);
  /// Query-time index lookup across the triangle (local bucket, then
  /// parent, then children). Does not move entries.
  const IndexEntry* TriangleLookup(const hash::UInt160& object, unsigned lp);

  // Query engine (query.cpp).
  struct PendingQuery {
    hash::UInt160 object;
    chord::Key target;
    bool locate_only = false;
    TraceCallback trace_callback;
    LocateCallback locate_callback;
    moods::Time issued_at = 0.0;
    std::size_t probe_steps = 0;
    chord::NodeRef probe_current;
    // Walk state: collected steps + cursors.
    std::map<moods::Time, chord::NodeRef> steps;
    bool walking_backward = false;
    chord::NodeRef walk_node;
    moods::Time walk_arrived = 0.0;
    bool forward_pending = false;
    chord::NodeRef forward_node;
    moods::Time forward_arrived = 0.0;
    bool chain_broken = false;  ///< A walk step hit a dead link / timeout.
    rpc::CallId call = 0;  ///< In-flight probe/walk RPC.
    sim::EventHandle timeout;
    obs::TraceContext span;   ///< Root "query.trace"/"query.locate" span.
    obs::TraceContext stage;  ///< Current probe/walk stage span.
  };
  void RegisterHandlers();
  void StartQuery(const hash::UInt160& object, PendingQuery query);
  void ProbeStep(std::uint64_t query_id, const chord::NodeRef& target_node);
  std::unique_ptr<TraceProbeReply> HandleProbe(const TraceProbe& probe);
  void HandleProbeReply(std::uint64_t query_id, const TraceProbeReply& reply);
  void HandleProbeTimeout(std::uint64_t query_id);
  void BeginWalk(std::uint64_t query_id, const chord::NodeRef& node,
                 moods::Time arrived);
  void WalkStep(std::uint64_t query_id);
  std::unique_ptr<IopWalkResponse> HandleWalkRequest(const IopWalkRequest& request);
  void HandleWalkResponse(std::uint64_t query_id, const IopWalkResponse& response);
  void HandleWalkTimeout(std::uint64_t query_id);
  void FinishQuery(std::uint64_t query_id, bool ok);

  chord::ChordNode& chord_;
  PeerDirectory& peers_;
  GlobalPrefixState& global_lp_;
  TrackerConfig config_;

  rpc::Dispatcher dispatcher_;
  rpc::RpcClient rpc_;
  rpc::RpcServer server_;

  moods::IopStore iop_;
  PrefixBucket individual_;  ///< Individual-mode gateway entries (flat).
  ReplicaStore replica_;     ///< Backups held for preceding gateways.
  PrefixIndexStore store_;   ///< Group-mode prefix buckets.
  CaptureWindow window_;
  sim::EventHandle window_timer_;
  std::uint64_t window_generation_ = 0;

  // Graceful-leave state machine (BeginLeave -> settle -> FinishLeave).
  bool leaving_ = false;
  bool left_gracefully_ = false;
  sim::EventHandle leave_timer_;
  bool anti_entropy_scheduled_ = false;
  sim::EventHandle anti_entropy_timer_;

  std::vector<std::unique_ptr<moods::Receptor>> receptors_;

  std::uint64_t next_query_id_ = 1;
  std::unordered_map<std::uint64_t, PendingQuery> queries_;
  FloodingQueryEngine flood_;

  /// Cached instrument references: these counters are bumped once per
  /// capture/group/query event, so the name is resolved once here instead
  /// of per bump. Registry instruments never move, and Metrics::Reset()
  /// zeroes values in place, so the references stay valid for the node's
  /// lifetime.
  obs::Counter& ctr_window_flush_;
  obs::Counter& ctr_group_handled_;
  obs::Counter& ctr_stale_arrival_;
  obs::Counter& ctr_query_timeout_;
  obs::Counter& ctr_replica_hit_;
  obs::Counter& ctr_probe_timeout_;
  obs::Counter& ctr_walk_timeout_;
  obs::Counter& ctr_replica_promoted_;
  obs::Counter& ctr_anti_entropy_;
  obs::Counter& ctr_chain_forward_;

  /// Prefixes whose entries this gateway has pushed down to child
  /// gateways. refresh_from_descent / the triangle lookup only probe
  /// children for marked prefixes — the gateway is the only writer of its
  /// children, so an unmarked prefix cannot have delegated records (this
  /// is the "addresses and structure are cached" reading of the paper).
  std::set<hash::Prefix> delegated_children_;

  std::uint64_t objects_indexed_ = 0;
};

}  // namespace peertrack::tracking
