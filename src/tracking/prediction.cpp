#include "tracking/prediction.hpp"

#include <algorithm>

namespace peertrack::tracking {

void MovementPredictor::ObserveTrace(const std::vector<TrackerNode::TraceStep>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    SourceStats& stats = transitions_[path[i].node.actor];
    ++stats.next_counts[path[i + 1].node.actor];
    ++stats.total;
    ++total_transitions_;
    stats.dwell_ms.Add(path[i + 1].arrived - path[i].arrived);
  }
}

void MovementPredictor::ObserveSequence(const std::vector<sim::ActorId>& nodes) {
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    SourceStats& stats = transitions_[nodes[i]];
    ++stats.next_counts[nodes[i + 1]];
    ++stats.total;
    ++total_transitions_;
  }
}

std::vector<MovementPredictor::Prediction> MovementPredictor::NextFrom(
    sim::ActorId node, std::size_t top_k) const {
  std::vector<Prediction> predictions;
  const auto it = transitions_.find(node);
  if (it == transitions_.end()) return predictions;
  const SourceStats& stats = it->second;
  const double denominator =
      static_cast<double>(stats.total) +
      smoothing_ * static_cast<double>(stats.next_counts.size());
  predictions.reserve(stats.next_counts.size());
  for (const auto& [next, count] : stats.next_counts) {
    Prediction p;
    p.node = next;
    p.probability = (static_cast<double>(count) + smoothing_) / denominator;
    p.expected_dwell_ms = stats.dwell_ms.Mean();
    predictions.push_back(p);
  }
  std::sort(predictions.begin(), predictions.end(),
            [](const Prediction& a, const Prediction& b) {
              if (a.probability != b.probability) return a.probability > b.probability;
              return a.node < b.node;  // Deterministic tie-break.
            });
  if (top_k > 0 && predictions.size() > top_k) predictions.resize(top_k);
  return predictions;
}

double MovementPredictor::TransitionProbability(sim::ActorId from,
                                                sim::ActorId to) const {
  const auto it = transitions_.find(from);
  if (it == transitions_.end()) return 0.0;
  const SourceStats& stats = it->second;
  const auto count_it = stats.next_counts.find(to);
  const double count =
      count_it == stats.next_counts.end() ? 0.0 : static_cast<double>(count_it->second);
  const double denominator =
      static_cast<double>(stats.total) +
      smoothing_ * static_cast<double>(stats.next_counts.size() + 1);
  return denominator == 0.0 ? 0.0 : (count + smoothing_) / denominator;
}

double MovementPredictor::MeanDwellMs(sim::ActorId node) const {
  const auto it = transitions_.find(node);
  return it == transitions_.end() ? 0.0 : it->second.dwell_ms.Mean();
}

}  // namespace peertrack::tracking
