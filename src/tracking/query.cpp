// Query processing (paper Section IV-B).
//
// A trace query routes iteratively toward the object's gateway key. Each
// probed hop may intercept the query if it has IOP state for the object
// (Section III: "if any node along the route ... has the information of the
// object, the trace query can be processed from this node"). Once an
// answering node is found, the querying node walks the distributed
// doubly-linked IOP list: backward along `from` links to the first
// appearance, then forward along `to` links to the current location.
//
// Every probe and walk step is an RPC (TrackerConfig::rpc policy): lost
// messages are retried with backoff, and a hop that exhausts its retries
// fails the query (probe phase) or completes it with the steps collected
// so far (walk phase) — queries never hang on loss or dead nodes.

#include "tracking/tracker_node.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace peertrack::tracking {

namespace {

chord::Key RoutingTargetFor(IndexingMode mode, const hash::UInt160& object,
                            unsigned lp) {
  if (mode == IndexingMode::kIndividual) return object;
  return hash::GroupKey(hash::Prefix::OfKey(object, lp));
}

}  // namespace

void TrackerNode::TraceQuery(const hash::UInt160& object, TraceCallback callback) {
  PendingQuery query;
  query.object = object;
  query.locate_only = false;
  query.trace_callback = std::move(callback);
  StartQuery(object, std::move(query));
}

void TrackerNode::LocateQuery(const hash::UInt160& object, LocateCallback callback) {
  PendingQuery query;
  query.object = object;
  query.locate_only = true;
  query.locate_callback = std::move(callback);
  StartQuery(object, std::move(query));
}

void TrackerNode::StartQuery(const hash::UInt160& object, PendingQuery query) {
  query.target = RoutingTargetFor(config_.mode, object, CurrentLp());
  query.issued_at = chord_.network().simulator().Now();
  obs::Tracer& tracer = chord_.network().tracer();
  if (tracer.Enabled()) {
    query.span = tracer.StartTrace(
        query.locate_only ? "query.locate" : "query.trace", Self().actor,
        query.issued_at);
  }
  const obs::ScopedLogTrace log_scope(query.span);
  const std::uint64_t query_id = next_query_id_++;
  if (config_.query_timeout_ms > 0.0) {
    query.timeout = chord_.network().simulator().ScheduleAfter(
        config_.query_timeout_ms, [this, query_id] {
          if (queries_.contains(query_id)) {
            ctr_query_timeout_.Add();
            FinishQuery(query_id, false);
          }
        });
  }

  // Local interception: the issuing node may have witnessed the object
  // itself (trace queries only — locate needs the authoritative latest).
  if (!query.locate_only && iop_.Knows(object)) {
    const auto* visits = iop_.VisitsOf(object);
    const moods::Time arrived = visits->back().arrived;
    tracer.AddEvent(query.span, "iop.local", Self().actor, query.issued_at);
    queries_.emplace(query_id, std::move(query));
    BeginWalk(query_id, Self(), arrived);
    return;
  }
  // Local gateway: the issuing node may own the target key.
  if (chord_.Owns(query.target)) {
    tracer.AddEvent(query.span, "gateway.read.local", Self().actor,
                    query.issued_at);
    const IndexEntry* entry = config_.mode == IndexingMode::kIndividual
                                  ? individual_.Find(object)
                                  : TriangleLookup(object, CurrentLp());
    if (entry == nullptr && config_.replicate_index) entry = ReplicaLookup(object);
    if (entry == nullptr) {
      queries_.emplace(query_id, std::move(query));
      FinishQuery(query_id, false);
      return;
    }
    const chord::NodeRef latest_node = entry->latest_node;
    const moods::Time latest_arrived = entry->latest_arrived;
    queries_.emplace(query_id, std::move(query));
    if (queries_.at(query_id).locate_only) {
      auto& q = queries_.at(query_id);
      q.steps.emplace(latest_arrived, latest_node);
      FinishQuery(query_id, true);
      return;
    }
    BeginWalk(query_id, latest_node, latest_arrived);
    return;
  }

  const auto step = chord_.NextRouteStep(query.target);
  queries_.emplace(query_id, std::move(query));
  ProbeStep(query_id, step.node);
}

void TrackerNode::ProbeStep(std::uint64_t query_id, const chord::NodeRef& target_node) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& query = it->second;
  if (query.probe_steps >= config_.max_probe_steps) {
    util::LogWarn("query for {} exceeded probe budget", query.object.ToShortHex());
    FinishQuery(query_id, false);
    return;
  }
  ++query.probe_steps;
  query.probe_current = target_node;

  obs::Tracer& tracer = chord_.network().tracer();
  if (tracer.Enabled() && query.span.Valid()) {
    query.stage = tracer.StartSpan(
        query.span, util::Format("query.probe#{}", query.probe_steps),
        Self().actor, chord_.network().simulator().Now());
  }
  const obs::ScopedLogTrace log_scope(query.span);
  auto probe = std::make_unique<TraceProbe>();
  probe->object = query.object;
  probe->routing_target = query.target;
  probe->allow_intercept = !query.locate_only;
  probe->trace = query.stage;
  query.call = rpc_.Call<TraceProbeReply>(
      target_node.actor, std::move(probe), config_.rpc,
      [this, query_id](rpc::Status status,
                       std::unique_ptr<TraceProbeReply> reply) {
        if (status == rpc::Status::kOk) {
          HandleProbeReply(query_id, *reply);
        } else {
          HandleProbeTimeout(query_id);
        }
      });
}

std::unique_ptr<TraceProbeReply> TrackerNode::HandleProbe(const TraceProbe& probe) {
  auto reply = std::make_unique<TraceProbeReply>();
  obs::Tracer& tracer = chord_.network().tracer();
  const double now = chord_.network().simulator().Now();
  const obs::ScopedLogTrace log_scope(probe.trace);

  if (probe.allow_intercept && iop_.Knows(probe.object)) {
    const auto* visits = iop_.VisitsOf(probe.object);
    reply->kind = TraceProbeReply::Kind::kHasIop;
    reply->node = Self();
    reply->arrived = visits->back().arrived;
    tracer.AddEvent(probe.trace, "iop.intercept", Self().actor, now);
  } else if (chord_.Owns(probe.routing_target)) {
    const IndexEntry* entry = config_.mode == IndexingMode::kIndividual
                                  ? individual_.Find(probe.object)
                                  : TriangleLookup(probe.object, CurrentLp());
    if (entry == nullptr && config_.replicate_index) {
      entry = ReplicaLookup(probe.object);
      if (entry != nullptr) {
        ctr_replica_hit_.Add();
      }
    }
    if (entry != nullptr) {
      reply->kind = TraceProbeReply::Kind::kGatewayHit;
      reply->node = entry->latest_node;
      reply->arrived = entry->latest_arrived;
      tracer.AddEvent(probe.trace, "gateway.read", Self().actor, now);
    } else {
      reply->kind = TraceProbeReply::Kind::kNotFound;
      tracer.AddEvent(probe.trace, "gateway.miss", Self().actor, now);
    }
  } else {
    const auto step = chord_.NextRouteStep(probe.routing_target);
    if (step.node.actor == Self().actor) {
      // Cannot make progress (immature routing state): declare not found
      // rather than loop.
      reply->kind = TraceProbeReply::Kind::kNotFound;
    } else {
      reply->kind = TraceProbeReply::Kind::kNextHop;
      reply->node = step.node;
    }
  }
  return reply;
}

void TrackerNode::HandleProbeReply(std::uint64_t query_id,
                                   const TraceProbeReply& reply) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& query = it->second;

  {
    obs::Tracer& tracer = chord_.network().tracer();
    const double now = chord_.network().simulator().Now();
    switch (reply.kind) {
      case TraceProbeReply::Kind::kNextHop:
        tracer.EndSpan(query.stage, now, "next-hop");
        break;
      case TraceProbeReply::Kind::kNotFound:
        tracer.EndSpan(query.stage, now, "not-found");
        break;
      case TraceProbeReply::Kind::kHasIop:
        tracer.EndSpan(query.stage, now, "iop-hit");
        break;
      case TraceProbeReply::Kind::kGatewayHit:
        tracer.EndSpan(query.stage, now, "gateway-hit");
        break;
    }
    query.stage = obs::TraceContext{};
  }
  const obs::ScopedLogTrace log_scope(query.span);

  switch (reply.kind) {
    case TraceProbeReply::Kind::kNextHop:
      if (reply.node.actor == query.probe_current.actor) {
        FinishQuery(query_id, false);
        return;
      }
      ProbeStep(query_id, reply.node);
      return;
    case TraceProbeReply::Kind::kNotFound:
      FinishQuery(query_id, false);
      return;
    case TraceProbeReply::Kind::kHasIop:
      // Locate queries set allow_intercept=false, so this only occurs for
      // trace queries.
      BeginWalk(query_id, reply.node, reply.arrived);
      return;
    case TraceProbeReply::Kind::kGatewayHit:
      if (query.locate_only) {
        query.steps.emplace(reply.arrived, reply.node);
        FinishQuery(query_id, true);
        return;
      }
      BeginWalk(query_id, reply.node, reply.arrived);
      return;
  }
}

void TrackerNode::HandleProbeTimeout(std::uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  // The probed hop exhausted its RPC retries (down node or persistent
  // loss). The routing walk cannot continue past it; fail fast to the
  // caller rather than waiting for the global safety timer.
  chord_.network().tracer().EndSpan(it->second.stage,
                                    chord_.network().simulator().Now(),
                                    "timeout");
  it->second.stage = obs::TraceContext{};
  ctr_probe_timeout_.Add();
  FinishQuery(query_id, false);
}

void TrackerNode::BeginWalk(std::uint64_t query_id, const chord::NodeRef& node,
                            moods::Time arrived) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& query = it->second;
  query.walking_backward = true;
  query.walk_node = node;
  query.walk_arrived = arrived;
  query.forward_pending = false;
  WalkStep(query_id);
}

void TrackerNode::WalkStep(std::uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& query = it->second;

  obs::Tracer& tracer = chord_.network().tracer();
  if (tracer.Enabled() && query.span.Valid()) {
    query.stage = tracer.StartSpan(
        query.span,
        query.walking_backward ? "query.walk.back" : "query.walk.fwd",
        Self().actor, chord_.network().simulator().Now());
  }
  const obs::ScopedLogTrace log_scope(query.span);
  auto request = std::make_unique<IopWalkRequest>();
  request->object = query.object;
  request->arrived =
      query.walking_backward ? query.walk_arrived : query.forward_arrived;
  request->trace = query.stage;
  const chord::NodeRef& target =
      query.walking_backward ? query.walk_node : query.forward_node;
  query.call = rpc_.Call<IopWalkResponse>(
      target.actor, std::move(request), config_.rpc,
      [this, query_id](rpc::Status status,
                       std::unique_ptr<IopWalkResponse> response) {
        if (status == rpc::Status::kOk) {
          HandleWalkResponse(query_id, *response);
        } else {
          HandleWalkTimeout(query_id);
        }
      });
}

std::unique_ptr<IopWalkResponse> TrackerNode::HandleWalkRequest(
    const IopWalkRequest& request) {
  auto response = std::make_unique<IopWalkResponse>();
  const obs::ScopedLogTrace log_scope(request.trace);
  chord_.network().tracer().AddEvent(request.trace, "iop.read", Self().actor,
                                     chord_.network().simulator().Now());
  const moods::Visit* visit = iop_.VisitAt(request.object, request.arrived);
  if (visit == nullptr) {
    // Arrival-time mismatch (e.g. in-flight M3): fall back to the nearest
    // earlier visit so the walk degrades gracefully instead of aborting.
    visit = iop_.VisitAtOrBefore(request.object, request.arrived);
  }
  if (visit != nullptr) {
    response->found = true;
    response->arrived = visit->arrived;
    // Defensive monotonicity guards: a from-link must point strictly into
    // the past and a to-link strictly into the future, or a corrupted
    // chain could cycle the walk forever.
    if (visit->from.has_value() && visit->from->Valid() &&
        visit->from_arrived.value_or(-1.0) < visit->arrived) {
      response->has_from = true;
      response->from = *visit->from;
      response->from_arrived = visit->from_arrived.value_or(0.0);
    }
    if (visit->to.has_value() && visit->to->Valid() &&
        visit->to_arrived.value_or(-1.0) > visit->arrived) {
      response->has_to = true;
      response->to = *visit->to;
      response->to_arrived = visit->to_arrived.value_or(0.0);
    }
  }
  return response;
}

void TrackerNode::HandleWalkResponse(std::uint64_t query_id,
                                     const IopWalkResponse& response) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& query = it->second;

  chord_.network().tracer().EndSpan(query.stage,
                                    chord_.network().simulator().Now(),
                                    response.found ? "ok" : "dead-link");
  query.stage = obs::TraceContext{};
  const obs::ScopedLogTrace log_scope(query.span);

  if (!response.found) {
    // Dead link: complete with what was collected so far.
    query.chain_broken = true;
    if (query.walking_backward && query.forward_pending) {
      query.walking_backward = false;
      WalkStep(query_id);
      return;
    }
    FinishQuery(query_id, !query.steps.empty());
    return;
  }

  const chord::NodeRef visited_node =
      query.walking_backward ? query.walk_node : query.forward_node;
  query.steps.emplace(response.arrived, visited_node);

  if (query.walking_backward) {
    // Arm the forward phase off the very first (latest-known) visit: if it
    // has a `to` link, the object moved past the point our answer source
    // knew about (intermediate-node interception case).
    if (query.steps.size() == 1 && response.has_to) {
      query.forward_pending = true;
      query.forward_node = response.to;
      query.forward_arrived = response.to_arrived;
    }
    if (response.has_from) {
      query.walk_node = response.from;
      query.walk_arrived = response.from_arrived;
      WalkStep(query_id);
      return;
    }
    // Backward walk reached the first appearance.
    if (query.forward_pending) {
      query.walking_backward = false;
      WalkStep(query_id);
      return;
    }
    FinishQuery(query_id, true);
    return;
  }

  // Forward phase.
  if (response.has_to) {
    query.forward_node = response.to;
    query.forward_arrived = response.to_arrived;
    WalkStep(query_id);
    return;
  }
  FinishQuery(query_id, true);
}

void TrackerNode::HandleWalkTimeout(std::uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& query = it->second;
  // The walked node exhausted its RPC retries — treat it like a dead link
  // and degrade gracefully with the steps collected so far.
  chord_.network().tracer().EndSpan(query.stage,
                                    chord_.network().simulator().Now(),
                                    "timeout");
  query.stage = obs::TraceContext{};
  ctr_walk_timeout_.Add();
  query.chain_broken = true;
  if (query.walking_backward && query.forward_pending) {
    query.walking_backward = false;
    WalkStep(query_id);
    return;
  }
  FinishQuery(query_id, !query.steps.empty());
}

void TrackerNode::FinishQuery(std::uint64_t query_id, bool ok) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery query = std::move(it->second);
  queries_.erase(it);
  query.timeout.Cancel();
  rpc_.Cancel(query.call);

  const moods::Time now = chord_.network().simulator().Now();
  obs::Tracer& tracer = chord_.network().tracer();
  tracer.EndSpan(query.stage, now, "cancelled");
  tracer.EndSpan(query.span, now, ok ? "ok" : "failed");
  chord_.network().metrics().RecordLatency(
      query.locate_only ? "query.locate_ms" : "query.trace_ms",
      now - query.issued_at);
  const obs::ScopedLogTrace log_scope(query.span);
  if (query.locate_only) {
    LocateResult result;
    result.ok = ok && !query.steps.empty();
    if (result.ok) {
      result.node = query.steps.rbegin()->second;
      result.arrived = query.steps.rbegin()->first;
    }
    result.issued_at = query.issued_at;
    result.completed_at = now;
    if (query.locate_callback) query.locate_callback(std::move(result));
    return;
  }
  TraceResult result;
  result.ok = ok && !query.steps.empty();
  result.chain_broken = query.chain_broken;
  result.path.reserve(query.steps.size());
  for (const auto& [arrived, node] : query.steps) {
    result.path.push_back(TraceStep{node, arrived});
  }
  result.issued_at = query.issued_at;
  result.completed_at = now;
  result.probe_hops = query.probe_steps;
  if (query.trace_callback) query.trace_callback(std::move(result));
}

}  // namespace peertrack::tracking
