#include "tracking/tracking_system.hpp"

#include "util/format.hpp"

namespace peertrack::tracking {

TrackingSystem::TrackingSystem(std::size_t nodes, SystemConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      latency_(sim::MakeLatencyModel(config_.latency)),
      network_(std::make_unique<sim::Network>(simulator_, *latency_, rng_)) {
  chord::ChordRing::Options ring_options;
  ring_options.stabilize_every_ms = config_.stabilize_every_ms;
  ring_options.fix_fingers_every_ms = config_.fix_fingers_every_ms;
  ring_ = std::make_unique<chord::ChordRing>(*network_, ring_options);

  for (std::size_t i = 0; i < nodes; ++i) {
    ring_->AddNode(util::Format("org-{}", i));
  }
  ring_->OracleBootstrap();

  global_lp_.lp = PrefixLengthFor(config_.scheme, nodes, config_.tracker.lmin);

  trackers_.reserve(nodes);
  actor_of_index_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    auto& chord_node = ring_->Node(i);
    trackers_.push_back(std::make_unique<TrackerNode>(chord_node, *this, global_lp_,
                                                      config_.tracker));
    actor_of_index_.push_back(chord_node.Self().actor);
    index_of_actor_.emplace(chord_node.Self().actor,
                            static_cast<moods::NodeIndex>(i));
    if (config_.stabilize_every_ms > 0.0 || config_.fix_fingers_every_ms > 0.0) {
      chord_node.StartMaintenance(config_.stabilize_every_ms,
                                  config_.fix_fingers_every_ms);
    }
  }
}

TrackingSystem::~TrackingSystem() = default;

void TrackingSystem::CaptureAt(std::size_t node_index, const hash::UInt160& object,
                               moods::Time at) {
  oracle_.RecordMovement(object, static_cast<moods::NodeIndex>(node_index), at);
  simulator_.ScheduleAt(at, [this, node_index, object] {
    trackers_[node_index]->OnCapture(object, simulator_.Now());
  });
}

void TrackingSystem::FlushAllWindows() {
  for (auto& tracker : trackers_) tracker->FlushWindow();
  simulator_.Run();
}

void TrackingSystem::TraceQuery(std::size_t origin_index, const hash::UInt160& object,
                                TrackerNode::TraceCallback callback) {
  simulator_.ScheduleAfter(0.0, [this, origin_index, object,
                                 cb = std::move(callback)]() mutable {
    trackers_[origin_index]->TraceQuery(object, std::move(cb));
  });
}

void TrackingSystem::FloodTraceQuery(std::size_t origin_index,
                                     const hash::UInt160& object,
                                     FloodingQueryEngine::Callback callback) {
  // Refresh membership lazily from the alive set.
  std::vector<chord::NodeRef> peers;
  peers.reserve(trackers_.size());
  for (const auto& tracker : trackers_) {
    if (tracker->chord().Alive()) peers.push_back(tracker->Self());
  }
  auto& engine = trackers_[origin_index]->flooding();
  engine.SetMembership(std::move(peers));
  simulator_.ScheduleAfter(0.0, [&engine, object, cb = std::move(callback)]() mutable {
    engine.Query(object, std::move(cb));
  });
}

void TrackingSystem::LocateQuery(std::size_t origin_index, const hash::UInt160& object,
                                 TrackerNode::LocateCallback callback) {
  simulator_.ScheduleAfter(0.0, [this, origin_index, object,
                                 cb = std::move(callback)]() mutable {
    trackers_[origin_index]->LocateQuery(object, std::move(cb));
  });
}

void TrackingSystem::GrowNetwork(std::size_t extra) {
  for (std::size_t j = 0; j < extra; ++j) {
    const std::size_t index = trackers_.size();
    auto& chord_node = ring_->AddNode(util::Format("org-{}", index));
    chord_node.MarkAlive();  // Join the alive set before the ring rewires.
    // The node that owned the newcomer's arc before it joined must hand
    // that state over (what Notify/OnRangeTransfer does in the protocol).
    TrackerNode* old_owner = OwnerOf(chord_node.Self().id);

    trackers_.push_back(std::make_unique<TrackerNode>(chord_node, *this, global_lp_,
                                                      config_.tracker));
    actor_of_index_.push_back(chord_node.Self().actor);
    index_of_actor_.emplace(chord_node.Self().actor,
                            static_cast<moods::NodeIndex>(index));
    ring_->OracleBootstrap();
    if (config_.stabilize_every_ms > 0.0 || config_.fix_fingers_every_ms > 0.0) {
      chord_node.StartMaintenance(config_.stabilize_every_ms,
                                  config_.fix_fingers_every_ms);
    }
    if (old_owner != nullptr && old_owner != trackers_.back().get()) {
      const chord::Key lo =
          chord_node.Predecessor() ? chord_node.Predecessor()->id : chord_node.Self().id;
      old_owner->OnRangeTransfer(lo, chord_node.Self().id, chord_node.Self());
    }
    if (config_.tracker.replicate_index) {
      // Oracle wiring bypasses the protocol's neighborhood notifications;
      // nodes whose successor set now contains the newcomer re-protect
      // their index against it explicitly.
      for (auto& tracker : trackers_) {
        if (!tracker->chord().Alive()) continue;
        for (const auto& node : tracker->chord().successors().Entries()) {
          if (node.actor == chord_node.Self().actor) {
            tracker->OnNeighborhoodChanged();
            break;
          }
        }
      }
    }
  }
}

std::size_t TrackingSystem::ProtocolJoinNode() {
  const std::size_t index = trackers_.size();
  auto& chord_node = ring_->ProtocolJoin(util::Format("org-{}", index));
  trackers_.push_back(std::make_unique<TrackerNode>(chord_node, *this, global_lp_,
                                                    config_.tracker));
  actor_of_index_.push_back(chord_node.Self().actor);
  index_of_actor_.emplace(chord_node.Self().actor,
                          static_cast<moods::NodeIndex>(index));
  if (config_.stabilize_every_ms > 0.0 || config_.fix_fingers_every_ms > 0.0) {
    chord_node.StartMaintenance(config_.stabilize_every_ms,
                                config_.fix_fingers_every_ms);
  }
  return index;
}

TrackerNode::LeaveSummary TrackingSystem::LeaveNode(std::size_t index) {
  TrackerNode& tracker = *trackers_[index];
  const double now = simulator_.Now();
  const auto inventory = tracker.iop().InventoryAt(now);
  const auto summary = tracker.BeginLeave();
  if (summary.left && summary.rehomed > 0) {
    const moods::NodeIndex heir = NodeIndexOfActor(summary.successor.actor);
    if (heir != moods::kNowhere) {
      // The rehoming recapture is a real movement; ground truth follows.
      for (const auto& object : inventory) {
        oracle_.RecordMovement(object, heir, now);
      }
    }
  }
  return summary;
}

void TrackingSystem::CrashNode(std::size_t index) {
  trackers_[index]->chord().Crash();
}

unsigned TrackingSystem::RecomputePrefixLength() {
  const unsigned fresh = PrefixLengthFor(config_.scheme, ring_->AliveCount(),
                                         config_.tracker.lmin);
  if (fresh != global_lp_.lp) {
    global_lp_.lp = fresh;
    for (auto& tracker : trackers_) {
      if (tracker->chord().Alive()) tracker->OnPrefixLengthChanged(fresh);
    }
  }
  return global_lp_.lp;
}

moods::NodeIndex TrackingSystem::NodeIndexOfActor(sim::ActorId actor) const {
  const auto it = index_of_actor_.find(actor);
  return it == index_of_actor_.end() ? moods::kNowhere : it->second;
}

std::vector<std::uint64_t> TrackingSystem::IndexLoadPerNode() const {
  std::vector<std::uint64_t> loads;
  loads.reserve(trackers_.size());
  for (const auto& tracker : trackers_) loads.push_back(tracker->ObjectsIndexed());
  return loads;
}

std::vector<std::uint64_t> TrackingSystem::StoredEntriesPerNode() const {
  std::vector<std::uint64_t> loads;
  loads.reserve(trackers_.size());
  for (const auto& tracker : trackers_) {
    loads.push_back(tracker->StoredIndexEntries());
  }
  return loads;
}

TrackerNode* TrackingSystem::TrackerByActor(sim::ActorId actor) {
  const moods::NodeIndex index = NodeIndexOfActor(actor);
  if (index == moods::kNowhere) return nullptr;
  return trackers_[index].get();
}

TrackerNode* TrackingSystem::OwnerOf(const chord::Key& key) {
  chord::ChordNode* owner = ring_->ExpectedOwner(key);
  if (owner == nullptr) return nullptr;
  return TrackerByActor(owner->Self().actor);
}

}  // namespace peertrack::tracking
