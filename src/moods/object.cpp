#include "moods/object.hpp"

// Object is header-only today; this TU anchors the module so the build
// keeps a stable layout as the model grows.
