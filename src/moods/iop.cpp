#include "moods/iop.hpp"

#include <algorithm>

namespace peertrack::moods {

std::size_t IopStore::RecordArrival(const hash::UInt160& object, Time arrived) {
  auto& list = visits_[object];
  // Arrivals come in time order in practice, but keep the invariant under
  // out-of-order delivery: insert sorted.
  auto position = std::upper_bound(
      list.begin(), list.end(), arrived,
      [](Time t, const Visit& v) { return t < v.arrived; });
  // Idempotence: an arrival at the same timestamp is the same capture
  // (e.g. SetFrom raced ahead and pre-created the visit).
  if (position != list.begin() && std::prev(position)->arrived == arrived) {
    return static_cast<std::size_t>(std::distance(list.begin(), std::prev(position)));
  }
  Visit visit;
  visit.arrived = arrived;
  const auto index = static_cast<std::size_t>(std::distance(list.begin(), position));
  list.insert(position, visit);
  ++total_visits_;
  return index;
}

Visit* IopStore::FindVisit(const hash::UInt160& object, Time arrived) {
  const auto it = visits_.find(object);
  if (it == visits_.end()) return nullptr;
  auto& list = it->second;
  auto position = std::lower_bound(
      list.begin(), list.end(), arrived,
      [](const Visit& v, Time t) { return v.arrived < t; });
  if (position == list.end() || position->arrived != arrived) return nullptr;
  return &*position;
}

void IopStore::SetFrom(const hash::UInt160& object, Time arrived,
                       const chord::NodeRef& from, std::optional<Time> from_arrived) {
  Visit* visit = FindVisit(object, arrived);
  if (visit == nullptr) {
    RecordArrival(object, arrived);
    visit = FindVisit(object, arrived);
  }
  visit->from = from;
  visit->from_arrived = from_arrived;
}

void IopStore::SetTo(const hash::UInt160& object, const chord::NodeRef& to,
                     Time to_arrived) {
  const auto it = visits_.find(object);
  if (it == visits_.end()) return;  // M2 for an arrival we never saw.
  auto& list = it->second;
  // The departing visit is the latest one that began STRICTLY before the
  // object arrived at its next stop. The strict bound matters when the
  // next stop is this very node (a revisit): the new visit has
  // arrived == to_arrived and must not be chosen, or the chain would gain
  // a self-loop.
  auto position = std::lower_bound(
      list.begin(), list.end(), to_arrived,
      [](const Visit& v, Time t) { return v.arrived < t; });
  if (position == list.begin()) return;
  Visit& visit = *std::prev(position);
  visit.to = to;
  visit.to_arrived = to_arrived;
}

const Visit* IopStore::DepartingVisit(const hash::UInt160& object,
                                      Time to_arrived) const {
  const auto it = visits_.find(object);
  if (it == visits_.end()) return nullptr;
  const auto& list = it->second;
  auto position = std::lower_bound(
      list.begin(), list.end(), to_arrived,
      [](const Visit& v, Time t) { return v.arrived < t; });
  if (position == list.begin()) return nullptr;
  return &*std::prev(position);
}

bool IopStore::Knows(const hash::UInt160& object) const {
  return visits_.contains(object);
}

const std::vector<Visit>* IopStore::VisitsOf(const hash::UInt160& object) const {
  const auto it = visits_.find(object);
  return it == visits_.end() ? nullptr : &it->second;
}

const Visit* IopStore::VisitAtOrBefore(const hash::UInt160& object, Time at) const {
  const auto it = visits_.find(object);
  if (it == visits_.end()) return nullptr;
  const auto& list = it->second;
  auto position = std::upper_bound(
      list.begin(), list.end(), at,
      [](Time t, const Visit& v) { return t < v.arrived; });
  if (position == list.begin()) return nullptr;
  return &*std::prev(position);
}

const Visit* IopStore::VisitAt(const hash::UInt160& object, Time arrived) const {
  return const_cast<IopStore*>(this)->FindVisit(object, arrived);
}

std::vector<hash::UInt160> IopStore::InventoryAt(Time at) const {
  std::vector<hash::UInt160> present;
  for (const auto& [object, visits] : visits_) {
    // Latest visit that had begun by `at`.
    const Visit* current = nullptr;
    for (const auto& visit : visits) {
      if (visit.arrived <= at) current = &visit;
    }
    if (current == nullptr) continue;
    // Present unless it departed (to-link with departure implied by the
    // successor's arrival) before `at`.
    const bool departed = current->to.has_value() && current->to->Valid() &&
                          current->to_arrived.value_or(1e300) <= at;
    if (!departed) present.push_back(object);
  }
  return present;
}

bool IopStore::RepointLink(const hash::UInt160& object, Time arrived, bool fix_to,
                           const chord::NodeRef& new_node) {
  Visit* visit = FindVisit(object, arrived);
  if (visit == nullptr) return false;
  if (fix_to) {
    if (!visit->to.has_value() || !visit->to->Valid()) return false;
    visit->to = new_node;
  } else {
    if (!visit->from.has_value() || !visit->from->Valid()) return false;
    visit->from = new_node;
  }
  return true;
}

void IopStore::RepointNode(sim::ActorId old_actor, const chord::NodeRef& new_node) {
  for (auto& [object, list] : visits_) {
    for (Visit& visit : list) {
      if (visit.from.has_value() && visit.from->actor == old_actor) {
        visit.from = new_node;
      }
      if (visit.to.has_value() && visit.to->actor == old_actor) {
        visit.to = new_node;
      }
    }
  }
}

std::vector<std::pair<hash::UInt160, std::vector<Visit>>> IopStore::ExtractAll() {
  std::vector<std::pair<hash::UInt160, std::vector<Visit>>> all;
  all.reserve(visits_.size());
  for (auto& [object, list] : visits_) {
    all.emplace_back(object, std::move(list));
  }
  visits_.clear();
  total_visits_ = 0;
  return all;
}

void IopStore::AdoptVisits(const hash::UInt160& object,
                           const std::vector<Visit>& visits) {
  for (const Visit& incoming : visits) {
    RecordArrival(object, incoming.arrived);
    Visit* local = FindVisit(object, incoming.arrived);
    // Handed-over links fill gaps but never erase locally-known links: the
    // adopter may already hold fresher M2/M3 state for a shared visit.
    if (incoming.from.has_value() && !local->from.has_value()) {
      local->from = incoming.from;
      local->from_arrived = incoming.from_arrived;
    }
    if (incoming.to.has_value() && !local->to.has_value()) {
      local->to = incoming.to;
      local->to_arrived = incoming.to_arrived;
    }
  }
}

IopStore::DwellStats IopStore::DwellStatistics() const {
  DwellStats stats;
  double sum = 0.0;
  for (const auto& [object, visits] : visits_) {
    for (const auto& visit : visits) {
      if (!visit.to.has_value() || !visit.to->Valid() ||
          !visit.to_arrived.has_value()) {
        continue;  // Still open.
      }
      const double dwell = *visit.to_arrived - visit.arrived;
      if (stats.completed_visits == 0) {
        stats.min_ms = stats.max_ms = dwell;
      } else {
        stats.min_ms = std::min(stats.min_ms, dwell);
        stats.max_ms = std::max(stats.max_ms, dwell);
      }
      ++stats.completed_visits;
      sum += dwell;
    }
  }
  if (stats.completed_visits > 0) {
    stats.mean_ms = sum / static_cast<double>(stats.completed_visits);
  }
  return stats;
}

}  // namespace peertrack::moods
