#include "moods/receptor.hpp"

namespace peertrack::moods {

void Receptor::Read(const Object& object, Time at) {
  ++raw_reads_;
  if (dedup_window_ > 0.0) {
    const auto it = last_read_.find(object.Key());
    if (it != last_read_.end() && at - it->second < dedup_window_) {
      it->second = at;
      return;  // Duplicate read within the window.
    }
    last_read_[object.Key()] = at;
  }
  ++captures_;
  if (sink_) sink_(object, at);
}

}  // namespace peertrack::moods
