#pragma once
// Receptors — the capture devices at fixed locations (paper Section II-A).
//
// A receptor (e.g. an RFID reader at a warehouse gate) belongs to exactly
// one node and turns the physical object flow into the information flow by
// emitting capture events. Per the paper we assume readings are already
// cleansed; the receptor optionally models *redundant* reads (the same tag
// read by several antennas within a short window), which the node-level
// dedup absorbs — exercising the same code path real deployments need.

#include <functional>
#include <string>

#include "moods/object.hpp"
#include "util/rng.hpp"

namespace peertrack::moods {

class Receptor {
 public:
  /// Sink invoked for every (deduplicated) capture.
  using CaptureSink = std::function<void(const Object& object, Time at)>;

  Receptor(std::string name, CaptureSink sink)
      : name_(std::move(name)), sink_(std::move(sink)) {}

  const std::string& Name() const noexcept { return name_; }

  /// Physical read of `object` at time `at`. Reads of the same object
  /// within the dedup window are collapsed into one capture.
  void Read(const Object& object, Time at);

  /// Window within which repeated reads of one object are duplicates.
  void SetDedupWindow(Time window_ms) noexcept { dedup_window_ = window_ms; }

  std::uint64_t RawReads() const noexcept { return raw_reads_; }
  std::uint64_t Captures() const noexcept { return captures_; }

 private:
  std::string name_;
  CaptureSink sink_;
  Time dedup_window_ = 0.0;
  std::unordered_map<hash::UInt160, Time, hash::UInt160Hasher> last_read_;
  std::uint64_t raw_reads_ = 0;
  std::uint64_t captures_ = 0;
};

}  // namespace peertrack::moods
