#pragma once
// Ground-truth trajectory oracle.
//
// Implements the MOODS functions L(o, t) and TR(o, t_start, t_end) from
// complete, out-of-band knowledge of every movement (paper Section II-B,
// Equations 1-3). The distributed protocols must agree with this oracle;
// every query test and experiment validates against it.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "moods/object.hpp"

namespace peertrack::moods {

/// The oracle identifies locations by node index (position in the
/// experiment's node table), keeping it independent of overlay details.
using NodeIndex = std::uint32_t;
constexpr NodeIndex kNowhere = 0xFFFFFFFFu;

struct OracleVisit {
  NodeIndex node = kNowhere;
  Time arrived = 0.0;
};

class TrajectoryOracle {
 public:
  /// Record that `object` was captured at `node` at time `arrived`.
  /// Arrivals may be recorded out of order.
  void RecordMovement(const hash::UInt160& object, NodeIndex node, Time arrived);

  /// L(o, t): where the object was at time t; kNowhere before its first
  /// appearance or if unknown (Equation 1's "nil").
  NodeIndex Locate(const hash::UInt160& object, Time at) const;

  /// TR(o, t1, t2): the sorted list of nodes visited in [t1, t2]
  /// (Equation 2/3). A visit counts if the object was at the node at any
  /// point of the window, so the visit that starts before t1 but is still
  /// current at t1 is included.
  std::vector<OracleVisit> Trace(const hash::UInt160& object, Time from, Time to) const;

  /// Full lifetime trajectory.
  const std::vector<OracleVisit>* FullTrace(const hash::UInt160& object) const;

  std::size_t ObjectCount() const noexcept { return trips_.size(); }

  /// Iterate every (object, sorted trajectory) pair. Order is unspecified.
  /// Used by sweeps that validate distributed state against ground truth.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    for (const auto& [object, trips] : trips_) fn(object, trips);
  }

 private:
  std::unordered_map<hash::UInt160, std::vector<OracleVisit>, hash::UInt160Hasher>
      trips_;
};

}  // namespace peertrack::moods
