#pragma once
// MOODS object model (paper Section II-B).
//
// Objects are identified by a raw id (e.g. an EPC URI); the ring key is
// SHA1(raw id), cached at construction since every protocol step needs it.

#include <string>

#include "hash/keyspace.hpp"

namespace peertrack::moods {

/// Simulated time, in milliseconds (same axis as sim::Time).
using Time = double;

class Object {
 public:
  Object() = default;
  explicit Object(std::string raw_id)
      : raw_id_(std::move(raw_id)), key_(hash::ObjectKey(raw_id_)) {}

  const std::string& RawId() const noexcept { return raw_id_; }
  const hash::UInt160& Key() const noexcept { return key_; }

  friend bool operator==(const Object& a, const Object& b) noexcept {
    return a.key_ == b.key_;
  }

 private:
  std::string raw_id_;
  hash::UInt160 key_;
};

}  // namespace peertrack::moods
