#pragma once
// IOP — Information of Object Path (paper Sections II-C and III).
//
// Each node stores, for every object it has observed, the segment of the
// object's path it witnessed: when the object arrived, which node it came
// from (filled in by the gateway's M3 message) and which node it departed
// to (filled in later by M2). Across nodes these records form a
// distributed doubly-linked list sorted by time — the structure trace
// queries walk.
//
// The paper implicitly assumes an object visits a node at most once; real
// supply chains revisit (returns, re-distribution), so IopStore keeps a
// time-ordered visit list per object and every link carries the arrival
// time that identifies the visit.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chord/types.hpp"
#include "moods/object.hpp"

namespace peertrack::moods {

/// One witnessed visit of an object at this node.
struct Visit {
  Time arrived = 0.0;
  /// Node the object came from, and its arrival time there (identifies the
  /// predecessor visit). Unset while the gateway's M3 is outstanding;
  /// NodeRef{} (invalid) once confirmed "first appearance".
  std::optional<chord::NodeRef> from;
  std::optional<Time> from_arrived;
  /// Node the object departed to, and its arrival time there. Unset while
  /// the object is still here (or M2 has not arrived).
  std::optional<chord::NodeRef> to;
  std::optional<Time> to_arrived;
};

/// Per-node IOP repository.
class IopStore {
 public:
  /// Record an arrival (capture). Returns the visit index.
  std::size_t RecordArrival(const hash::UInt160& object, Time arrived);

  /// Apply an M3 update: the visit at `arrived` came from `from` (invalid
  /// NodeRef = first appearance), where it had arrived at `from_arrived`.
  /// Creates the visit if the capture has not been recorded locally yet
  /// (messages can arrive out of order).
  void SetFrom(const hash::UInt160& object, Time arrived, const chord::NodeRef& from,
               std::optional<Time> from_arrived);

  /// Apply an M2 update: the visit that was current at `to_arrived` left to
  /// node `to`, arriving there at `to_arrived`.
  void SetTo(const hash::UInt160& object, const chord::NodeRef& to, Time to_arrived);

  bool Knows(const hash::UInt160& object) const;

  /// All visits of `object` at this node, sorted by arrival time. Empty
  /// when unknown.
  const std::vector<Visit>* VisitsOf(const hash::UInt160& object) const;

  /// The latest visit with arrival time <= `at`; nullptr if none.
  const Visit* VisitAtOrBefore(const hash::UInt160& object, Time at) const;

  /// The visit with exactly this arrival time (the id used in IOP links).
  const Visit* VisitAt(const hash::UInt160& object, Time arrived) const;

  /// The visit an M2 `to_arrived` refers to: the latest visit that began
  /// STRICTLY before the object arrived at its next stop (same selection
  /// rule as SetTo, exposed so the M2 handler can inspect the existing
  /// link before overwriting it).
  const Visit* DepartingVisit(const hash::UInt160& object, Time to_arrived) const;

  std::size_t ObjectCount() const noexcept { return visits_.size(); }
  std::uint64_t VisitCount() const noexcept { return total_visits_; }

  /// Objects whose latest visit here has no outgoing link as of `at` —
  /// i.e. the goods currently on this node's premises at that time (the
  /// local inverse of L: "what is here?").
  std::vector<hash::UInt160> InventoryAt(Time at) const;

  /// Dwell-time statistics over completed visits (departure - arrival);
  /// open visits are excluded. (mean/min/max in ms, plus count).
  struct DwellStats {
    std::uint64_t completed_visits = 0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
  };
  DwellStats DwellStatistics() const;

  // --- Graceful-leave handoff (see DESIGN.md §8) -----------------------

  /// Rewrite one link of the visit identified by (`object`, `arrived`):
  /// the to-link when `fix_to`, else the from-link. Only the node ref is
  /// replaced — the linked arrival time still identifies the same visit,
  /// which now lives at `new_node`. Returns false if the visit or the link
  /// does not exist (repoint raced a record that was never created).
  bool RepointLink(const hash::UInt160& object, Time arrived, bool fix_to,
                   const chord::NodeRef& new_node);

  /// Rewrite every from/to link that references `old_actor` to point at
  /// `new_node` instead (self-link rewrite before a handoff extraction).
  void RepointNode(sim::ActorId old_actor, const chord::NodeRef& new_node);

  /// Remove and return every visit list (graceful-leave handoff).
  std::vector<std::pair<hash::UInt160, std::vector<Visit>>> ExtractAll();

  /// Merge visits handed over by a departing node into this store,
  /// preserving time order. Visits at already-known timestamps keep the
  /// link-richer record (handed-over links win over unset ones).
  void AdoptVisits(const hash::UInt160& object, const std::vector<Visit>& visits);

  /// Visit-list iteration (snapshotting, audits). Order is unspecified.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    for (const auto& [object, visits] : visits_) fn(object, visits);
  }

  /// Approximate serialized size of one visit record on the wire.
  static constexpr std::size_t kVisitWireBytes = 20 + 8 + 2 * (24 + 8);

 private:
  Visit* FindVisit(const hash::UInt160& object, Time arrived);

  std::unordered_map<hash::UInt160, std::vector<Visit>, hash::UInt160Hasher> visits_;
  std::uint64_t total_visits_ = 0;
};

}  // namespace peertrack::moods
