#pragma once
// Snapshot/restore of a node's local repository.
//
// The paper's architecture keeps traceability data "in local repositories
// of participants"; a real organization restarts its node without losing
// witnessed history. These functions serialize an IopStore (and the
// tracking layer reuses the same format for gateway index entries) to a
// self-describing binary blob with a magic/version header.

#include <cstdint>
#include <vector>

#include "moods/iop.hpp"

namespace peertrack::moods {

constexpr std::uint32_t kSnapshotMagic = 0x50545231;  // "PTR1"

/// Serialize every visit of every object.
std::vector<std::uint8_t> SaveIopStore(const IopStore& store);

/// Rebuild a store from a snapshot. Returns false (leaving `store`
/// partially filled only on true corruption mid-way) when the blob is
/// malformed or has the wrong magic/version.
bool LoadIopStore(const std::vector<std::uint8_t>& blob, IopStore& store);

}  // namespace peertrack::moods
