#include "moods/oracle.hpp"

#include <algorithm>

namespace peertrack::moods {

void TrajectoryOracle::RecordMovement(const hash::UInt160& object, NodeIndex node,
                                      Time arrived) {
  auto& trip = trips_[object];
  auto position = std::upper_bound(
      trip.begin(), trip.end(), arrived,
      [](Time t, const OracleVisit& v) { return t < v.arrived; });
  trip.insert(position, OracleVisit{node, arrived});
}

NodeIndex TrajectoryOracle::Locate(const hash::UInt160& object, Time at) const {
  const auto it = trips_.find(object);
  if (it == trips_.end()) return kNowhere;
  const auto& trip = it->second;
  auto position = std::upper_bound(
      trip.begin(), trip.end(), at,
      [](Time t, const OracleVisit& v) { return t < v.arrived; });
  if (position == trip.begin()) return kNowhere;
  return std::prev(position)->node;
}

std::vector<OracleVisit> TrajectoryOracle::Trace(const hash::UInt160& object,
                                                 Time from, Time to) const {
  std::vector<OracleVisit> result;
  const auto it = trips_.find(object);
  if (it == trips_.end() || from > to) return result;
  const auto& trip = it->second;
  for (std::size_t i = 0; i < trip.size(); ++i) {
    const Time departs = i + 1 < trip.size() ? trip[i + 1].arrived : to;
    const bool overlaps = trip[i].arrived <= to && departs >= from;
    if (overlaps) result.push_back(trip[i]);
  }
  return result;
}

const std::vector<OracleVisit>* TrajectoryOracle::FullTrace(
    const hash::UInt160& object) const {
  const auto it = trips_.find(object);
  return it == trips_.end() ? nullptr : &it->second;
}

}  // namespace peertrack::moods
