#include "moods/snapshot.hpp"

#include "util/bytes.hpp"

namespace peertrack::moods {

namespace {

constexpr std::uint32_t kVersion = 1;

void WriteKey(util::ByteWriter& writer, const hash::UInt160& key) {
  for (const std::uint32_t word : key.words()) writer.U32(word);
}

hash::UInt160 ReadKey(util::ByteReader& reader) {
  hash::UInt160::Words words;
  for (auto& word : words) word = reader.U32();
  return hash::UInt160(words);
}

void WriteLink(util::ByteWriter& writer, const std::optional<chord::NodeRef>& node,
               const std::optional<Time>& at) {
  const bool present = node.has_value();
  writer.Bool(present);
  if (!present) return;
  writer.Bool(node->Valid());
  WriteKey(writer, node->id);
  writer.U32(node->actor);
  writer.Bool(at.has_value());
  writer.F64(at.value_or(0.0));
}

void ReadLink(util::ByteReader& reader, std::optional<chord::NodeRef>& node,
              std::optional<Time>& at) {
  if (!reader.Bool()) {
    node.reset();
    at.reset();
    return;
  }
  const bool valid = reader.Bool();
  chord::NodeRef ref;
  ref.id = ReadKey(reader);
  ref.actor = reader.U32();
  node = valid ? ref : chord::NodeRef{};
  const bool has_time = reader.Bool();
  const Time time = reader.F64();
  at = has_time ? std::optional<Time>(time) : std::nullopt;
}

}  // namespace

std::vector<std::uint8_t> SaveIopStore(const IopStore& store) {
  util::ByteWriter writer;
  writer.U32(kSnapshotMagic);
  writer.U32(kVersion);
  writer.U64(store.ObjectCount());
  store.ForEachObject([&](const hash::UInt160& object, const std::vector<Visit>& visits) {
    WriteKey(writer, object);
    writer.U64(visits.size());
    for (const Visit& visit : visits) {
      writer.F64(visit.arrived);
      WriteLink(writer, visit.from, visit.from_arrived);
      WriteLink(writer, visit.to, visit.to_arrived);
    }
  });
  return writer.Take();
}

bool LoadIopStore(const std::vector<std::uint8_t>& blob, IopStore& store) {
  util::ByteReader reader(blob);
  if (reader.U32() != kSnapshotMagic || reader.U32() != kVersion) return false;
  const std::uint64_t objects = reader.U64();
  for (std::uint64_t i = 0; i < objects && reader.ok(); ++i) {
    const hash::UInt160 object = ReadKey(reader);
    const std::uint64_t count = reader.U64();
    for (std::uint64_t v = 0; v < count && reader.ok(); ++v) {
      const Time arrived = reader.F64();
      store.RecordArrival(object, arrived);

      std::optional<chord::NodeRef> from;
      std::optional<Time> from_at;
      ReadLink(reader, from, from_at);
      if (from.has_value()) {
        store.SetFrom(object, arrived, *from, from_at);
      }
      std::optional<chord::NodeRef> to;
      std::optional<Time> to_at;
      ReadLink(reader, to, to_at);
      if (to.has_value() && to->Valid() && to_at.has_value()) {
        store.SetTo(object, *to, *to_at);
      }
    }
  }
  return reader.ok() && reader.AtEnd();
}

}  // namespace peertrack::moods
