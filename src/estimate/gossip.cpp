#include "estimate/gossip.hpp"

#include <algorithm>

namespace peertrack::estimate {

namespace {

struct PushPullRequest final : rpc::RequestBase<PushPullRequest> {
  double value = 0.0;
  std::string_view TypeName() const noexcept override { return "gossip.push"; }
  std::size_t ApproxBytes() const noexcept override { return 8; }
};

struct PushPullResponse final : rpc::ResponseBase<PushPullResponse> {
  double value = 0.0;
  std::string_view TypeName() const noexcept override { return "gossip.pull"; }
  std::size_t ApproxBytes() const noexcept override { return 8; }
};

}  // namespace

GossipAgent::GossipAgent(sim::Network& network, util::Rng& rng)
    : network_(network),
      rng_(rng),
      self_(network.Register(*this)),
      rpc_(network),
      server_(network) {
  rpc_.Bind(self_);
  server_.Bind(self_);
  server_.Handle<PushPullRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<PushPullRequest> push) {
        // Responder side of push-pull: average and return the result so
        // both ends hold the same value (mass conservation).
        auto response = std::make_unique<PushPullResponse>();
        const double average = (value_ + push->value) / 2.0;
        response->value = average;
        value_ = average;
        return response;
      });
  rpc_.RouteResponses<PushPullResponse>(dispatcher_);
}

void GossipAgent::Start(double round_ms, std::size_t rounds) {
  round_ms_ = round_ms;
  rounds_left_ = rounds;
  // Desynchronise round starts so exchanges interleave like a real
  // deployment rather than phase-locking.
  network_.simulator().ScheduleAfter(rng_.NextDouble(0.0, round_ms), [this] {
    DoRound();
  });
}

void GossipAgent::DoRound() {
  if (rounds_left_ == 0) return;
  --rounds_left_;
  if (!peers_.empty()) {
    const sim::ActorId peer =
        peers_[static_cast<std::size_t>(rng_.NextBelow(peers_.size()))];
    auto request = std::make_unique<PushPullRequest>();
    request->value = value_;
    obs::TraceContext span;
    if (network_.tracer().Enabled()) {
      span = network_.tracer().StartTrace("gossip.round", self_,
                                          network_.simulator().Now());
      request->trace = span;
    }
    rpc_.Call<PushPullResponse>(
        peer, std::move(request), policy_,
        [this, span](rpc::Status status, std::unique_ptr<PushPullResponse> pull) {
          // The responder already averaged; adopt its result to conserve
          // mass. An exhausted exchange (down peer) leaves our value as-is.
          network_.tracer().EndSpan(span, network_.simulator().Now(),
                                    status == rpc::Status::kOk ? "ok" : "timeout");
          if (status == rpc::Status::kOk) value_ = pull->value;
        });
  }
  if (rounds_left_ > 0) {
    network_.simulator().ScheduleAfter(round_ms_, [this] { DoRound(); });
  }
}

void GossipAgent::OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  dispatcher_.Dispatch(from, message);
}

double GossipAgent::EstimatedSize() const noexcept {
  if (value_ <= 0.0) return 1.0;
  return std::max(1.0, 1.0 / value_);
}

SizeEstimationEpoch::SizeEstimationEpoch(sim::Network& network, util::Rng& rng,
                                         std::size_t n) {
  agents_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents_.push_back(std::make_unique<GossipAgent>(network, rng));
  }
  std::vector<sim::ActorId> everyone;
  everyone.reserve(n);
  for (const auto& agent : agents_) everyone.push_back(agent->Id());
  for (auto& agent : agents_) {
    std::vector<sim::ActorId> peers;
    peers.reserve(n - 1);
    for (const sim::ActorId id : everyone) {
      if (id != agent->Id()) peers.push_back(id);
    }
    agent->SetPeers(std::move(peers));
  }
  if (!agents_.empty()) agents_.front()->SetValue(1.0);
}

void SizeEstimationEpoch::Start(double round_ms, std::size_t rounds) {
  for (auto& agent : agents_) agent->Start(round_ms, rounds);
}

std::vector<double> SizeEstimationEpoch::Estimates() const {
  std::vector<double> estimates;
  estimates.reserve(agents_.size());
  for (const auto& agent : agents_) estimates.push_back(agent->EstimatedSize());
  return estimates;
}

double SizeEstimationEpoch::MeanEstimate() const {
  const auto estimates = Estimates();
  double sum = 0.0;
  for (const double e : estimates) sum += e;
  return estimates.empty() ? 0.0 : sum / static_cast<double>(estimates.size());
}

}  // namespace peertrack::estimate
