#pragma once
// Epidemic network-size estimation (Jelasity & Montresor, ICDCS'04 — the
// paper's reference [14] for obtaining Nn).
//
// Push-pull averaging: one initiator starts with value 1, everyone else
// with 0. Each round every node exchanges values with a uniformly random
// peer and both adopt the average. The field's mean is invariant (1/N), so
// after O(log N) rounds every node's value concentrates around 1/N and
// 1/value estimates the network size — which drives Lp adaptation without
// any central census.

#include <cstdint>
#include <memory>
#include <vector>

#include "rpc/dispatcher.hpp"
#include "rpc/rpc.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace peertrack::estimate {

/// One node's participant state in the averaging protocol.
class GossipAgent final : public sim::Actor {
 public:
  GossipAgent(sim::Network& network, util::Rng& rng);

  sim::ActorId Id() const noexcept { return self_; }
  double Value() const noexcept { return value_; }
  void SetValue(double value) noexcept { value_ = value; }

  /// Peers this agent may gossip with (overlay neighbours; in PeerTrack
  /// these would be the Chord successor list + fingers).
  void SetPeers(std::vector<sim::ActorId> peers) { peers_ = std::move(peers); }

  /// Start periodic rounds: every `round_ms`, exchange with one random
  /// peer, `rounds` times in total.
  void Start(double round_ms, std::size_t rounds);

  /// Deadline/backoff for each push-pull exchange; an exchange whose peer
  /// never answers leaves the local value unchanged.
  void SetRetryPolicy(const rpc::RetryPolicy& policy) { policy_ = policy; }

  /// Current size estimate (1 / value); clamped to >= 1.
  double EstimatedSize() const noexcept;

  void OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override;

 private:
  void DoRound();

  sim::Network& network_;
  util::Rng& rng_;
  sim::ActorId self_;
  rpc::Dispatcher dispatcher_;
  rpc::RpcClient rpc_;
  rpc::RpcServer server_;
  rpc::RetryPolicy policy_;
  double value_ = 0.0;
  std::vector<sim::ActorId> peers_;
  std::size_t rounds_left_ = 0;
  double round_ms_ = 0.0;
};

/// Convenience harness: builds `n` agents on the given network with
/// full-membership peer lists, runs `rounds` rounds, and reports the
/// per-node estimates.
class SizeEstimationEpoch {
 public:
  SizeEstimationEpoch(sim::Network& network, util::Rng& rng, std::size_t n);

  /// Schedule the epoch; call network.simulator().Run() afterwards.
  void Start(double round_ms, std::size_t rounds);

  std::vector<double> Estimates() const;
  double MeanEstimate() const;

 private:
  std::vector<std::unique_ptr<GossipAgent>> agents_;
};

}  // namespace peertrack::estimate
