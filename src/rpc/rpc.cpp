#include "rpc/rpc.hpp"

#include <cmath>

#include "util/format.hpp"

namespace peertrack::rpc {

double RetryPolicy::TimeoutForAttempt(int attempt) const noexcept {
  return base_timeout_ms * std::pow(backoff_factor, attempt);
}

CallId RpcClient::StartCall(sim::ActorId to, std::unique_ptr<Request> request,
                            const RetryPolicy& policy, ErasedCallback callback) {
  const CallId id = next_call_id_++;
  request->call_id = id;
  auto [it, inserted] = pending_.emplace(
      id, PendingCall{to, std::move(request), policy, 0, {}, std::move(callback), {}});
  (void)inserted;
  SendAttempt(id, it->second);
  return id;
}

void RpcClient::SendAttempt(CallId id, PendingCall& call) {
  // Send a clone and keep the prototype: the network owns in-flight
  // messages, and a retry may overlap a still-travelling earlier attempt.
  std::unique_ptr<Request> attempt = call.request->CloneRequest();
  obs::Tracer& tracer = network_.tracer();
  if (tracer.Enabled() && call.request->trace.Valid()) {
    // One span per wire attempt, parented on the caller's span; the
    // attempt's context travels in the clone so server-side events nest
    // under the attempt that actually reached them.
    call.attempt_span = tracer.StartSpan(
        call.request->trace,
        util::Format("rpc.{}#{}", call.request->TypeName(), call.attempt),
        self_, network_.simulator().Now());
    attempt->trace = call.attempt_span;
  }
  network_.Send(self_, call.to, std::move(attempt));
  call.deadline = network_.simulator().ScheduleAfter(
      JitteredTimeout(call.policy, call.attempt), [this, id] { OnDeadline(id); });
}

void RpcClient::OnDeadline(CallId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // completed or cancelled under a lazy timer
  PendingCall& call = it->second;
  if (call.attempt + 1 < call.policy.max_attempts) {
    ++call.attempt;
    network_.metrics().RecordRpcRetry(*call.request);
    network_.tracer().EndSpan(call.attempt_span, network_.simulator().Now(),
                              "no-reply");
    SendAttempt(id, call);
    return;
  }
  network_.metrics().RecordRpcTimeout(*call.request);
  network_.tracer().EndSpan(call.attempt_span, network_.simulator().Now(),
                            "timeout");
  ErasedCallback callback = std::move(call.callback);
  // Erase before invoking: the callback may start new calls, cancel
  // others, or tear the client down via CancelAll.
  pending_.erase(it);
  if (callback) callback(Status::kTimeout, nullptr);
}

void RpcClient::CompleteCall(std::unique_ptr<Response> response) {
  auto it = pending_.find(response->call_id);
  if (it == pending_.end()) return;  // late duplicate after retry or timeout
  it->second.deadline.Cancel();
  network_.tracer().EndSpan(it->second.attempt_span, network_.simulator().Now(),
                            "ok");
  ErasedCallback callback = std::move(it->second.callback);
  pending_.erase(it);
  if (callback) callback(Status::kOk, std::move(response));
}

void RpcClient::Cancel(CallId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.deadline.Cancel();
  network_.tracer().EndSpan(it->second.attempt_span, network_.simulator().Now(),
                            "cancelled");
  pending_.erase(it);
}

void RpcClient::CancelAll() {
  const double now = network_.simulator().Now();
  for (auto& [id, call] : pending_) {
    call.deadline.Cancel();
    network_.tracer().EndSpan(call.attempt_span, now, "cancelled");
  }
  pending_.clear();
}

double RpcClient::JitteredTimeout(const RetryPolicy& policy, int attempt) {
  const double timeout = policy.TimeoutForAttempt(attempt);
  if (policy.jitter <= 0.0) return timeout;
  return timeout * (1.0 + network_.rng().NextDouble(-policy.jitter, policy.jitter));
}

}  // namespace peertrack::rpc
