#include "rpc/rpc.hpp"

#include <cmath>

namespace peertrack::rpc {

double RetryPolicy::TimeoutForAttempt(int attempt) const noexcept {
  return base_timeout_ms * std::pow(backoff_factor, attempt);
}

CallId RpcClient::StartCall(sim::ActorId to, std::unique_ptr<Request> request,
                            const RetryPolicy& policy, ErasedCallback callback) {
  const CallId id = next_call_id_++;
  request->call_id = id;
  auto [it, inserted] = pending_.emplace(
      id, PendingCall{to, std::move(request), policy, 0, {}, std::move(callback)});
  (void)inserted;
  SendAttempt(id, it->second);
  return id;
}

void RpcClient::SendAttempt(CallId id, PendingCall& call) {
  // Send a clone and keep the prototype: the network owns in-flight
  // messages, and a retry may overlap a still-travelling earlier attempt.
  network_.Send(self_, call.to, call.request->CloneRequest());
  call.deadline = network_.simulator().ScheduleAfter(
      JitteredTimeout(call.policy, call.attempt), [this, id] { OnDeadline(id); });
}

void RpcClient::OnDeadline(CallId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // completed or cancelled under a lazy timer
  PendingCall& call = it->second;
  if (call.attempt + 1 < call.policy.max_attempts) {
    ++call.attempt;
    network_.metrics().RecordRpcRetry(call.request->TypeName());
    SendAttempt(id, call);
    return;
  }
  network_.metrics().RecordRpcTimeout(call.request->TypeName());
  ErasedCallback callback = std::move(call.callback);
  // Erase before invoking: the callback may start new calls, cancel
  // others, or tear the client down via CancelAll.
  pending_.erase(it);
  if (callback) callback(Status::kTimeout, nullptr);
}

void RpcClient::CompleteCall(std::unique_ptr<Response> response) {
  auto it = pending_.find(response->call_id);
  if (it == pending_.end()) return;  // late duplicate after retry or timeout
  it->second.deadline.Cancel();
  ErasedCallback callback = std::move(it->second.callback);
  pending_.erase(it);
  if (callback) callback(Status::kOk, std::move(response));
}

void RpcClient::Cancel(CallId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.deadline.Cancel();
  pending_.erase(it);
}

void RpcClient::CancelAll() {
  for (auto& [id, call] : pending_) call.deadline.Cancel();
  pending_.clear();
}

double RpcClient::JitteredTimeout(const RetryPolicy& policy, int attempt) {
  const double timeout = policy.TimeoutForAttempt(attempt);
  if (policy.jitter <= 0.0) return timeout;
  return timeout * (1.0 + network_.rng().NextDouble(-policy.jitter, policy.jitter));
}

}  // namespace peertrack::rpc
