#pragma once
// Request/response RPC on top of sim::Network.
//
// Every query-style exchange in the repo (chord lookup steps, DHT get/put,
// trace probes, IOP walks, flood probes, gossip push-pull) is a request
// that expects exactly one response. This layer centralizes what each
// protocol used to hand-roll: correlation ids matching responses to
// outstanding calls, per-call deadlines on the Simulator, and retry with
// exponential backoff + jitter. A call always terminates — with Status::kOk
// and the response, or Status::kTimeout after exhausting its attempts —
// so callers never hang on a lossy wire or a dead peer. Retries and
// exhausted calls are accounted in sim::Metrics (rpc_retries /
// rpc_timeouts) so experiments can report recovery cost.
//
// One-way traffic (arrival reports, index update batches, replica pushes)
// stays on plain Network::Send; only exchanges that semantically await an
// answer go through RpcClient.
//
// Tracing: when the caller stamps a trace context on the request
// (request->trace = span), every send attempt opens a child span
// "rpc.<type>#<attempt>" under it — so retries show up as sibling attempt
// spans in the query's causal tree — and the attempt's context is what
// travels on the wire, giving server-side events the attempt as parent.
// Responses echo the request's context back.

#include <cstdint>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "rpc/dispatcher.hpp"
#include "sim/network.hpp"
#include "util/unique_function.hpp"

namespace peertrack::rpc {

/// Correlation id carried by every request/response pair. Unique per
/// RpcClient, never reused within a simulation.
using CallId = std::uint64_t;

/// Accounted wire size of the correlation id, included in every
/// request/response ApproxBytes().
constexpr std::size_t kCallIdBytes = sizeof(CallId);

enum class Status {
  kOk,       ///< Response arrived within some attempt's deadline.
  kTimeout,  ///< All attempts exhausted without a response.
};

/// Per-call retry configuration. Attempt k (0-based) waits
/// base_timeout_ms * backoff_factor^k, stretched by a uniform
/// +-jitter fraction to avoid synchronized retry storms.
struct RetryPolicy {
  int max_attempts = 3;
  double base_timeout_ms = 500.0;
  double backoff_factor = 2.0;
  double jitter = 0.1;

  /// Deterministic (un-jittered) deadline for 0-based attempt `attempt`.
  double TimeoutForAttempt(int attempt) const noexcept;

  /// Policy for exchanges that must not be retried (non-idempotent or
  /// already retried at a higher level): single attempt, same deadline.
  static RetryPolicy NoRetry(double timeout_ms) {
    return RetryPolicy{1, timeout_ms, 1.0, 0.0};
  }
};

/// Base of all RPC requests. Concrete types derive from RequestBase, which
/// supplies TypeId() and copy-based cloning (retries re-send a fresh clone,
/// so in-flight copies never alias).
class Request : public sim::Message {
 public:
  CallId call_id = 0;

  virtual std::unique_ptr<Request> CloneRequest() const = 0;
};

template <typename Derived>
class RequestBase : public Request {
 public:
  sim::MsgTypeId TypeId() const noexcept final { return sim::MsgTypeIdOf<Derived>(); }
  std::unique_ptr<Request> CloneRequest() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Base of all RPC responses; carries the originating call's id back.
class Response : public sim::Message {
 public:
  CallId call_id = 0;
};

template <typename Derived>
class ResponseBase : public Response {
 public:
  sim::MsgTypeId TypeId() const noexcept final { return sim::MsgTypeIdOf<Derived>(); }
};

/// Issues calls and completes them. Owned by the calling actor; responses
/// must be routed to it by registering each expected response type once via
/// RouteResponses on the actor's Dispatcher.
class RpcClient {
 public:
  explicit RpcClient(sim::Network& network) : network_(network) {}

  /// Set the owning actor's id (required before the first Call).
  void Bind(sim::ActorId self) { self_ = self; }

  /// Register response type Resp on `dispatcher` to complete this client's
  /// calls. Each response type routes to exactly one client per dispatcher.
  template <typename Resp>
  void RouteResponses(Dispatcher& dispatcher) {
    static_assert(std::is_base_of_v<Response, Resp>,
                  "routed type must derive from rpc::Response");
    dispatcher.On<Resp>([this](sim::ActorId, std::unique_ptr<Resp> response) {
      CompleteCall(std::unique_ptr<Response>(std::move(response)));
    });
  }

  /// Send `request` to `to`; invoke `callback(status, response)` exactly
  /// once — response is non-null iff status is kOk. Retries per `policy`.
  /// The callback may issue new calls or cancel others.
  template <typename Resp, typename Req, typename F>
  CallId Call(sim::ActorId to, std::unique_ptr<Req> request,
              const RetryPolicy& policy, F callback) {
    static_assert(std::is_base_of_v<Request, Req>,
                  "Call payload must derive from rpc::Request");
    static_assert(std::is_base_of_v<Response, Resp>,
                  "Call response must derive from rpc::Response");
    return StartCall(
        to, std::move(request), policy,
        [cb = std::move(callback)](Status status,
                                   std::unique_ptr<Response> response) mutable {
          cb(status, std::unique_ptr<Resp>(static_cast<Resp*>(response.release())));
        });
  }

  /// Abandon one call / all calls silently (no callback). Used when the
  /// owning node crashes or a query is finished early.
  void Cancel(CallId id);
  void CancelAll();

  std::size_t PendingCalls() const noexcept { return pending_.size(); }

 private:
  using ErasedCallback = util::UniqueFunction<void(Status, std::unique_ptr<Response>)>;

  struct PendingCall {
    sim::ActorId to = sim::kInvalidActor;
    std::unique_ptr<Request> request;  // prototype; attempts send clones
    RetryPolicy policy;
    int attempt = 0;
    sim::EventHandle deadline;
    ErasedCallback callback;
    obs::TraceContext attempt_span;  ///< Span of the in-flight attempt.
  };

  CallId StartCall(sim::ActorId to, std::unique_ptr<Request> request,
                   const RetryPolicy& policy, ErasedCallback callback);
  void SendAttempt(CallId id, PendingCall& call);
  void CompleteCall(std::unique_ptr<Response> response);
  void OnDeadline(CallId id);
  double JitteredTimeout(const RetryPolicy& policy, int attempt);

  sim::Network& network_;
  sim::ActorId self_ = sim::kInvalidActor;
  CallId next_call_id_ = 1;
  std::unordered_map<CallId, PendingCall> pending_;
};

/// Server half: registers request handlers that produce a response, and
/// echoes the correlation id back to the caller.
class RpcServer {
 public:
  explicit RpcServer(sim::Network& network) : network_(network) {}

  void Bind(sim::ActorId self) { self_ = self; }

  /// Register `handler(from, request) -> std::unique_ptr<Response>` for
  /// request type Req. A null return sends no reply (the caller's retry /
  /// timeout machinery handles the silence).
  template <typename Req, typename F>
  void Handle(Dispatcher& dispatcher, F handler) {
    static_assert(std::is_base_of_v<Request, Req>,
                  "handled type must derive from rpc::Request");
    dispatcher.On<Req>(
        [this, h = std::move(handler)](sim::ActorId from,
                                       std::unique_ptr<Req> request) mutable {
          const CallId id = request->call_id;
          const obs::TraceContext ctx = request->trace;
          std::unique_ptr<Response> response = h(from, std::move(request));
          if (!response) return;
          response->call_id = id;
          response->trace = ctx;
          network_.Send(self_, from, std::move(response));
        });
  }

 private:
  sim::Network& network_;
  sim::ActorId self_ = sim::kInvalidActor;
};

}  // namespace peertrack::rpc
