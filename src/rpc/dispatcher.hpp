#pragma once
// Type-indexed message dispatch.
//
// One Dispatcher per actor: protocol code registers a typed handler per
// concrete message class (On<M>), and the actor's OnMessage body shrinks to
// a single Dispatch() call. Lookup is an O(1) vector index on the message's
// dense MsgTypeId — this replaces the dynamic_cast if-chains that used to
// walk every message type on every delivery.

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/network.hpp"
#include "util/unique_function.hpp"

namespace peertrack::rpc {

class Dispatcher {
 public:
  using Handler =
      util::UniqueFunction<void(sim::ActorId, std::unique_ptr<sim::Message>)>;

  /// Register `handler` for message class M. The handler receives the
  /// sender and the downcast message. Re-registering M replaces the
  /// previous handler (used when an app layer overrides a default).
  template <typename M, typename F>
  void On(F handler) {
    static_assert(std::is_base_of_v<sim::Message, M>,
                  "dispatch target must derive from sim::Message");
    Install(sim::MsgTypeIdOf<M>(),
            [h = std::move(handler)](sim::ActorId from,
                                     std::unique_ptr<sim::Message> message) mutable {
              h(from, std::unique_ptr<M>(static_cast<M*>(message.release())));
            });
  }

  /// Route `message` to its registered handler. Returns false (message
  /// untouched) when no handler is registered, so callers can fall through
  /// to an app-level handler or log.
  bool Dispatch(sim::ActorId from, std::unique_ptr<sim::Message>& message) {
    const sim::MsgTypeId id = message->TypeId();
    if (id >= handlers_.size() || !handlers_[id]) return false;
    handlers_[id](from, std::move(message));
    return true;
  }

  bool Handles(sim::MsgTypeId id) const noexcept {
    return id < handlers_.size() && static_cast<bool>(handlers_[id]);
  }

 private:
  void Install(sim::MsgTypeId id, Handler handler) {
    if (handlers_.size() <= id) handlers_.resize(id + 1);
    handlers_[id] = std::move(handler);
  }

  std::vector<Handler> handlers_;
};

}  // namespace peertrack::rpc
