#include "workload/movement.hpp"

#include <algorithm>

namespace peertrack::workload {

MovementPlan PlanMovements(const MovementParams& params, util::Rng& rng) {
  MovementPlan plan;
  const std::size_t nodes = params.nodes;
  const std::size_t per_node = params.objects_per_node;
  plan.object_count = nodes * per_node;
  plan.captures.reserve(plan.object_count +
                        static_cast<std::size_t>(
                            static_cast<double>(plan.object_count) *
                            params.move_fraction * params.trace_length));

  // Initial placement: object (node * per_node + k) is born at `node`.
  // Births happen at start_time with sub-millisecond spacing so each node's
  // initial population lands in few capture windows (goods already on
  // shelves when the system starts).
  for (std::size_t node = 0; node < nodes; ++node) {
    for (std::size_t k = 0; k < per_node; ++k) {
      const std::uint64_t seq = node * per_node + k;
      plan.captures.push_back(
          {seq, static_cast<std::uint32_t>(node), params.start_time});
    }
  }

  // Movers: the first `move_fraction * per_node` objects of each node.
  const auto movers_per_node =
      static_cast<std::size_t>(static_cast<double>(per_node) * params.move_fraction);
  for (std::size_t node = 0; node < nodes && nodes > 1; ++node) {
    // In group mode, every mover from this node shares one trajectory and
    // one timetable (a pallet). In individual mode each object gets its
    // own.
    std::vector<std::uint32_t> shared_route;
    if (params.move_in_groups) {
      shared_route.reserve(params.trace_length);
      std::uint32_t current = static_cast<std::uint32_t>(node);
      for (std::size_t hop = 1; hop < params.trace_length; ++hop) {
        std::uint32_t next;
        do {
          next = static_cast<std::uint32_t>(rng.NextBelow(nodes));
        } while (next == current);
        shared_route.push_back(next);
        current = next;
      }
    }
    for (std::size_t k = 0; k < movers_per_node; ++k) {
      const std::uint64_t seq = node * per_node + k;
      plan.movers.push_back(seq);
      std::uint32_t current = static_cast<std::uint32_t>(node);
      moods::Time when = params.start_time;
      for (std::size_t hop = 1; hop < params.trace_length; ++hop) {
        std::uint32_t next;
        if (params.move_in_groups) {
          next = shared_route[hop - 1];
        } else {
          do {
            next = static_cast<std::uint32_t>(rng.NextBelow(nodes));
          } while (next == current);
        }
        when += params.step_ms;
        moods::Time at = when;
        if (!params.move_in_groups && params.jitter_ms > 0.0) {
          at += rng.NextDouble(0.0, params.jitter_ms);
        }
        plan.captures.push_back({seq, next, at});
        current = next;
      }
    }
  }

  std::stable_sort(plan.captures.begin(), plan.captures.end(),
                   [](const PlannedCapture& a, const PlannedCapture& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace peertrack::workload
