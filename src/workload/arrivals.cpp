#include "workload/arrivals.hpp"

#include "util/format.hpp"

namespace peertrack::workload {

std::string SteadyArrivals::Describe() const {
  return util::Format("steady(gap={} ms)", gap_);
}

std::string PoissonArrivals::Describe() const {
  return util::Format("poisson(rate={}/ms)", rate_);
}

moods::Time BurstyArrivals::Next(moods::Time now, util::Rng& rng) {
  if (!in_burst_) {
    in_burst_ = true;
    burst_started_ = now;
  }
  const moods::Time candidate = now + rng.NextExponential(burst_rate_);
  if (candidate - burst_started_ <= burst_len_) return candidate;
  // Burst over: jump past the silent gap and start a new burst.
  in_burst_ = true;
  burst_started_ = burst_started_ + burst_len_ + gap_;
  return burst_started_ + rng.NextExponential(burst_rate_);
}

std::string BurstyArrivals::Describe() const {
  return util::Format("bursty(rate={}/ms, burst={} ms, gap={} ms)", burst_rate_,
                      burst_len_, gap_);
}

std::vector<moods::Time> GenerateArrivals(ArrivalProcess& process, moods::Time start,
                                          std::size_t count, util::Rng& rng) {
  std::vector<moods::Time> times;
  times.reserve(count);
  moods::Time now = start;
  for (std::size_t i = 0; i < count; ++i) {
    now = process.Next(now, rng);
    times.push_back(now);
  }
  return times;
}

}  // namespace peertrack::workload
