#include "workload/epc.hpp"

#include "util/format.hpp"

namespace peertrack::workload {

EpcGenerator::EpcGenerator(std::uint64_t seed, std::uint32_t company_count,
                           std::uint32_t item_count)
    : seed_(seed),
      company_count_(company_count == 0 ? 1 : company_count),
      item_count_(item_count == 0 ? 1 : item_count) {}

std::string EpcGenerator::Uri(std::uint64_t sequence) const {
  // Company and item derive from a mixed hash of (seed, sequence) so product
  // lines interleave; the serial is the sequence itself (uniqueness).
  std::uint64_t state = seed_ ^ (sequence * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t mixed = util::SplitMix64(state);
  const std::uint32_t company = static_cast<std::uint32_t>(mixed % company_count_);
  const std::uint32_t item = static_cast<std::uint32_t>((mixed >> 32) % item_count_);
  return util::Format("urn:epc:id:sgtin:{}.{}.{}", 1000000 + company, item, sequence);
}

hash::UInt160 EpcGenerator::Key(std::uint64_t sequence) const {
  return hash::ObjectKey(Uri(sequence));
}

}  // namespace peertrack::workload
