#pragma once
// Fixed-seed, fixed-scale performance scenario ("perf smoke").
//
// One canonical run that every PR can measure: build a converged
// group-indexing TrackingSystem, drive the Section V movement workload
// through it, then issue a batch of trace queries. The scenario is
// deterministic given its params (seeded RNG, (time, seq) event
// tie-breaking), so two same-seed runs must produce bit-identical
// Metrics::CsvRows() — the determinism regression test asserts exactly
// that, and bench/perf_smoke times the run and writes BENCH.json so the
// repo records its performance trajectory.

#include <cstdint>
#include <string>
#include <vector>

namespace peertrack::workload {

struct PerfSmokeParams {
  std::size_t nodes = 256;    ///< Organizations in the ring.
  std::size_t objects = 512000; ///< Total tracked objects (spread over nodes):
                                ///< 2000 per node at the default 256 nodes —
                                ///< ~5M events, ~10s at the pre-pass baseline,
                                ///< big enough that kernel changes move the
                                ///< needle well past run-to-run noise.
  std::size_t queries = 100;  ///< Trace queries after the indexing phase.
  std::uint64_t seed = 0xBE9C5ULL;

  /// Replicate the gateway index to R successors (TrackerConfig defaults:
  /// R=2). On by default so the canonical BENCH.json numbers include the
  /// replication write path — the churn-recovery machinery is meant to be
  /// cheap enough to leave on. --replicate=0 measures the bare index.
  bool replicate = true;

  /// Run the obs::InvariantMonitor alongside the workload and record its
  /// overhead. The monitor schedules sim events, so two runs with the same
  /// params (including this flag) stay bit-identical, but an --invariants
  /// run is not comparable event-for-event with a bare one.
  bool invariants = false;
  double invariant_period_ms = 5000.0;  ///< Scan cadence (sim time).
};

struct PerfSmokeReport {
  // Simulation-side volume (deterministic across same-seed runs).
  std::uint64_t events = 0;    ///< Simulator events processed end-to-end.
  std::uint64_t messages = 0;  ///< Remote messages sent (index + query phases).
  std::uint64_t bytes = 0;     ///< Wire bytes for those messages.
  std::uint64_t captures = 0;  ///< Workload captures driven into receptors.
  std::size_t queries_ok = 0;
  std::size_t queries_failed = 0;
  double sim_time_ms = 0.0;    ///< Final simulated clock.

  // Host-side wall-clock timings (informational; never fed back into the
  // simulation, so they cannot perturb determinism).
  double wall_build_ms = 0.0;  ///< System construction + ring convergence.
  double wall_index_ms = 0.0;  ///< Movement workload (capture -> index).
  double wall_query_ms = 0.0;  ///< Query batch.
  double WallTotalMs() const noexcept {
    return wall_build_ms + wall_index_ms + wall_query_ms;
  }

  // Invariant-monitor results (all zero unless params.invariants).
  std::uint64_t invariant_scans = 0;      ///< Health scans run.
  std::size_t invariant_violations = 0;   ///< Violations opened over the run.
  std::size_t invariant_open = 0;         ///< Still open at the end.
  double invariant_scan_ms = 0.0;         ///< Wall-clock spent scanning
                                          ///< (informational, like wall_*).

  /// Full Metrics::CsvRows() dump at the end of the run; the determinism
  /// test compares this row-for-row between same-seed runs.
  std::vector<std::vector<std::string>> metric_rows;
};

/// Run the scenario. Deterministic given `params`.
PerfSmokeReport RunPerfSmoke(const PerfSmokeParams& params);

}  // namespace peertrack::workload
