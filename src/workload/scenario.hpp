#pragma once
// Scenario runner: executes a movement plan against a TrackingSystem and
// reports the costs the paper's figures plot.

#include <vector>

#include "tracking/tracking_system.hpp"
#include "workload/epc.hpp"
#include "workload/movement.hpp"

namespace peertrack::workload {

struct ScenarioResult {
  /// Hashed key of each object, indexed by EPC sequence number.
  std::vector<hash::UInt160> object_keys;
  std::vector<std::uint64_t> movers;  ///< Sequences of objects that moved.

  std::uint64_t indexing_messages = 0;
  std::uint64_t indexing_bytes = 0;
  std::uint64_t captures = 0;
};

/// Drive `plan`-shaped workload into `system`: schedules every capture,
/// runs the simulation to completion (including a final window flush), and
/// returns the message cost incurred. Metrics are reset at the start so the
/// returned numbers are pure indexing cost.
ScenarioResult ExecuteScenario(tracking::TrackingSystem& system,
                               const MovementParams& params,
                               std::uint64_t epc_seed);

/// Convenience for tests/examples: one fully-specified object trajectory.
void InjectTrajectory(tracking::TrackingSystem& system, const hash::UInt160& object,
                      const std::vector<std::uint32_t>& nodes, moods::Time start,
                      moods::Time step_ms);

}  // namespace peertrack::workload
