#include "workload/scenario.hpp"

namespace peertrack::workload {

ScenarioResult ExecuteScenario(tracking::TrackingSystem& system,
                               const MovementParams& params,
                               std::uint64_t epc_seed) {
  ScenarioResult result;
  util::Rng plan_rng = system.rng().Fork();
  const MovementPlan plan = PlanMovements(params, plan_rng);
  result.movers = plan.movers;

  EpcGenerator epc(epc_seed);
  result.object_keys.reserve(plan.object_count);
  for (std::uint64_t seq = 0; seq < plan.object_count; ++seq) {
    result.object_keys.push_back(epc.Key(seq));
  }

  system.metrics().Reset();
  for (const PlannedCapture& capture : plan.captures) {
    system.CaptureAt(capture.node, result.object_keys[capture.object_seq], capture.at);
  }
  system.Run();
  system.FlushAllWindows();

  result.indexing_messages = system.metrics().TotalMessages();
  result.indexing_bytes = system.metrics().TotalBytes();
  result.captures = plan.captures.size();
  return result;
}

void InjectTrajectory(tracking::TrackingSystem& system, const hash::UInt160& object,
                      const std::vector<std::uint32_t>& nodes, moods::Time start,
                      moods::Time step_ms) {
  moods::Time when = start;
  for (const std::uint32_t node : nodes) {
    system.CaptureAt(node, object, when);
    when += step_ms;
  }
}

}  // namespace peertrack::workload
