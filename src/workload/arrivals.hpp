#pragma once
// Arrival processes for capture streams.
//
// The adaptive window (Tmax/Nmax) exists because "object streams are
// unstable" (paper Section IV-A1). These processes generate the capture
// timestamps used by the window ablation: steady (uniform spacing), Poisson
// (memoryless), and bursty (on/off periods — trucks arriving at a dock).

#include <memory>
#include <string>
#include <vector>

#include "moods/object.hpp"
#include "util/rng.hpp"

namespace peertrack::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Time of the next arrival strictly after `now`.
  virtual moods::Time Next(moods::Time now, util::Rng& rng) = 0;
  virtual std::string Describe() const = 0;
};

/// Constant inter-arrival gap.
class SteadyArrivals final : public ArrivalProcess {
 public:
  explicit SteadyArrivals(moods::Time gap_ms) : gap_(gap_ms) {}
  moods::Time Next(moods::Time now, util::Rng&) override { return now + gap_; }
  std::string Describe() const override;

 private:
  moods::Time gap_;
};

/// Poisson process with the given mean rate (arrivals per ms).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_ms) : rate_(rate_per_ms) {}
  moods::Time Next(moods::Time now, util::Rng& rng) override {
    return now + rng.NextExponential(rate_);
  }
  std::string Describe() const override;

 private:
  double rate_;
};

/// On/off bursts: dense Poisson arrivals during a burst, silence between
/// bursts. Models pallet unloading at a dock door.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double burst_rate_per_ms, moods::Time burst_len_ms,
                 moods::Time gap_ms)
      : burst_rate_(burst_rate_per_ms), burst_len_(burst_len_ms), gap_(gap_ms) {}
  moods::Time Next(moods::Time now, util::Rng& rng) override;
  std::string Describe() const override;

 private:
  double burst_rate_;
  moods::Time burst_len_;
  moods::Time gap_;
  moods::Time burst_started_ = 0.0;
  bool in_burst_ = false;
};

/// Generate `count` arrival times starting after `start`.
std::vector<moods::Time> GenerateArrivals(ArrivalProcess& process, moods::Time start,
                                          std::size_t count, util::Rng& rng);

}  // namespace peertrack::workload
