#include "workload/perf_smoke.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/invariants.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/scenario.hpp"

namespace peertrack::workload {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

PerfSmokeReport RunPerfSmoke(const PerfSmokeParams& params) {
  PerfSmokeReport report;

  auto mark = std::chrono::steady_clock::now();
  tracking::SystemConfig config;
  config.tracker.mode = tracking::IndexingMode::kGroup;
  config.tracker.window.tmax_ms = 1000.0;
  config.tracker.window.nmax = 8192;
  config.tracker.replicate_index = params.replicate;
  config.seed = params.seed;
  const std::size_t nodes = std::max<std::size_t>(params.nodes, 2);
  auto system = std::make_unique<tracking::TrackingSystem>(nodes, config);
  report.wall_build_ms = ElapsedMs(mark);

  mark = std::chrono::steady_clock::now();
  MovementParams movement;
  movement.nodes = nodes;
  movement.objects_per_node = std::max<std::size_t>(params.objects / nodes, 1);
  movement.move_fraction = 0.10;
  movement.trace_length = 10;
  movement.move_in_groups = true;
  movement.step_ms = 4000.0;

  // Health auditing rides along when asked: scan on a fixed sim-time
  // cadence over the indexing phase, plus one final settled scan below.
  // The monitor only schedules deterministic sim events, so same-params
  // repeats stay bit-identical.
  std::unique_ptr<obs::InvariantMonitor> monitor;
  if (params.invariants) {
    monitor = std::make_unique<obs::InvariantMonitor>(
        system->simulator(), system->metrics().registry());
    obs::InstallRingChecks(*monitor, system->ring());
    obs::InstallTrackingChecks(*monitor, *system);
    const double horizon = movement.start_time +
                           movement.step_ms *
                               static_cast<double>(movement.trace_length + 1);
    monitor->Start(params.invariant_period_ms, horizon);
  }

  const ScenarioResult scenario =
      ExecuteScenario(*system, movement, params.seed ^ 0xE9C5EEDULL);
  report.captures = scenario.captures;
  report.wall_index_ms = ElapsedMs(mark);

  mark = std::chrono::steady_clock::now();
  util::Rng query_rng(params.seed ^ 0x9E3779B97F4A7C15ULL);
  for (std::size_t i = 0; i < params.queries; ++i) {
    const hash::UInt160& object =
        scenario.object_keys[query_rng.NextBelow(scenario.object_keys.size())];
    const auto origin = static_cast<std::size_t>(query_rng.NextBelow(nodes));
    bool ok = false;
    system->TraceQuery(origin, object,
                       [&ok](tracking::TrackerNode::TraceResult result) {
                         ok = result.ok;
                       });
    system->Run();
    ++(ok ? report.queries_ok : report.queries_failed);
  }
  report.wall_query_ms = ElapsedMs(mark);

  if (monitor != nullptr) {
    monitor->RunOnce();  // Final scan with every message drained.
    report.invariant_scans = monitor->ScansRun();
    report.invariant_violations = monitor->ViolationsOpened();
    report.invariant_open = monitor->OpenViolations();
    report.invariant_scan_ms = monitor->ScanWallMs();
  }

  report.events = system->simulator().ProcessedEvents();
  report.messages = system->metrics().TotalMessages();
  report.bytes = system->metrics().TotalBytes();
  report.sim_time_ms = system->simulator().Now();
  report.metric_rows = system->metrics().CsvRows();
  return report;
}

}  // namespace peertrack::workload
