#pragma once
// Trajectory generation: which objects move where, when.
//
// Reproduces Section V-A's workload: every node starts with a population of
// local objects; a fraction of them moves along a trace of `trace_length`
// nodes. Movement can be "in groups" (co-located objects travel together,
// arriving inside one capture window — a pallet) or "individually" (each
// object follows its own trajectory on its own schedule), the two series of
// Fig. 6b.

#include <cstdint>
#include <vector>

#include "hash/keyspace.hpp"
#include "moods/object.hpp"
#include "util/rng.hpp"

namespace peertrack::workload {

struct MovementParams {
  std::size_t nodes = 64;
  std::size_t objects_per_node = 500;
  double move_fraction = 0.10;
  std::size_t trace_length = 10;   ///< Total nodes visited (incl. origin).
  bool move_in_groups = true;
  moods::Time start_time = 10.0;
  moods::Time step_ms = 2000.0;    ///< Dwell time between hops.
  moods::Time jitter_ms = 0.0;     ///< Per-capture jitter (individual mode).
};

/// One scheduled capture: object key appears at node `node` at time `at`.
struct PlannedCapture {
  std::uint64_t object_seq;   ///< Sequence number into the EPC generator.
  std::uint32_t node;
  moods::Time at;
};

/// Full workload plan: every capture of every object, plus the object list.
struct MovementPlan {
  std::vector<PlannedCapture> captures;  ///< Sorted by time.
  std::uint64_t object_count = 0;        ///< EPC sequences 0..object_count-1.
  std::vector<std::uint64_t> movers;     ///< Sequences of objects that move.

  std::size_t TotalCaptures() const noexcept { return captures.size(); }
};

/// Build the paper-workload plan. Deterministic given (params, rng state).
MovementPlan PlanMovements(const MovementParams& params, util::Rng& rng);

}  // namespace peertrack::workload
