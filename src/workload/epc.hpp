#pragma once
// EPC-style object id generation.
//
// Objects in the paper are goods with EPC (Electronic Product Code) tags.
// The generator produces SGTIN-96-style URIs — urn:epc:id:sgtin:
// <company>.<item>.<serial> — so hashed ids exercise the same string->SHA1
// path a real deployment would, and ids are reproducible from (seed,
// sequence number).

#include <cstdint>
#include <string>

#include "hash/keyspace.hpp"
#include "util/rng.hpp"

namespace peertrack::workload {

class EpcGenerator {
 public:
  /// `company_count`/`item_count` control how many distinct company and
  /// item-class fields appear (objects of the same item class model one
  /// product line moving in bulk).
  EpcGenerator(std::uint64_t seed, std::uint32_t company_count = 64,
               std::uint32_t item_count = 1024);

  /// The `sequence`-th EPC URI. Deterministic and collision-free: the
  /// serial field embeds the sequence number.
  std::string Uri(std::uint64_t sequence) const;

  /// Hashed ring key of the `sequence`-th EPC.
  hash::UInt160 Key(std::uint64_t sequence) const;

 private:
  std::uint64_t seed_;
  std::uint32_t company_count_;
  std::uint32_t item_count_;
};

}  // namespace peertrack::workload
