#include "central/cost_model.hpp"

// CostModel is header-only; this TU anchors the module.
