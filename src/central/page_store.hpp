#pragma once
// Page-level instrumentation for the centralized baseline.
//
// The paper's comparison point is a MySQL warehouse holding all movement
// events (Wang & Liu's temporal RFID model, VLDB'05). We reproduce its
// *cost behaviour* with an in-memory storage engine that counts page and
// row touches exactly; CostModel (cost_model.hpp) converts those counts to
// milliseconds. Fidelity target is the paper's measured shape — trace
// queries whose cost grows with database size (scan plan) vs. the indexed
// plan's logarithmic cost.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace peertrack::central {

struct PageMetrics {
  std::uint64_t page_reads = 0;
  std::uint64_t page_writes = 0;
  std::uint64_t rows_touched = 0;

  void Reset() { *this = PageMetrics{}; }

  PageMetrics operator-(const PageMetrics& other) const {
    return PageMetrics{page_reads - other.page_reads,
                       page_writes - other.page_writes,
                       rows_touched - other.rows_touched};
  }
};

/// Heap file: unordered rows packed `rows_per_page` to a page. Appends are
/// cheap (last page); full scans read every page.
template <typename Row>
class HeapFile {
 public:
  explicit HeapFile(std::size_t rows_per_page, PageMetrics& metrics)
      : rows_per_page_(rows_per_page == 0 ? 1 : rows_per_page), metrics_(metrics) {}

  /// Append a row; returns its row id.
  std::uint64_t Append(Row row) {
    rows_.push_back(std::move(row));
    metrics_.page_writes += (rows_.size() % rows_per_page_ == 1 || rows_per_page_ == 1)
                                ? 1   // Opened a fresh page.
                                : 0;
    ++metrics_.rows_touched;
    return rows_.size() - 1;
  }

  /// Random access by row id: one page read + one row touch.
  const Row& Fetch(std::uint64_t row_id) {
    ++metrics_.page_reads;
    ++metrics_.rows_touched;
    return rows_[row_id];
  }

  /// In-place update by row id: read + write of the row's page.
  Row& FetchMutable(std::uint64_t row_id) {
    ++metrics_.page_reads;
    ++metrics_.page_writes;
    ++metrics_.rows_touched;
    return rows_[row_id];
  }

  /// Sequential scan of the whole file; `visit` sees every row. Costs
  /// ceil(n / rows_per_page) page reads and n row touches.
  template <typename Visitor>
  void Scan(Visitor&& visit) {
    metrics_.page_reads += PageCount();
    metrics_.rows_touched += rows_.size();
    for (std::uint64_t id = 0; id < rows_.size(); ++id) {
      visit(id, rows_[id]);
    }
  }

  std::size_t RowCount() const noexcept { return rows_.size(); }
  std::size_t PageCount() const noexcept {
    return (rows_.size() + rows_per_page_ - 1) / rows_per_page_;
  }
  std::size_t RowsPerPage() const noexcept { return rows_per_page_; }

 private:
  std::size_t rows_per_page_;
  PageMetrics& metrics_;
  std::vector<Row> rows_;
};

}  // namespace peertrack::central
