#pragma once
// From-scratch B+-tree on (epc, t_start), mapping to heap-file row ids.
//
// This is the covering secondary index of the centralized baseline. Every
// node visit is counted as one page read (interior and leaf nodes are one
// page each, as in a real database), so the Fig. 7 benches can report both
// execution plans honestly: scan (pages linear in |DB|) vs. index
// (O(log |DB|) + matching leaves).

#include <cstdint>
#include <memory>
#include <vector>

#include "central/page_store.hpp"
#include "hash/uint160.hpp"

namespace peertrack::central {

/// Composite index key: object id then interval start.
struct BpKey {
  hash::UInt160 epc;
  double t_start = 0.0;

  friend bool operator<(const BpKey& a, const BpKey& b) noexcept {
    if (a.epc != b.epc) return a.epc < b.epc;
    return a.t_start < b.t_start;
  }
  friend bool operator==(const BpKey& a, const BpKey& b) noexcept {
    return a.epc == b.epc && a.t_start == b.t_start;
  }
};

class BpTree {
 public:
  /// Internal entry: the composite (key, row id). Row ids are unique, so
  /// entries are strictly ordered even when many rows share one BpKey —
  /// which keeps split separators unambiguous under duplicates.
  struct Entry {
    BpKey key;
    std::uint64_t row = 0;

    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.key < b.key) return true;
      if (b.key < a.key) return false;
      return a.row < b.row;
    }
  };

  /// `order` = max children per interior node (= max entries per leaf).
  BpTree(std::size_t order, PageMetrics& metrics);
  ~BpTree();

  BpTree(const BpTree&) = delete;
  BpTree& operator=(const BpTree&) = delete;

  /// Insert key -> row id. Duplicate keys are allowed (stored adjacently).
  void Insert(const BpKey& key, std::uint64_t row_id);

  /// Visit all entries with lo <= key <= hi, in key order.
  /// Visitor: void(const BpKey&, std::uint64_t row_id).
  template <typename Visitor>
  void ScanRange(const BpKey& lo, const BpKey& hi, Visitor&& visit) {
    const Leaf* leaf = DescendToLeaf(Entry{lo, 0});
    while (leaf != nullptr) {
      ++metrics_.page_reads;
      for (const Entry& entry : leaf->entries) {
        if (entry.key < lo) continue;
        if (hi < entry.key) return;
        ++metrics_.rows_touched;
        visit(entry.key, entry.row);
      }
      leaf = leaf->next;
    }
  }

  /// All entries for one epc (the trace query's index plan).
  std::vector<std::uint64_t> LookupObject(const hash::UInt160& epc);

  std::size_t Size() const noexcept { return size_; }
  std::size_t Height() const noexcept { return height_; }
  std::size_t NodeCount() const noexcept { return node_count_; }

  /// Structural invariants (tests): sorted keys, fanout bounds, uniform
  /// leaf depth, and the leaf chain covering exactly `Size()` entries.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Interior;
  struct Leaf;

  struct Node {
    bool is_leaf = false;
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
  };

  struct Interior final : Node {
    Interior() : Node(false) {}
    // keys.size() + 1 == children.size(); child i holds entries < keys[i]
    // (and >= keys[i-1]).
    std::vector<Entry> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<Entry> entries;
    Leaf* next = nullptr;
  };

  struct SplitResult {
    Entry separator;
    std::unique_ptr<Node> right;
  };

  /// Walk interior nodes to the leaf that could hold `target` (counts
  /// interior page reads; the leaf's read is counted by the caller's scan
  /// loop).
  const Leaf* DescendToLeaf(const Entry& target);

  std::unique_ptr<SplitResult> InsertInto(Node& node, const Entry& entry);
  bool CheckNode(const Node& node, const Entry* lo, const Entry* hi,
                 std::size_t depth, std::size_t& leaf_depth,
                 std::size_t& counted) const;

  std::size_t order_;
  PageMetrics& metrics_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::size_t height_ = 1;
  std::size_t node_count_ = 1;
};

}  // namespace peertrack::central
