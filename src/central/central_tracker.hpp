#pragma once
// Centralized tracker facade — the Fig. 7 baseline.
//
// Mirrors TrackingSystem's query surface over the central EventStore: every
// capture everywhere is shipped to one warehouse, and trace/locate queries
// run there under a chosen execution plan. Returned durations come from the
// CostModel; correctness is verified against the same oracle as the P2P
// stack.

#include <vector>

#include "central/cost_model.hpp"
#include "central/event_store.hpp"
#include "moods/oracle.hpp"

namespace peertrack::central {

class CentralTracker {
 public:
  struct Options {
    EventStore::Options store;
    CostModel cost;
    QueryPlan plan = QueryPlan::kScan;  ///< Paper-reproduction default.
  };

  explicit CentralTracker(Options options) : options_(options), store_(options.store) {}
  CentralTracker() : CentralTracker(Options{}) {}

  /// Ingest one capture (object at node `location` at time `t`).
  void Ingest(const hash::UInt160& epc, std::uint32_t location, double t) {
    store_.RecordArrival(epc, location, t);
  }

  struct TraceAnswer {
    std::vector<ObjectLocationRow> rows;
    double duration_ms = 0.0;
    QueryCost cost;
  };
  TraceAnswer Trace(const hash::UInt160& epc);

  struct LocateAnswer {
    std::optional<std::uint32_t> location;
    double duration_ms = 0.0;
    QueryCost cost;
  };
  LocateAnswer Locate(const hash::UInt160& epc, double t);

  EventStore& store() noexcept { return store_; }
  const Options& options() const noexcept { return options_; }
  void SetPlan(QueryPlan plan) noexcept { options_.plan = plan; }

 private:
  Options options_;
  EventStore store_;
};

}  // namespace peertrack::central
