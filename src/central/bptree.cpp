#include "central/bptree.hpp"

#include <algorithm>

namespace peertrack::central {

BpTree::BpTree(std::size_t order, PageMetrics& metrics)
    : order_(std::max<std::size_t>(order, 4)),
      metrics_(metrics),
      root_(std::make_unique<Leaf>()) {}

BpTree::~BpTree() = default;

const BpTree::Leaf* BpTree::DescendToLeaf(const Entry& target) {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++metrics_.page_reads;
    const auto& interior = static_cast<const Interior&>(*node);
    const auto it =
        std::upper_bound(interior.keys.begin(), interior.keys.end(), target);
    const auto index =
        static_cast<std::size_t>(std::distance(interior.keys.begin(), it));
    node = interior.children[index].get();
  }
  return static_cast<const Leaf*>(node);
}

void BpTree::Insert(const BpKey& key, std::uint64_t row_id) {
  auto split = InsertInto(*root_, Entry{key, row_id});
  if (split != nullptr) {
    auto new_root = std::make_unique<Interior>();
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
    ++node_count_;
  }
  ++size_;
}

std::unique_ptr<BpTree::SplitResult> BpTree::InsertInto(Node& node, const Entry& entry) {
  if (node.is_leaf) {
    auto& leaf = static_cast<Leaf&>(node);
    ++metrics_.page_reads;
    ++metrics_.page_writes;
    const auto it = std::upper_bound(leaf.entries.begin(), leaf.entries.end(), entry);
    leaf.entries.insert(it, entry);
    if (leaf.entries.size() < order_) return nullptr;

    // Split: right half moves to a new leaf chained after this one.
    const std::size_t mid = leaf.entries.size() / 2;
    auto right = std::make_unique<Leaf>();
    right->entries.assign(leaf.entries.begin() + static_cast<std::ptrdiff_t>(mid),
                          leaf.entries.end());
    leaf.entries.resize(mid);
    right->next = leaf.next;
    leaf.next = right.get();
    ++node_count_;
    ++metrics_.page_writes;

    auto result = std::make_unique<SplitResult>();
    result->separator = right->entries.front();
    result->right = std::move(right);
    return result;
  }

  auto& interior = static_cast<Interior&>(node);
  ++metrics_.page_reads;
  const auto it = std::upper_bound(interior.keys.begin(), interior.keys.end(), entry);
  const auto index = static_cast<std::size_t>(std::distance(interior.keys.begin(), it));
  auto split = InsertInto(*interior.children[index], entry);
  if (split == nullptr) return nullptr;

  ++metrics_.page_writes;
  interior.keys.insert(interior.keys.begin() + static_cast<std::ptrdiff_t>(index),
                       split->separator);
  interior.children.insert(
      interior.children.begin() + static_cast<std::ptrdiff_t>(index) + 1,
      std::move(split->right));
  if (interior.children.size() <= order_) return nullptr;

  // Split the interior node; the middle key moves up.
  const std::size_t mid = interior.keys.size() / 2;
  auto right = std::make_unique<Interior>();
  auto result = std::make_unique<SplitResult>();
  result->separator = interior.keys[mid];
  right->keys.assign(interior.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     interior.keys.end());
  for (std::size_t i = mid + 1; i < interior.children.size(); ++i) {
    right->children.push_back(std::move(interior.children[i]));
  }
  interior.keys.resize(mid);
  interior.children.resize(mid + 1);
  ++node_count_;
  ++metrics_.page_writes;
  result->right = std::move(right);
  return result;
}

std::vector<std::uint64_t> BpTree::LookupObject(const hash::UInt160& epc) {
  std::vector<std::uint64_t> rows;
  const BpKey lo{epc, -1e300};
  const BpKey hi{epc, 1e300};
  ScanRange(lo, hi, [&](const BpKey&, std::uint64_t row) { rows.push_back(row); });
  return rows;
}

bool BpTree::CheckNode(const Node& node, const Entry* lo, const Entry* hi,
                       std::size_t depth, std::size_t& leaf_depth,
                       std::size_t& counted) const {
  auto in_bounds = [&](const Entry& e) {
    if (lo != nullptr && e < *lo) return false;       // Must be >= lo.
    if (hi != nullptr && !(e < *hi)) return false;    // Must be < hi.
    return true;
  };
  if (node.is_leaf) {
    const auto& leaf = static_cast<const Leaf&>(node);
    if (!std::is_sorted(leaf.entries.begin(), leaf.entries.end())) return false;
    for (const auto& entry : leaf.entries) {
      if (!in_bounds(entry)) return false;
    }
    if (leaf_depth == 0) {
      leaf_depth = depth;
    } else if (leaf_depth != depth) {
      return false;
    }
    counted += leaf.entries.size();
    return true;
  }
  const auto& interior = static_cast<const Interior&>(node);
  if (interior.children.size() != interior.keys.size() + 1) return false;
  if (interior.children.size() > order_ + 1) return false;
  if (!std::is_sorted(interior.keys.begin(), interior.keys.end())) return false;
  for (std::size_t i = 0; i < interior.children.size(); ++i) {
    const Entry* child_lo = i == 0 ? lo : &interior.keys[i - 1];
    const Entry* child_hi = i == interior.keys.size() ? hi : &interior.keys[i];
    if (!CheckNode(*interior.children[i], child_lo, child_hi, depth + 1, leaf_depth,
                   counted)) {
      return false;
    }
  }
  return true;
}

bool BpTree::CheckInvariants() const {
  std::size_t leaf_depth = 0;
  std::size_t counted = 0;
  if (!CheckNode(*root_, nullptr, nullptr, 1, leaf_depth, counted)) return false;
  return counted == size_;
}

}  // namespace peertrack::central
