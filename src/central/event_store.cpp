#include "central/event_store.hpp"

#include <algorithm>

namespace peertrack::central {

EventStore::EventStore(Options options)
    : options_(options), table_(options.rows_per_page, metrics_) {
  if (options_.maintain_index) {
    index_ = std::make_unique<BpTree>(options_.btree_order, metrics_);
  }
}

void EventStore::RecordArrival(const hash::UInt160& epc, std::uint32_t location,
                               double t) {
  if (const auto it = open_rows_.find(epc); it != open_rows_.end()) {
    table_.FetchMutable(it->second).t_end = t;
  }
  ObjectLocationRow row;
  row.epc = epc;
  row.location = location;
  row.t_start = t;
  const std::uint64_t row_id = table_.Append(std::move(row));
  open_rows_[epc] = row_id;
  if (index_) index_->Insert(BpKey{epc, t}, row_id);
}

std::vector<ObjectLocationRow> EventStore::Trace(const hash::UInt160& epc,
                                                 QueryPlan plan, QueryCost& cost) {
  const PageMetrics before = metrics_;
  std::vector<ObjectLocationRow> rows;
  if (plan == QueryPlan::kIndex && index_) {
    for (const std::uint64_t row_id : index_->LookupObject(epc)) {
      rows.push_back(table_.Fetch(row_id));
    }
  } else {
    table_.Scan([&](std::uint64_t, const ObjectLocationRow& row) {
      if (row.epc == epc) rows.push_back(row);
    });
    std::sort(rows.begin(), rows.end(),
              [](const ObjectLocationRow& a, const ObjectLocationRow& b) {
                return a.t_start < b.t_start;
              });
  }
  cost.pages = metrics_ - before;
  cost.result_rows = rows.size();
  return rows;
}

std::optional<std::uint32_t> EventStore::Locate(const hash::UInt160& epc, double t,
                                                QueryPlan plan, QueryCost& cost) {
  const auto rows = Trace(epc, plan, cost);
  std::optional<std::uint32_t> location;
  for (const auto& row : rows) {
    if (row.t_start <= t && t < row.t_end) {
      location = row.location;
      break;
    }
  }
  return location;
}

}  // namespace peertrack::central
