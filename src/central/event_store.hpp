#pragma once
// Centralized temporal event store (Wang & Liu, VLDB'05 — the model the
// paper's centralized baseline is built on, reference [31]).
//
// One table: OBJECT_LOCATION(epc, location, t_start, t_end), where an open
// interval (t_end = +inf) is the object's current location. Every movement
// closes the previous interval and appends a new one. Two execution plans
// answer trace/locate queries: a sequential heap scan (the behaviour the
// paper measured on MySQL — cost linear in table size) and a covering
// B+-tree plan on (epc, t_start).

#include <optional>
#include <unordered_map>
#include <vector>

#include "central/bptree.hpp"
#include "central/page_store.hpp"
#include "hash/uint160.hpp"

namespace peertrack::central {

constexpr double kOpenEnd = 1e300;

struct ObjectLocationRow {
  hash::UInt160 epc;
  std::uint32_t location = 0;
  double t_start = 0.0;
  double t_end = kOpenEnd;
};

enum class QueryPlan { kScan, kIndex };

struct QueryCost {
  PageMetrics pages;
  std::size_t result_rows = 0;
};

class EventStore {
 public:
  struct Options {
    std::size_t rows_per_page = 64;  ///< ~8 KiB pages / ~128 B rows.
    std::size_t btree_order = 64;
    bool maintain_index = true;
  };

  explicit EventStore(Options options);
  EventStore() : EventStore(Options{}) {}

  /// Ingest one movement event: object `epc` arrived at `location` at
  /// time `t`. Closes the previous open interval.
  void RecordArrival(const hash::UInt160& epc, std::uint32_t location, double t);

  /// Trace: all intervals of `epc` ordered by t_start, with the page costs
  /// of the chosen plan.
  std::vector<ObjectLocationRow> Trace(const hash::UInt160& epc, QueryPlan plan,
                                       QueryCost& cost);

  /// Locate at time `t` (open intervals match any t >= t_start).
  std::optional<std::uint32_t> Locate(const hash::UInt160& epc, double t,
                                      QueryPlan plan, QueryCost& cost);

  std::size_t RowCount() const noexcept { return table_.RowCount(); }
  std::size_t PageCount() const noexcept { return table_.PageCount(); }
  const PageMetrics& metrics() const noexcept { return metrics_; }
  void ResetMetrics() { metrics_.Reset(); }
  const BpTree* index() const noexcept { return index_.get(); }

 private:
  Options options_;
  PageMetrics metrics_;
  HeapFile<ObjectLocationRow> table_;
  std::unique_ptr<BpTree> index_;
  /// Server-side bookkeeping: row id of each object's open interval.
  std::unordered_map<hash::UInt160, std::uint64_t, hash::UInt160Hasher> open_rows_;
};

}  // namespace peertrack::central
