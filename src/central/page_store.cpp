#include "central/page_store.hpp"

// HeapFile is a header template; this TU anchors the module.
