#pragma once
// Converts page/row touch counts into milliseconds for the centralized
// baseline, so Fig. 7 can plot P2P simulated time against centralized
// "processing time" on one axis.
//
// Calibration: the paper measured MySQL on a 2.4 GHz Core 2 Quad; its
// centralized trace query reached ~120 ms at 512 nodes × 5 000 objects
// (≈ 5.1 M interval rows ≈ 80 K pages under our 64-rows/page layout). A
// buffer-pool page scan cost of ~1.4 µs/page plus ~10 ns/row reproduces
// that magnitude; the *shape* (linear in DB size) comes from the scan plan
// itself, not from the constants.

#include "central/event_store.hpp"

namespace peertrack::central {

struct CostModel {
  double page_read_ms = 0.0014;   ///< Per page touched.
  double page_write_ms = 0.0028;  ///< Per page written.
  double row_cpu_ms = 0.00001;    ///< Per row evaluated.
  double client_rtt_ms = 0.0;     ///< Client<->server round trip (the paper
                                  ///< measured server-side time; keep 0).

  double QueryMs(const QueryCost& cost) const {
    return client_rtt_ms +
           static_cast<double>(cost.pages.page_reads) * page_read_ms +
           static_cast<double>(cost.pages.page_writes) * page_write_ms +
           static_cast<double>(cost.pages.rows_touched) * row_cpu_ms;
  }
};

}  // namespace peertrack::central
