#include "central/central_tracker.hpp"

namespace peertrack::central {

CentralTracker::TraceAnswer CentralTracker::Trace(const hash::UInt160& epc) {
  TraceAnswer answer;
  answer.rows = store_.Trace(epc, options_.plan, answer.cost);
  answer.duration_ms = options_.cost.QueryMs(answer.cost);
  return answer;
}

CentralTracker::LocateAnswer CentralTracker::Locate(const hash::UInt160& epc,
                                                    double t) {
  LocateAnswer answer;
  answer.location = store_.Locate(epc, t, options_.plan, answer.cost);
  answer.duration_ms = options_.cost.QueryMs(answer.cost);
  return answer;
}

}  // namespace peertrack::central
