#pragma once
// PeerTrack — public umbrella header.
//
// Reproduction of "P2P Object Tracking in the Internet of Things"
// (Wu, Sheng, Ranasinghe — ICPP 2011). Include this to get the whole
// public surface; fine-grained headers are listed below for targeted use.
//
//   tracking::TrackingSystem  — build a traceable network, capture objects,
//                               run trace/locate queries (the paper's core).
//   tracking::TrackerNode     — per-organization node (gateway indexing,
//                               group windows, Data Triangle, IOP queries).
//   chord::*                  — the Chord DHT overlay substrate.
//   moods::*                  — the MOODS moving-object model, IOP store,
//                               receptors, and the ground-truth oracle.
//   central::CentralTracker   — the centralized-warehouse baseline.
//   estimate::*               — gossip network-size estimation (drives Lp).
//   obs::InvariantMonitor     — continuous ring/IOP/triangle health auditing
//                               with repair-latency metrics.
//   workload::*               — EPC ids, arrival processes, movement plans.

#include "central/central_tracker.hpp"
#include "chord/chord_ring.hpp"
#include "estimate/gossip.hpp"
#include "hash/keyspace.hpp"
#include "moods/oracle.hpp"
#include "moods/receptor.hpp"
#include "moods/snapshot.hpp"
#include "obs/invariants.hpp"
#include "tracking/audit.hpp"
#include "tracking/prediction.hpp"
#include "tracking/tracking_system.hpp"
#include "workload/arrivals.hpp"
#include "workload/epc.hpp"
#include "workload/scenario.hpp"
