#pragma once
// Streaming statistics, histograms, and load-balance metrics.
//
// These back every number the benchmark harnesses print: RunningStats for
// means/stddevs (Welford, numerically stable), Percentiles for latency
// distributions, Histogram for hop-count shapes, and LorenzCurve/Gini for
// the Fig. 8a load-balance reproduction.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace peertrack::util {

/// Welford one-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void Add(double x) noexcept;
  void Merge(const RunningStats& other) noexcept;

  std::size_t Count() const noexcept { return count_; }
  double Mean() const noexcept { return count_ ? mean_ : 0.0; }
  double Variance() const noexcept;   ///< Sample variance (n-1 denominator).
  double StdDev() const noexcept;
  double Min() const noexcept { return count_ ? min_ : 0.0; }
  double Max() const noexcept { return count_ ? max_ : 0.0; }
  double Sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile estimator: stores samples, sorts on demand.
/// Appropriate for the experiment sizes here (≤ millions of samples).
class Percentiles {
 public:
  void Add(double x) { samples_.push_back(x); sorted_ = false; }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t Count() const noexcept { return samples_.size(); }
  /// p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p);
  double Median() { return Percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x) noexcept;
  std::size_t BucketCount() const noexcept { return counts_.size(); }
  std::uint64_t Count(std::size_t bucket) const noexcept { return counts_[bucket]; }
  std::uint64_t Total() const noexcept { return total_; }
  double BucketLow(std::size_t bucket) const noexcept;
  double BucketHigh(std::size_t bucket) const noexcept;

  /// Multi-line ASCII rendering (for debug output).
  std::string Render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// A point on a Lorenz curve: the bottom `node_fraction` of nodes carry
/// `load_fraction` of the total load. The paper's Fig. 8a plots exactly
/// this (diagonal = perfectly balanced).
struct LorenzPoint {
  double node_fraction;
  double load_fraction;
};

/// Lorenz curve of per-node loads, sorted ascending. Returns `points + 1`
/// samples including (0,0) and (1,1).
std::vector<LorenzPoint> LorenzCurve(std::span<const std::uint64_t> loads,
                                     std::size_t points = 20);

/// Gini coefficient in [0,1]; 0 = perfectly balanced. Scalar summary of the
/// Lorenz curve used by tests and the Fig. 8a bench.
double GiniCoefficient(std::span<const std::uint64_t> loads);

/// max(load) / mean(load); 1.0 = perfectly balanced. Returns 0 for empty
/// or all-zero input.
double PeakToMeanRatio(std::span<const std::uint64_t> loads);

/// Fraction of entries that are nonzero (how many nodes got any work; the
/// paper's δ from Eq. 4 predicts this for group indexing).
double NonZeroFraction(std::span<const std::uint64_t> loads);

}  // namespace peertrack::util
