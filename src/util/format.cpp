#include "util/format.hpp"

#include <algorithm>
#include <charconv>

namespace peertrack::util {

namespace fmtdetail {

Spec ParseSpec(std::string_view spec) {
  Spec out;
  std::size_t i = 0;
  // [fill]align
  if (spec.size() >= 2 && (spec[1] == '<' || spec[1] == '>' || spec[1] == '^')) {
    out.fill = spec[0];
    out.align = spec[1];
    i = 2;
  } else if (!spec.empty() && (spec[0] == '<' || spec[0] == '>' || spec[0] == '^')) {
    out.align = spec[0];
    i = 1;
  }
  // width
  std::size_t start = i;
  while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') ++i;
  if (i > start) {
    std::from_chars(spec.data() + start, spec.data() + i, out.width);
  }
  // .precision
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    start = i;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') ++i;
    if (i > start) {
      std::from_chars(spec.data() + start, spec.data() + i, out.precision);
    } else {
      out.precision = 0;
    }
  }
  // type
  if (i < spec.size()) out.type = spec[i];
  return out;
}

std::string Pad(std::string text, const Spec& spec, bool numeric_default) {
  if (spec.width < 0 || text.size() >= static_cast<std::size_t>(spec.width)) {
    return text;
  }
  const std::size_t pad = static_cast<std::size_t>(spec.width) - text.size();
  char align = spec.align;
  if (align == 0) align = numeric_default ? '>' : '<';
  switch (align) {
    case '>':
      return std::string(pad, spec.fill) + text;
    case '^': {
      const std::size_t left = pad / 2;
      return std::string(left, spec.fill) + text + std::string(pad - left, spec.fill);
    }
    case '<':
    default:
      return text + std::string(pad, spec.fill);
  }
}

std::string FormatDoubleSpec(double value, const Spec& spec) {
  char buffer[64];
  const int precision = spec.precision >= 0 ? spec.precision : 6;
  switch (spec.type) {
    case 'f':
      std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
      break;
    case 'e':
      std::snprintf(buffer, sizeof(buffer), "%.*e", precision, value);
      break;
    case 'g':
    case 0:
      if (spec.precision >= 0) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
      } else {
        // std::format's default prints shortest round-trip; %g with 10
        // significant digits is a close, readable stand-in.
        std::snprintf(buffer, sizeof(buffer), "%.10g", value);
      }
      break;
    default:
      std::snprintf(buffer, sizeof(buffer), "%.10g", value);
      break;
  }
  return Pad(buffer, spec, true);
}

std::string FormatIntSpec(long long value, const Spec& spec) {
  char buffer[32];
  if (spec.type == 'x') {
    std::snprintf(buffer, sizeof(buffer), "%llx", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lld", value);
  }
  return Pad(buffer, spec, true);
}

std::string FormatUIntSpec(unsigned long long value, const Spec& spec) {
  char buffer[32];
  if (spec.type == 'x') {
    std::snprintf(buffer, sizeof(buffer), "%llx", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu", value);
  }
  return Pad(buffer, spec, true);
}

std::string Vformat(std::string_view fmt, const Arg* args, std::size_t count) {
  std::string out;
  out.reserve(fmt.size() + count * 8);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        out.append(fmt.substr(i));
        break;
      }
      std::string_view body = fmt.substr(i + 1, close - i - 1);
      Spec spec;
      if (const auto colon = body.find(':'); colon != std::string_view::npos) {
        spec = ParseSpec(body.substr(colon + 1));
      }
      if (next_arg < count) {
        out += args[next_arg++].Render(spec);
      } else {
        out += "{?}";
      }
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out.push_back('}');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace fmtdetail

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", std::clamp(precision, 0, 30), value);
  return buffer;
}

}  // namespace peertrack::util
