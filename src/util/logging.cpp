#include "util/logging.hpp"

#include <cstdio>
#include <mutex>
#include <string>

namespace peertrack::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;

thread_local std::uint64_t g_trace_id = 0;
thread_local std::uint64_t g_span_id = 0;

constexpr std::string_view LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

char ToLowerAscii(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) return false;
  }
  return true;
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogTrace(std::uint64_t trace_id, std::uint64_t span_id) noexcept {
  g_trace_id = trace_id;
  g_span_id = span_id;
}

std::pair<std::uint64_t, std::uint64_t> GetLogTrace() noexcept {
  return {g_trace_id, g_span_id};
}

LogLevel ParseLogLevel(std::string_view text) noexcept {
  if (EqualsIgnoreCase(text, "trace")) return LogLevel::Trace;
  if (EqualsIgnoreCase(text, "debug")) return LogLevel::Debug;
  if (EqualsIgnoreCase(text, "info")) return LogLevel::Info;
  if (EqualsIgnoreCase(text, "warn")) return LogLevel::Warn;
  if (EqualsIgnoreCase(text, "error")) return LogLevel::Error;
  if (EqualsIgnoreCase(text, "off")) return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

bool Enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void Emit(LogLevel level, std::string_view message) {
  std::string line;
  line.reserve(message.size() + 48);
  line.append("[");
  line.append(LevelTag(level));
  line.append("] ");
  if (g_trace_id != 0) {
    line.append(Format("[t:{} s:{}] ", g_trace_id, g_span_id));
  }
  line.append(message);
  line.push_back('\n');
  std::lock_guard lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail

}  // namespace peertrack::util
