#include "util/thread_pool.hpp"

#include <algorithm>

namespace peertrack::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  cv_.notify_all();
  // std::jthread joins in its destructor.
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  while (true) {
    util::UniqueFunction<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop.stop_requested()) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(Submit([fn, i] { fn(i); }));
  }
  for (auto& f : pending) f.get();
}

}  // namespace peertrack::util
