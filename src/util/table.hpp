#pragma once
// Column-aligned ASCII tables for benchmark output.
//
// Every paper-figure bench prints one of these so the reproduced series are
// readable next to the paper's plots.

#include <string>
#include <vector>

namespace peertrack::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; short rows are padded with empty cells, long rows are
  /// truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each value with the given precision.
  void AddNumericRow(const std::vector<double>& values, int precision = 2);

  std::size_t RowCount() const noexcept { return rows_.size(); }

  /// Render with a header separator and right-aligned numeric-looking cells.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace peertrack::util
