#pragma once
// Tiny CSV writer (RFC-4180 quoting) so benches can dump raw series for
// external plotting alongside their ASCII tables.

#include <fstream>
#include <string>
#include <vector>

namespace peertrack::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path`. Check IsOpen() before writing.
  explicit CsvWriter(const std::string& path);

  bool IsOpen() const { return out_.is_open(); }

  void WriteRow(const std::vector<std::string>& cells);
  void WriteNumericRow(const std::vector<double>& values, int precision = 6);

 private:
  static std::string Escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace peertrack::util
