#include "util/csv.hpp"

#include "util/format.hpp"

namespace peertrack::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {}

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  WriteRow(cells);
}

}  // namespace peertrack::util
