#pragma once
// Minimal std::format replacement (the toolchain's libstdc++ predates
// <format>).
//
// Supports positional-free "{}" placeholders with a subset of the standard
// spec grammar: {:[fill][<>^][width][.precision][type]} where type is one
// of f/e/g (floating), d/x (integral), s (string). "{{" and "}}" are
// literal braces. Numbers right-align by default, strings left-align,
// matching std::format. Unknown argument/placeholder mismatches render as
// "{?}" rather than throwing — formatting is used in logging and bench
// output where robustness beats strictness.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace peertrack::util {

namespace fmtdetail {

struct Spec {
  char fill = ' ';
  char align = 0;        // '<', '>', '^', or 0 = type default.
  int width = -1;
  int precision = -1;
  char type = 0;
};

Spec ParseSpec(std::string_view spec);
std::string Pad(std::string text, const Spec& spec, bool numeric_default);

std::string FormatDoubleSpec(double value, const Spec& spec);
std::string FormatIntSpec(long long value, const Spec& spec);
std::string FormatUIntSpec(unsigned long long value, const Spec& spec);

inline std::string FormatOne(double value, const Spec& spec) {
  return FormatDoubleSpec(value, spec);
}
inline std::string FormatOne(float value, const Spec& spec) {
  return FormatDoubleSpec(value, spec);
}
inline std::string FormatOne(bool value, const Spec& spec) {
  return Pad(value ? "true" : "false", spec, false);
}
inline std::string FormatOne(char value, const Spec& spec) {
  return Pad(std::string(1, value), spec, false);
}
inline std::string FormatOne(const std::string& value, const Spec& spec) {
  return Pad(value, spec, false);
}
inline std::string FormatOne(std::string_view value, const Spec& spec) {
  return Pad(std::string(value), spec, false);
}
inline std::string FormatOne(const char* value, const Spec& spec) {
  return Pad(value ? std::string(value) : std::string("(null)"), spec, false);
}
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
           !std::is_same_v<T, char>)
std::string FormatOne(T value, const Spec& spec) {
  if constexpr (std::is_signed_v<T>) {
    return FormatIntSpec(static_cast<long long>(value), spec);
  } else {
    return FormatUIntSpec(static_cast<unsigned long long>(value), spec);
  }
}
template <typename T>
  requires std::is_enum_v<T>
std::string FormatOne(T value, const Spec& spec) {
  return FormatOne(static_cast<std::underlying_type_t<T>>(value), spec);
}
inline std::string FormatOne(const void* value, const Spec& spec) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%p", value);
  return Pad(buffer, spec, false);
}

/// Type-erased argument: formats itself against a parsed spec.
class Arg {
 public:
  template <typename T>
  explicit Arg(const T& value)
      : value_(&value), fn_([](const void* p, const Spec& s) {
          return FormatOne(*static_cast<const T*>(p), s);
        }) {}

  std::string Render(const Spec& spec) const { return fn_(value_, spec); }

 private:
  const void* value_;
  std::string (*fn_)(const void*, const Spec&);
};

std::string Vformat(std::string_view fmt, const Arg* args, std::size_t count);

}  // namespace fmtdetail

/// printf-free, type-safe formatting with "{}" placeholders.
template <typename... Args>
std::string Format(std::string_view fmt, const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return fmtdetail::Vformat(fmt, nullptr, 0);
  } else {
    const fmtdetail::Arg erased[] = {fmtdetail::Arg(args)...};
    return fmtdetail::Vformat(fmt, erased, sizeof...(Args));
  }
}

/// Fixed-point rendering helper ("{:.Nf}" with runtime N).
std::string FormatDouble(double value, int precision);

}  // namespace peertrack::util
