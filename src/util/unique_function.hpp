#pragma once
// Move-only type-erased callable (std::move_only_function is C++23; this
// toolchain is C++20). Simulation events and pool tasks capture move-only
// state (unique_ptr message payloads, packaged_tasks), which std::function
// cannot hold.
//
// Small-buffer optimized: callables up to kInlineSize bytes (and
// nothrow-move-constructible) are stored inline, so scheduling a typical
// simulator event — a lambda capturing a few pointers and ids — performs
// no heap allocation at all. This matters because *every* message
// delivery, timer, and rpc deadline in the discrete-event kernel is one of
// these; before the SBO the closure allocation was a top entry in sweep
// profiles. Larger or throwing-move callables fall back to the heap.

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace peertrack::util {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
  /// Inline storage: 48 bytes covers every hot closure in the repo
  /// (delivery lambdas capture {network*, from, to, unique_ptr} = 24-32
  /// bytes; timer lambdas capture {this, id} = 16) while keeping the whole
  /// object at one cache line (48 + two function pointers = 64).
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

 public:
  UniqueFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  UniqueFunction(F&& callable) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(callable));
      invoke_ = &InlineInvoke<D>;
      manage_ = &InlineManage<D>;
    } else {
      Pointee() = new D(std::forward<F>(callable));
      invoke_ = &HeapInvoke<D>;
      manage_ = &HeapManage<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Destroy(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Precondition: non-empty.
  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMoveTo, kDestroy };

  using Invoker = R (*)(void*, Args&&...);
  /// kMoveTo: relocate the payload from `self` into `other` (which is raw
  /// storage) and destroy the source. kDestroy: destroy the payload.
  using Manager = void (*)(Op, void* self, void* other) /*noexcept*/;

  void*& Pointee() noexcept { return *reinterpret_cast<void**>(storage_); }

  void MoveFrom(UniqueFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveTo, other.storage_, storage_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void Destroy() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  template <typename D>
  static R InlineInvoke(void* storage, Args&&... args) {
    return std::invoke(*static_cast<D*>(storage), std::forward<Args>(args)...);
  }

  template <typename D>
  static void InlineManage(Op op, void* self, void* other) {
    auto* payload = static_cast<D*>(self);
    if (op == Op::kMoveTo) {
      ::new (other) D(std::move(*payload));
    }
    payload->~D();
  }

  template <typename D>
  static R HeapInvoke(void* storage, Args&&... args) {
    return std::invoke(**static_cast<D**>(storage), std::forward<Args>(args)...);
  }

  template <typename D>
  static void HeapManage(Op op, void* self, void* other) {
    auto** slot = static_cast<D**>(self);
    if (op == Op::kMoveTo) {
      *static_cast<D**>(other) = *slot;
    } else {
      delete *slot;
    }
    *slot = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  Invoker invoke_ = nullptr;
  Manager manage_ = nullptr;
};

}  // namespace peertrack::util
