#pragma once
// Move-only type-erased callable (std::move_only_function is C++23; this
// toolchain is C++20). Simulation events and pool tasks capture move-only
// state (unique_ptr message payloads, packaged_tasks), which std::function
// cannot hold.

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace peertrack::util {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, F&, Args...>)
  UniqueFunction(F&& callable)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::remove_cvref_t<F>>>(
            std::forward<F>(callable))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  R operator()(Args... args) {
    return impl_->Invoke(std::forward<Args>(args)...);
  }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R Invoke(Args&&... args) = 0;
  };

  template <typename F>
  struct Impl final : Base {
    explicit Impl(F&& f) : callable(std::move(f)) {}
    explicit Impl(const F& f) : callable(f) {}
    R Invoke(Args&&... args) override {
      return std::invoke(callable, std::forward<Args>(args)...);
    }
    F callable;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace peertrack::util
