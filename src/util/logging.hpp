#pragma once
// Minimal leveled logger.
//
// Thread-safe: each Log() call formats into a local buffer and emits a
// single write under a mutex, so interleaved lines never tear. Level is a
// global atomic; the default (Warn) keeps simulations quiet.

#include <atomic>
#include <string_view>

#include "util/format.hpp"

namespace peertrack::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Globally set the minimum level that will be emitted.
void SetLogLevel(LogLevel level) noexcept;

/// Current minimum level.
LogLevel GetLogLevel() noexcept;

/// Parse "trace|debug|info|warn|error|off" (case-insensitive); returns Warn
/// on unrecognized input.
LogLevel ParseLogLevel(std::string_view text) noexcept;

namespace detail {
void Emit(LogLevel level, std::string_view message);
bool Enabled(LogLevel level) noexcept;
}  // namespace detail

/// Format-and-log. No-op (after one atomic load) when `level` is below the
/// global threshold.
template <typename... Args>
void Log(LogLevel level, std::string_view fmt, const Args&... args) {
  if (!detail::Enabled(level)) return;
  detail::Emit(level, Format(fmt, args...));
}

template <typename... Args>
void LogTrace(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Trace, fmt, args...);
}
template <typename... Args>
void LogDebug(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Debug, fmt, args...);
}
template <typename... Args>
void LogInfo(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Info, fmt, args...);
}
template <typename... Args>
void LogWarn(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Warn, fmt, args...);
}
template <typename... Args>
void LogError(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Error, fmt, args...);
}

}  // namespace peertrack::util
