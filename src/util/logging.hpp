#pragma once
// Minimal leveled logger.
//
// Thread-safe: each Log() call formats into a local buffer and emits a
// single write under a mutex, so interleaved lines never tear. Level is a
// global atomic; the default (Warn) keeps simulations quiet.

#include <atomic>
#include <cstdint>
#include <string_view>
#include <utility>

#include "util/format.hpp"

namespace peertrack::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Globally set the minimum level that will be emitted.
void SetLogLevel(LogLevel level) noexcept;

/// Current minimum level.
LogLevel GetLogLevel() noexcept;

/// Parse "trace|debug|info|warn|error|off" (case-insensitive); returns Warn
/// on unrecognized input.
LogLevel ParseLogLevel(std::string_view text) noexcept;

/// Ambient trace/span ids stamped into every emitted line as
/// "[t:<trace> s:<span>]" while trace_id != 0 (thread-local, so parallel
/// sweeps don't cross-tag). Set/cleared by obs::ScopedLogTrace around
/// traced protocol steps; lines from one query can then be grepped by id.
void SetLogTrace(std::uint64_t trace_id, std::uint64_t span_id) noexcept;
/// Current ambient ids ({0, 0} when unset); used to restore nested scopes.
std::pair<std::uint64_t, std::uint64_t> GetLogTrace() noexcept;

namespace detail {
void Emit(LogLevel level, std::string_view message);
bool Enabled(LogLevel level) noexcept;
}  // namespace detail

/// Format-and-log. No-op (after one atomic load) when `level` is below the
/// global threshold.
template <typename... Args>
void Log(LogLevel level, std::string_view fmt, const Args&... args) {
  if (!detail::Enabled(level)) return;
  detail::Emit(level, Format(fmt, args...));
}

template <typename... Args>
void LogTrace(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Trace, fmt, args...);
}
template <typename... Args>
void LogDebug(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Debug, fmt, args...);
}
template <typename... Args>
void LogInfo(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Info, fmt, args...);
}
template <typename... Args>
void LogWarn(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Warn, fmt, args...);
}
template <typename... Args>
void LogError(std::string_view fmt, const Args&... args) {
  Log(LogLevel::Error, fmt, args...);
}

}  // namespace peertrack::util
