#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include "util/format.hpp"
#include <numeric>

namespace peertrack::util {

void RunningStats::Add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::StdDev() const noexcept { return std::sqrt(Variance()); }

double Percentiles::Percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      bucket_width_((hi - lo) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::Add(double x) noexcept {
  std::size_t bucket;
  if (x < lo_) {
    bucket = 0;
  } else if (x >= hi_) {
    bucket = counts_.size() - 1;
  } else {
    bucket = static_cast<std::size_t>((x - lo_) / bucket_width_);
    bucket = std::min(bucket, counts_.size() - 1);
  }
  ++counts_[bucket];
  ++total_;
}

double Histogram::BucketLow(std::size_t bucket) const noexcept {
  return lo_ + bucket_width_ * static_cast<double>(bucket);
}

double Histogram::BucketHigh(std::size_t bucket) const noexcept {
  return lo_ + bucket_width_ * static_cast<double>(bucket + 1);
}

std::string Histogram::Render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out += Format("[{:>10.3f}, {:>10.3f}) {:>8} {}\n", BucketLow(b),
                       BucketHigh(b), counts_[b], std::string(bar, '#'));
  }
  return out;
}

std::vector<LorenzPoint> LorenzCurve(std::span<const std::uint64_t> loads,
                                     std::size_t points) {
  std::vector<LorenzPoint> curve;
  if (loads.empty() || points == 0) {
    curve.push_back({0.0, 0.0});
    curve.push_back({1.0, 1.0});
    return curve;
  }
  std::vector<std::uint64_t> sorted(loads.begin(), loads.end());
  std::sort(sorted.begin(), sorted.end());
  const double total = static_cast<double>(
      std::accumulate(sorted.begin(), sorted.end(), std::uint64_t{0}));
  curve.reserve(points + 1);
  curve.push_back({0.0, 0.0});
  double cumulative = 0.0;
  std::size_t next_index = 0;
  for (std::size_t p = 1; p <= points; ++p) {
    const auto upto = static_cast<std::size_t>(
        std::llround(static_cast<double>(p) / static_cast<double>(points) *
                     static_cast<double>(sorted.size())));
    while (next_index < upto && next_index < sorted.size()) {
      cumulative += static_cast<double>(sorted[next_index]);
      ++next_index;
    }
    curve.push_back({static_cast<double>(p) / static_cast<double>(points),
                     total > 0.0 ? cumulative / total : 0.0});
  }
  return curve;
}

double GiniCoefficient(std::span<const std::uint64_t> loads) {
  if (loads.size() < 2) return 0.0;
  std::vector<std::uint64_t> sorted(loads.begin(), loads.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    total += static_cast<double>(sorted[i]);
  }
  if (total == 0.0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double PeakToMeanRatio(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::uint64_t peak = 0;
  std::uint64_t sum = 0;
  for (auto x : loads) {
    peak = std::max(peak, x);
    sum += x;
  }
  if (sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(loads.size());
  return static_cast<double>(peak) / mean;
}

double NonZeroFraction(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::size_t nonzero = 0;
  for (auto x : loads) {
    if (x != 0) ++nonzero;
  }
  return static_cast<double>(nonzero) / static_cast<double>(loads.size());
}

}  // namespace peertrack::util
