#include "util/config.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace peertrack::util {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

Config Config::FromArgs(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.starts_with("--")) {
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        config.Set(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      } else if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
        config.Set(std::string(arg), argv[++i]);
      } else {
        config.Set(std::string(arg), "true");
      }
    } else {
      config.positional_.emplace_back(arg);
    }
  }
  return config;
}

Config Config::FromString(std::string_view text) {
  Config config;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of(",\n", start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = Trim(text.substr(start, end - start));
    if (!item.empty()) {
      if (const auto eq = item.find('='); eq != std::string_view::npos) {
        config.Set(std::string(Trim(item.substr(0, eq))),
                   std::string(Trim(item.substr(eq + 1))));
      } else {
        config.Set(std::string(item), "true");
      }
    }
    start = end + 1;
  }
  return config;
}

Config Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Config{};
  std::stringstream buffer;
  std::string line;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    buffer << line << '\n';
  }
  return FromString(buffer.str());
}

void Config::MergeFrom(const Config& other) {
  for (const auto& key : other.Keys()) {
    Set(key, other.GetString(key, ""));
  }
  positional_.insert(positional_.end(), other.positional_.begin(),
                     other.positional_.end());
}

void Config::Set(std::string key, std::string value) {
  values_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::Has(std::string_view key) const { return Find(key).has_value(); }

std::optional<std::string> Config::Find(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::GetString(std::string_view key, std::string_view fallback) const {
  if (auto v = Find(key)) return *v;
  return std::string(fallback);
}

std::int64_t Config::GetInt(std::string_view key, std::int64_t fallback) const {
  const auto v = Find(key);
  if (!v) return fallback;
  std::int64_t out{};
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  return (ec == std::errc{} && ptr == v->data() + v->size()) ? out : fallback;
}

std::uint64_t Config::GetUInt(std::string_view key, std::uint64_t fallback) const {
  const auto v = Find(key);
  if (!v) return fallback;
  std::uint64_t out{};
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  return (ec == std::errc{} && ptr == v->data() + v->size()) ? out : fallback;
}

double Config::GetDouble(std::string_view key, double fallback) const {
  const auto v = Find(key);
  if (!v) return fallback;
  double out{};
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  return (ec == std::errc{} && ptr == v->data() + v->size()) ? out : fallback;
}

bool Config::GetBool(std::string_view key, bool fallback) const {
  const auto v = Find(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  return fallback;
}

std::vector<std::int64_t> Config::GetIntList(std::string_view key,
                                             std::vector<std::int64_t> fallback) const {
  const auto v = Find(key);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::string_view text = *v;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = Trim(text.substr(start, end - start));
    if (!item.empty()) {
      std::int64_t value{};
      const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
      if (ec != std::errc{} || ptr != item.data() + item.size()) return fallback;
      out.push_back(value);
    }
    start = end + 1;
  }
  return out.empty() ? fallback : out;
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, _] : values_) keys.push_back(k);
  return keys;
}

}  // namespace peertrack::util
