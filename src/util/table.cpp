#include "util/table.hpp"

#include <algorithm>
#include "util/format.hpp"

namespace peertrack::util {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' &&
        c != 'E' && c != '%' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells, bool align_right) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      const std::size_t pad = widths[c] - cell.size();
      line += ' ';
      if (align_right && LooksNumeric(cell)) {
        line += std::string(pad, ' ');
        line += cell;
      } else {
        line += cell;
        line += std::string(pad, ' ');
      }
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_, false);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row, true);
  return out;
}

}  // namespace peertrack::util
