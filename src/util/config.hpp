#pragma once
// Key=value configuration with CLI override parsing.
//
// Benches and examples accept `--key=value` / `--key value` / `--flag`
// arguments; Config stores them as strings and converts on access with a
// typed default. Unknown keys are kept (so scenario presets can pass
// through), but can be audited via Keys().

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace peertrack::util {

class Config {
 public:
  Config() = default;

  /// Parse argv-style arguments. Accepts "--key=value", "--key value" (when
  /// the next token does not start with "--"), and bare "--flag" (stored as
  /// "true"). Positional arguments are collected separately.
  static Config FromArgs(int argc, const char* const* argv);

  /// Parse newline- or comma-separated "key=value" pairs.
  static Config FromString(std::string_view text);

  /// Load key=value lines from a file ('#' comments allowed). Returns an
  /// empty config when the file cannot be read.
  static Config FromFile(const std::string& path);

  /// Overlay: values in `other` win (CLI overrides file).
  void MergeFrom(const Config& other);

  void Set(std::string key, std::string value);
  bool Has(std::string_view key) const;

  std::string GetString(std::string_view key, std::string_view fallback) const;
  std::int64_t GetInt(std::string_view key, std::int64_t fallback) const;
  std::uint64_t GetUInt(std::string_view key, std::uint64_t fallback) const;
  double GetDouble(std::string_view key, double fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Parse a comma-separated integer list, e.g. "64,128,256,512".
  std::vector<std::int64_t> GetIntList(std::string_view key,
                                       std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& Positional() const { return positional_; }
  std::vector<std::string> Keys() const;

 private:
  std::optional<std::string> Find(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace peertrack::util
