#pragma once
// Fixed-size thread pool for fanning out independent simulation runs.
//
// Each parameter-sweep point in the benchmark harnesses is an independent,
// deterministic simulation; the pool runs them concurrently (message-passing
// style: tasks own their inputs, results come back through futures — no
// shared mutable simulation state crosses threads).

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/unique_function.hpp"

namespace peertrack::util {

class ThreadPool {
 public:
  /// `threads == 0` uses hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const noexcept { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result. The callable is
  /// moved into the pool, so capture by value (Core Guidelines F.53).
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::packaged_task<R()>(std::forward<F>(task));
    auto future = packaged.get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace_back(
          [job = std::move(packaged)]() mutable { job(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop(std::stop_token stop);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<util::UniqueFunction<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

}  // namespace peertrack::util
