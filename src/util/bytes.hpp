#pragma once
// Binary serialization primitives (little-endian, fixed-width) for the
// snapshot/restore support of local repositories. No allocation tricks —
// explicit, auditable encode/decode with bounds-checked reads.

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace peertrack::util {

class ByteWriter {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  void Bytes(const void* data, std::size_t size) {
    U64(size);
    Raw(data, size);
  }
  void String(std::string_view s) { Bytes(s.data(), s.size()); }

  const std::vector<std::uint8_t>& Data() const noexcept { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

 private:
  void Raw(const void* data, std::size_t size) {
    if (size == 0) return;
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + size);
    std::memcpy(buffer_.data() + old_size, data, size);
  }
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked reader. Any out-of-range read latches the error flag and
/// returns zero values; callers check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t U8() { return ReadAs<std::uint8_t>(); }
  std::uint32_t U32() { return ReadAs<std::uint32_t>(); }
  std::uint64_t U64() { return ReadAs<std::uint64_t>(); }
  double F64() { return ReadAs<double>(); }
  bool Bool() { return U8() != 0; }

  std::string String() {
    const std::uint64_t length = U64();
    if (!CanRead(length)) return {};
    std::string out(reinterpret_cast<const char*>(data_ + offset_),
                    static_cast<std::size_t>(length));
    offset_ += static_cast<std::size_t>(length);
    return out;
  }

  bool ok() const noexcept { return ok_; }
  bool AtEnd() const noexcept { return offset_ == size_; }
  std::size_t Remaining() const noexcept { return size_ - offset_; }

 private:
  template <typename T>
  T ReadAs() {
    if (!CanRead(sizeof(T))) return T{};
    T value;
    std::memcpy(&value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  bool CanRead(std::uint64_t bytes) {
    if (!ok_ || bytes > size_ - offset_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace peertrack::util
