#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace peertrack::util {

namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // All-zero state is the one forbidden state of xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::Next() noexcept {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's method: multiply-shift with rejection of the biased tail.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() noexcept {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) noexcept {
  if (rate <= 0.0) return 0.0;
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::NextNormal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) noexcept {
  k = std::min(k, n);
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k);
  // Floyd's algorithm: uniform k-subset in O(k) expected draws.
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(NextBelow(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<std::size_t> result(chosen.begin(), chosen.end());
  std::sort(result.begin(), result.end());
  return result;
}

Rng Rng::Fork() noexcept {
  return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL);
}

}  // namespace peertrack::util
