#pragma once
// Deterministic pseudo-random number generation.
//
// All randomness in a simulation flows from one Rng seeded at run start, so
// every experiment is reproducible bit-for-bit. The core generator is
// xoshiro256** seeded via SplitMix64 (the construction recommended by the
// xoshiro authors); both are implemented here so the repo has no dependence
// on unspecified standard-library distribution internals.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace peertrack::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with explicit, value-semantic state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t Next() noexcept;
  result_type operator()() noexcept { return Next(); }

  /// Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5) noexcept;

  /// Exponentially distributed with the given rate (mean 1/rate).
  double NextExponential(double rate) noexcept;

  /// Standard normal via Marsaglia polar method.
  double NextNormal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::span<T> items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) noexcept {
    Shuffle(std::span<T>(items));
  }

  /// Uniformly chosen element; precondition: !items.empty().
  template <typename T>
  const T& Pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(NextBelow(items.size()))];
  }

  /// Sample k distinct indices from [0, n) (Floyd's algorithm); returns
  /// sorted indices. k is clamped to n.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k) noexcept;

  /// Derive an independent child generator (for per-node streams).
  Rng Fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  // Cached second value from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace peertrack::util
