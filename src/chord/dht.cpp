#include "chord/dht.hpp"

namespace peertrack::chord {

namespace {

struct DhtPutRequest final : rpc::RequestBase<DhtPutRequest> {
  Key key;
  std::string value;
  std::string_view TypeName() const noexcept override { return "dht.put_req"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + 20 + value.size();
  }
};

struct DhtPutAck final : rpc::ResponseBase<DhtPutAck> {
  std::string_view TypeName() const noexcept override { return "dht.put_ack"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes; }
};

struct DhtGetRequest final : rpc::RequestBase<DhtGetRequest> {
  Key key;
  std::string_view TypeName() const noexcept override { return "dht.get_req"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes + 20; }
};

struct DhtGetResponse final : rpc::ResponseBase<DhtGetResponse> {
  bool found = false;
  std::string value;
  std::string_view TypeName() const noexcept override { return "dht.get_resp"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + 1 + value.size();
  }
};

struct DhtMigrate final : sim::MessageBase<DhtMigrate> {
  std::vector<std::pair<Key, std::string>> entries;
  std::string_view TypeName() const noexcept override { return "dht.migrate"; }
  std::size_t ApproxBytes() const noexcept override {
    std::size_t bytes = 0;
    for (const auto& [key, value] : entries) bytes += 20 + value.size();
    return bytes;
  }
};

}  // namespace

DhtNode::DhtNode(ChordNode& chord)
    : chord_(chord), rpc_(chord.network()), server_(chord.network()) {
  chord_.SetAppHandler(this);
  rpc_.Bind(chord_.Self().actor);
  server_.Bind(chord_.Self().actor);
  RegisterHandlers();
}

void DhtNode::RegisterHandlers() {
  server_.Handle<DhtPutRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<DhtPutRequest> request) {
        store_[request->key] = std::move(request->value);
        return std::make_unique<DhtPutAck>();
      });
  server_.Handle<DhtGetRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<DhtGetRequest> request) {
        auto response = std::make_unique<DhtGetResponse>();
        if (const auto it = store_.find(request->key); it != store_.end()) {
          response->found = true;
          response->value = it->second;
        }
        return response;
      });
  dispatcher_.On<DhtMigrate>(
      [this](sim::ActorId, std::unique_ptr<DhtMigrate> migrate) {
        for (auto& [key, value] : migrate->entries) {
          store_[key] = std::move(value);
        }
      });
  rpc_.RouteResponses<DhtPutAck>(dispatcher_);
  rpc_.RouteResponses<DhtGetResponse>(dispatcher_);
}

void DhtNode::Put(const Key& key, std::string value, PutCallback callback) {
  sim::Network& net = chord_.network();
  obs::TraceContext ctx;
  if (net.tracer().Enabled()) {
    ctx = net.tracer().StartTrace("dht.put", chord_.Self().actor,
                                  net.simulator().Now());
  }
  chord_.Lookup(key, ctx,
                [this, key, ctx, value = std::move(value),
                 callback = std::move(callback)](const NodeRef& owner,
                                                 std::size_t) mutable {
    sim::Network& net = chord_.network();
    if (!owner.Valid()) {
      net.tracer().EndSpan(ctx, net.simulator().Now(), "lookup-failed");
      if (callback) callback(false);
      return;
    }
    auto request = std::make_unique<DhtPutRequest>();
    request->key = key;
    request->value = std::move(value);
    request->trace = ctx;
    rpc_.Call<DhtPutAck>(
        owner.actor, std::move(request), policy_,
        [this, ctx, callback = std::move(callback)](
            rpc::Status status, std::unique_ptr<DhtPutAck>) mutable {
          sim::Network& net = chord_.network();
          net.tracer().EndSpan(ctx, net.simulator().Now(),
                               status == rpc::Status::kOk ? "ok" : "timeout");
          if (callback) callback(status == rpc::Status::kOk);
        });
  });
}

void DhtNode::Get(const Key& key, GetCallback callback) {
  sim::Network& net = chord_.network();
  obs::TraceContext ctx;
  if (net.tracer().Enabled()) {
    ctx = net.tracer().StartTrace("dht.get", chord_.Self().actor,
                                  net.simulator().Now());
  }
  chord_.Lookup(key, ctx,
                [this, key, ctx, callback = std::move(callback)](
                    const NodeRef& owner, std::size_t) mutable {
    sim::Network& net = chord_.network();
    if (!owner.Valid()) {
      net.tracer().EndSpan(ctx, net.simulator().Now(), "lookup-failed");
      if (callback) callback(false, "");
      return;
    }
    auto request = std::make_unique<DhtGetRequest>();
    request->key = key;
    request->trace = ctx;
    rpc_.Call<DhtGetResponse>(
        owner.actor, std::move(request), policy_,
        [this, ctx, callback = std::move(callback)](
            rpc::Status status, std::unique_ptr<DhtGetResponse> response) mutable {
          sim::Network& net = chord_.network();
          if (!callback) {
            net.tracer().EndSpan(ctx, net.simulator().Now(), "ok");
            return;
          }
          if (status != rpc::Status::kOk) {
            net.tracer().EndSpan(ctx, net.simulator().Now(), "timeout");
            callback(false, "");
            return;
          }
          net.tracer().EndSpan(ctx, net.simulator().Now(),
                               response->found ? "ok" : "not-found");
          callback(response->found, response->value);
        });
  });
}

std::optional<std::string> DhtNode::LocalValue(const Key& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

void DhtNode::OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  dispatcher_.Dispatch(from, message);
}

void DhtNode::OnRangeTransfer(const Key& lo, const Key& hi, const NodeRef& new_owner) {
  if (new_owner.actor == chord_.Self().actor) return;
  auto migrate = std::make_unique<DhtMigrate>();
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->first.InHalfOpenLoHi(lo, hi)) {
      migrate->entries.emplace_back(it->first, std::move(it->second));
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
  if (!migrate->entries.empty()) {
    chord_.network().Send(chord_.Self().actor, new_owner.actor, std::move(migrate));
  }
}

}  // namespace peertrack::chord
