#include "chord/dht.hpp"

namespace peertrack::chord {

namespace {

struct DhtPutRequest final : sim::Message {
  std::uint64_t request_id = 0;
  Key key;
  std::string value;
  std::string_view TypeName() const noexcept override { return "dht.put_req"; }
  std::size_t ApproxBytes() const noexcept override { return 8 + 20 + value.size(); }
};

struct DhtPutAck final : sim::Message {
  std::uint64_t request_id = 0;
  std::string_view TypeName() const noexcept override { return "dht.put_ack"; }
  std::size_t ApproxBytes() const noexcept override { return 8; }
};

struct DhtGetRequest final : sim::Message {
  std::uint64_t request_id = 0;
  Key key;
  std::string_view TypeName() const noexcept override { return "dht.get_req"; }
  std::size_t ApproxBytes() const noexcept override { return 8 + 20; }
};

struct DhtGetResponse final : sim::Message {
  std::uint64_t request_id = 0;
  bool found = false;
  std::string value;
  std::string_view TypeName() const noexcept override { return "dht.get_resp"; }
  std::size_t ApproxBytes() const noexcept override { return 8 + 1 + value.size(); }
};

struct DhtMigrate final : sim::Message {
  std::vector<std::pair<Key, std::string>> entries;
  std::string_view TypeName() const noexcept override { return "dht.migrate"; }
  std::size_t ApproxBytes() const noexcept override {
    std::size_t bytes = 0;
    for (const auto& [key, value] : entries) bytes += 20 + value.size();
    return bytes;
  }
};

}  // namespace

DhtNode::DhtNode(ChordNode& chord) : chord_(chord) { chord_.SetAppHandler(this); }

void DhtNode::Put(const Key& key, std::string value, PutCallback callback) {
  const std::uint64_t request_id = next_request_id_++;
  pending_puts_.emplace(request_id,
                        PendingPut{key, std::move(value), std::move(callback)});
  chord_.Lookup(key, [this, request_id](const NodeRef& owner, std::size_t) {
    const auto it = pending_puts_.find(request_id);
    if (it == pending_puts_.end()) return;
    if (!owner.Valid()) {
      PendingPut pending = std::move(it->second);
      pending_puts_.erase(it);
      if (pending.callback) pending.callback(false);
      return;
    }
    auto request = std::make_unique<DhtPutRequest>();
    request->request_id = request_id;
    request->key = it->second.key;
    request->value = it->second.value;
    chord_.network().Send(chord_.Self().actor, owner.actor, std::move(request));
  });
}

void DhtNode::Get(const Key& key, GetCallback callback) {
  const std::uint64_t request_id = next_request_id_++;
  pending_gets_.emplace(request_id, PendingGet{key, std::move(callback)});
  chord_.Lookup(key, [this, request_id](const NodeRef& owner, std::size_t) {
    const auto it = pending_gets_.find(request_id);
    if (it == pending_gets_.end()) return;
    if (!owner.Valid()) {
      PendingGet pending = std::move(it->second);
      pending_gets_.erase(it);
      if (pending.callback) pending.callback(false, "");
      return;
    }
    auto request = std::make_unique<DhtGetRequest>();
    request->request_id = request_id;
    request->key = it->second.key;
    chord_.network().Send(chord_.Self().actor, owner.actor, std::move(request));
  });
}

std::optional<std::string> DhtNode::LocalValue(const Key& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

void DhtNode::OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  if (auto* put = dynamic_cast<DhtPutRequest*>(message.get())) {
    store_[put->key] = std::move(put->value);
    auto ack = std::make_unique<DhtPutAck>();
    ack->request_id = put->request_id;
    chord_.network().Send(chord_.Self().actor, from, std::move(ack));
    return;
  }
  if (auto* ack = dynamic_cast<DhtPutAck*>(message.get())) {
    const auto it = pending_puts_.find(ack->request_id);
    if (it == pending_puts_.end()) return;
    PendingPut pending = std::move(it->second);
    pending_puts_.erase(it);
    if (pending.callback) pending.callback(true);
    return;
  }
  if (auto* get = dynamic_cast<DhtGetRequest*>(message.get())) {
    auto response = std::make_unique<DhtGetResponse>();
    response->request_id = get->request_id;
    if (const auto it = store_.find(get->key); it != store_.end()) {
      response->found = true;
      response->value = it->second;
    }
    chord_.network().Send(chord_.Self().actor, from, std::move(response));
    return;
  }
  if (auto* response = dynamic_cast<DhtGetResponse*>(message.get())) {
    const auto it = pending_gets_.find(response->request_id);
    if (it == pending_gets_.end()) return;
    PendingGet pending = std::move(it->second);
    pending_gets_.erase(it);
    if (pending.callback) pending.callback(response->found, response->value);
    return;
  }
  if (auto* migrate = dynamic_cast<DhtMigrate*>(message.get())) {
    for (auto& [key, value] : migrate->entries) {
      store_[key] = std::move(value);
    }
    return;
  }
}

void DhtNode::OnRangeTransfer(const Key& lo, const Key& hi, const NodeRef& new_owner) {
  if (new_owner.actor == chord_.Self().actor) return;
  auto migrate = std::make_unique<DhtMigrate>();
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->first.InHalfOpenLoHi(lo, hi)) {
      migrate->entries.emplace_back(it->first, std::move(it->second));
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
  if (!migrate->entries.empty()) {
    chord_.network().Send(chord_.Self().actor, new_owner.actor, std::move(migrate));
  }
}

}  // namespace peertrack::chord
