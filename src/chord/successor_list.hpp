#pragma once
// Chord successor list.
//
// The r nearest successors, kept sorted by clockwise distance from the
// owner. Redundancy here is what lets the ring survive node failures: when
// the immediate successor dies, the next entry takes over.

#include <cstddef>
#include <vector>

#include "chord/types.hpp"

namespace peertrack::chord {

class SuccessorList {
 public:
  static constexpr std::size_t kDefaultCapacity = 8;

  explicit SuccessorList(const Key& owner,
                         std::size_t capacity = kDefaultCapacity) noexcept
      : owner_(owner), capacity_(capacity) {}

  bool Empty() const noexcept { return entries_.empty(); }
  std::size_t Size() const noexcept { return entries_.size(); }
  std::size_t Capacity() const noexcept { return capacity_; }

  /// Nearest live successor. Precondition: !Empty().
  const NodeRef& First() const noexcept { return entries_.front(); }

  const std::vector<NodeRef>& Entries() const noexcept { return entries_; }

  /// Insert a candidate, keeping clockwise order from the owner and the
  /// capacity bound. Owner itself and duplicates are ignored.
  /// Returns true if the list changed.
  bool Offer(const NodeRef& node);

  /// Merge a peer's successor list (used after stabilize).
  void Merge(const std::vector<NodeRef>& peers);

  /// Drop a dead node. Returns true if it was present.
  bool Remove(const NodeRef& node);

  /// Replace all entries (oracle bootstrap).
  void Assign(std::vector<NodeRef> entries);

 private:
  Key owner_;
  std::size_t capacity_;
  std::vector<NodeRef> entries_;
};

}  // namespace peertrack::chord
