#pragma once
// Chord protocol node (Stoica et al., SIGCOMM'01), the overlay the paper
// builds on.
//
// Each ChordNode is a simulated actor with a 160-bit id = SHA1(address).
// It maintains a predecessor, a successor list, and a finger table, and
// resolves keys with *iterative* lookups: the initiator contacts each hop
// itself, which both matches the paper's message accounting and lets the
// tracking layer piggyback "does any intermediate node know this object?"
// checks on the same routing walk (Section IV-B of the paper).
//
// All request/response exchanges (lookup steps, stabilize, ping) go through
// the rpc layer: correlation ids, per-call deadlines, and retry with
// backoff live there. A hop is only treated as dead after a call exhausts
// its retry policy, so transient wire loss no longer evicts live peers.
//
// Application payloads are forwarded to an AppHandler so the tracking layer
// can colocate gateway-index state with the overlay node.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "chord/finger_table.hpp"
#include "chord/messages.hpp"
#include "chord/successor_list.hpp"
#include "chord/types.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/rpc.hpp"
#include "sim/network.hpp"

namespace peertrack::chord {

class ChordNode final : public sim::Actor {
 public:
  /// Application plug-in living on this overlay node.
  class AppHandler {
   public:
    virtual ~AppHandler() = default;

    /// Non-Chord message addressed to this node.
    virtual void OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) = 0;

    /// Keys in the ring interval (lo, hi] are now owned by `new_owner`
    /// (a predecessor joined or this node is leaving); the application
    /// should hand matching state over.
    virtual void OnRangeTransfer(const Key& lo, const Key& hi, const NodeRef& new_owner) {
      (void)lo; (void)hi; (void)new_owner;
    }

    /// The local neighborhood changed: the predecessor was adopted or
    /// evicted, or a peer was confirmed dead and scrubbed from the
    /// successor list. Replication layers use this to re-check ownership
    /// (promote replicas) and re-push state to the current successor set.
    virtual void OnNeighborhoodChanged() {}
  };

  struct Options {
    /// Deadline/backoff for every chord RPC (lookup step, stabilize,
    /// ping). A peer is evicted only after a call exhausts this policy.
    rpc::RetryPolicy rpc;
    std::size_t max_lookup_steps = 256; ///< Routing-loop safety valve.
    std::size_t lookup_retries = 3;     ///< Restarts after a dead hop.
    std::size_t successor_list_size = SuccessorList::kDefaultCapacity;
    /// How long a death certificate keeps being gossiped after the original
    /// eviction. Certificates ride StabilizeResponse backward along the
    /// ring (one hop per stabilize round), so the TTL must cover
    /// successor_list_size rounds; the default covers that with a wide
    /// margin. 0 disables the gossip entirely — the pre-scrub behaviour,
    /// where a crashed node can sit in deep successor-list slots of nodes
    /// that never probe it (kept for the regression test).
    double death_cert_ttl_ms = 30'000.0;
  };

  /// Registers itself with the network. `address` determines the ring id.
  ChordNode(sim::Network& network, std::string address, Options options);
  ChordNode(sim::Network& network, std::string address)
      : ChordNode(network, std::move(address), Options{}) {}

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  const NodeRef& Self() const noexcept { return self_; }
  const std::string& Address() const noexcept { return address_; }
  const std::optional<NodeRef>& Predecessor() const noexcept { return predecessor_; }

  /// Current immediate successor; Self() on a single-node ring.
  NodeRef Successor() const noexcept;

  bool Alive() const noexcept { return alive_; }

  void SetAppHandler(AppHandler* handler) noexcept { app_ = handler; }

  sim::Network& network() noexcept { return network_; }
  FingerTable& fingers() noexcept { return fingers_; }
  const FingerTable& fingers() const noexcept { return fingers_; }
  SuccessorList& successors() noexcept { return successors_; }
  const SuccessorList& successors() const noexcept { return successors_; }

  // --- Membership -----------------------------------------------------

  /// Become the first node of a new ring.
  void CreateRing();

  /// Join via `bootstrap`; `on_joined` fires once the successor is known.
  void Join(const NodeRef& bootstrap, std::function<void()> on_joined = {});

  /// Graceful departure: hands the owned key range to the successor (via
  /// AppHandler::OnRangeTransfer), informs neighbours, and goes down.
  void Leave();

  /// Crash without any notification (for failure experiments). Outstanding
  /// RPCs are abandoned silently.
  void Crash();

  /// Begin periodic stabilize/fix-fingers timers.
  void StartMaintenance(double stabilize_every_ms, double fix_fingers_every_ms);

  // --- Routing ----------------------------------------------------------

  using LookupCallback = std::function<void(const NodeRef& owner, std::size_t hops)>;

  /// Resolve the successor of `key`. `hops` counts remote routing steps
  /// (0 when answered locally). On unrecoverable failure the callback gets
  /// an invalid NodeRef.
  void Lookup(const Key& key, LookupCallback callback) {
    Lookup(key, obs::TraceContext{}, std::move(callback));
  }

  /// Same, within a causal trace: the lookup opens a "chord.lookup" span
  /// under `parent` (or as a new root when parent is invalid and tracing
  /// is on) and every step RPC becomes a child attempt span.
  void Lookup(const Key& key, const obs::TraceContext& parent, LookupCallback callback);

  /// One local routing decision for `key`: done (with the owner) or the
  /// next node to ask. Exposed so higher layers can drive their own
  /// iterative walks with protocol-specific payloads.
  struct RouteStep {
    bool done = false;
    NodeRef node;
  };
  RouteStep NextRouteStep(const Key& key) const;

  /// True if this node currently owns `key` (key in (predecessor, self]).
  /// With no predecessor the node claims the whole ring.
  bool Owns(const Key& key) const noexcept;

  // --- Oracle bootstrap (ChordRing / tests) -----------------------------

  /// Install exact routing state directly. Used to stand up large rings
  /// without simulating thousands of maintenance rounds.
  void OracleWire(std::optional<NodeRef> predecessor, std::vector<NodeRef> successor_list);
  void OracleSetFinger(unsigned index, const NodeRef& node) { fingers_.Set(index, node); }
  void MarkAlive() { alive_ = true; }

  // --- Actor ------------------------------------------------------------

  void OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override;

 private:
  struct PendingLookup {
    Key key;
    LookupCallback callback;
    std::size_t hops = 0;
    std::size_t steps = 0;
    std::size_t retries = 0;
    NodeRef current;         ///< Hop currently being queried.
    rpc::CallId call = 0;    ///< In-flight step RPC.
    obs::TraceContext span;  ///< "chord.lookup" span (invalid when untraced).
  };

  void RegisterHandlers();

  std::unique_ptr<LookupStepResponse> HandleLookupStep(const LookupStepRequest& request);
  void HandleLookupResponse(std::uint64_t lookup_id, const LookupStepResponse& response);
  void LookupSendStep(std::uint64_t lookup_id, const NodeRef& target);
  void LookupStepTimedOut(std::uint64_t lookup_id);
  void FinishLookup(std::uint64_t lookup_id, const NodeRef& owner);
  void RestartLookup(std::uint64_t lookup_id);

  void HandleStabilizeResponse(const StabilizeResponse& response);
  void HandleNotify(const NotifyMessage& notify);
  void HandleLeave(const LeaveNotice& notice);

  void DoStabilize();
  void DoFixFingers();
  void DoCheckPredecessor();
  void ScheduleMaintenance();

  void AdoptPredecessor(const NodeRef& candidate);
  void EvictPeer(const NodeRef& peer);
  /// Merge a gossiped certificate: evict the peer and keep re-gossiping the
  /// certificate (with its original timestamp) until the TTL expires.
  void AdoptDeathCertificate(const DeathCertificate& cert);
  /// Certificates still within the TTL, pruned in place.
  const std::vector<DeathCertificate>& FreshDeathCertificates();
  void NotifyNeighborhoodChanged();
  bool IsConfirmedDead(const NodeRef& peer) const {
    return confirmed_dead_.contains(peer.actor);
  }

  sim::Network& network_;
  std::string address_;
  NodeRef self_;
  Options options_;

  rpc::Dispatcher dispatcher_;
  rpc::RpcClient rpc_;
  rpc::RpcServer server_;

  bool alive_ = false;
  std::optional<NodeRef> predecessor_;
  SuccessorList successors_;
  FingerTable fingers_;
  AppHandler* app_ = nullptr;

  std::uint64_t next_lookup_id_ = 1;
  std::unordered_map<std::uint64_t, PendingLookup> pending_lookups_;

  /// Cached instrument references (resolved once; valid across
  /// Metrics::Reset, which zeroes in place — see sim::Metrics).
  obs::Counter& ctr_successor_failover_;
  obs::Counter& ctr_predecessor_evicted_;
  obs::Counter& ctr_lookup_hop_timeout_;
  obs::Counter& ctr_death_cert_scrub_;

  // Peers this node has seen depart or time out. Gossiped routing state
  // (merged successor lists, stale finger owners) is filtered against this
  // set so confirmed-dead peers cannot re-enter local tables. Actor ids
  // are never reused in a simulation, so the set is monotone-safe.
  std::unordered_set<sim::ActorId> confirmed_dead_;

  // Certificates this node still gossips (first-hand evictions plus
  // adopted ones, each with the *original* eviction time so propagation is
  // TTL-bounded, not TTL-per-hop). Pruned lazily by FreshDeathCertificates.
  std::vector<DeathCertificate> death_certs_;

  // Stabilize / check_predecessor in flight (one at a time each).
  bool stabilize_inflight_ = false;
  NodeRef stabilize_target_;
  bool ping_inflight_ = false;
  NodeRef ping_target_;

  double stabilize_every_ms_ = 0.0;
  double fix_fingers_every_ms_ = 0.0;
  unsigned next_finger_ = 0;
  std::function<void()> on_joined_;
};

}  // namespace peertrack::chord
