#pragma once
// Ring harness: owns a set of ChordNodes and knows how to stand them up.
//
// Two bootstrap modes:
//  * OracleBootstrap() — computes the exact ring (predecessors, successor
//    lists, all 160 fingers) directly. Used by the experiment harnesses,
//    where the paper's evaluation assumes a converged overlay and simulating
//    thousands of maintenance rounds per sweep point would only add noise.
//  * ProtocolBootstrap() — joins nodes through the real protocol and lets
//    stabilization converge. Used by the protocol tests and the churn
//    example.
//
// The ring also serves as the *test oracle*: ExpectedSuccessor() computes
// ground-truth key ownership from the sorted id set.

#include <memory>
#include <string>
#include <vector>

#include "chord/chord_node.hpp"
#include "sim/network.hpp"

namespace peertrack::chord {

class ChordRing {
 public:
  struct Options {
    ChordNode::Options node;
    double stabilize_every_ms = 250.0;
    double fix_fingers_every_ms = 50.0;
  };

  ChordRing(sim::Network& network, Options options);
  explicit ChordRing(sim::Network& network) : ChordRing(network, Options{}) {}

  /// Create a node object (registered with the network but not yet part of
  /// the ring). Address doubles as the human-readable name.
  ChordNode& AddNode(const std::string& address);

  /// Wire every added node into a perfect converged ring instantly.
  void OracleBootstrap();

  /// Join every added node through the protocol: the first creates the
  /// ring, the rest join sequentially; then maintenance runs until
  /// `settle_ms` of simulated time has elapsed.
  void ProtocolBootstrap(double settle_ms);

  /// Join one more node through the protocol (network must be running —
  /// caller advances the simulator).
  ChordNode& ProtocolJoin(const std::string& address);

  std::size_t NodeCount() const noexcept { return nodes_.size(); }
  std::size_t AliveCount() const noexcept;

  ChordNode& Node(std::size_t index) { return *nodes_[index]; }
  const ChordNode& Node(std::size_t index) const { return *nodes_[index]; }
  const std::vector<std::unique_ptr<ChordNode>>& Nodes() const noexcept { return nodes_; }

  ChordNode* FindByActor(sim::ActorId actor) noexcept;

  /// Ground truth: the alive node that should own `key`.
  NodeRef ExpectedSuccessor(const Key& key) const;

  /// The alive ChordNode that should own `key` (oracle; never null while
  /// at least one node is alive).
  ChordNode* ExpectedOwner(const Key& key);

  /// True when every alive node's successor/predecessor agree with the
  /// oracle ring (used by convergence tests).
  bool IsConverged() const;

  sim::Network& network() noexcept { return network_; }

 private:
  std::vector<NodeRef> SortedAlive() const;

  sim::Network& network_;
  Options options_;
  std::vector<std::unique_ptr<ChordNode>> nodes_;
};

}  // namespace peertrack::chord
