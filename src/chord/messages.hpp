#pragma once
// Chord wire messages.
//
// Sizes are approximations of a compact binary encoding: 20 bytes per ring
// id, 4 per actor address, 8 per integer field (the rpc correlation id is
// one such field, counted via rpc::kCallIdBytes). Only relative volumes
// matter for the experiments.
//
// Request/response pairs derive from the rpc bases and are exchanged
// through RpcClient/RpcServer (correlation, deadline, retry); one-way
// notifications derive from sim::MessageBase and stay fire-and-forget.

#include <cstdint>
#include <vector>

#include "chord/types.hpp"
#include "rpc/rpc.hpp"
#include "sim/network.hpp"

namespace peertrack::chord {

constexpr std::size_t kNodeRefBytes = 24;  // 20-byte id + 4-byte address.

/// One step of an iterative lookup: "route `key`".
struct LookupStepRequest final : rpc::RequestBase<LookupStepRequest> {
  Key key;

  std::string_view TypeName() const noexcept override { return "chord.lookup_req"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes + 20; }
};

/// Reply to a lookup step: either the final successor of the key (done) or
/// the next node to ask.
struct LookupStepResponse final : rpc::ResponseBase<LookupStepResponse> {
  bool done = false;
  NodeRef node;  ///< Successor when done, otherwise next hop.

  std::string_view TypeName() const noexcept override { return "chord.lookup_resp"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + 1 + kNodeRefBytes;
  }
};

/// stabilize(): ask a successor for its predecessor and successor list.
struct StabilizeRequest final : rpc::RequestBase<StabilizeRequest> {
  std::string_view TypeName() const noexcept override { return "chord.stabilize_req"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes; }
};

/// Signed statement (in the protocol sense; we do not model crypto) that
/// `node` has been observed dead. Gossiped backward along the ring inside
/// StabilizeResponse so predecessors that never probe the dead node still
/// scrub it from deep successor-list slots. `issued_ms` is the simulated
/// time of the original eviction; certificates expire after
/// ChordNode::Options::death_cert_ttl_ms, which bounds the gossip payload.
struct DeathCertificate {
  NodeRef node;
  double issued_ms = 0.0;
};

struct StabilizeResponse final : rpc::ResponseBase<StabilizeResponse> {
  bool has_predecessor = false;
  NodeRef predecessor;
  std::vector<NodeRef> successors;
  std::vector<DeathCertificate> dead;  ///< Unexpired death certificates.

  std::string_view TypeName() const noexcept override { return "chord.stabilize_resp"; }
  std::size_t ApproxBytes() const noexcept override {
    return rpc::kCallIdBytes + 1 + kNodeRefBytes + successors.size() * kNodeRefBytes +
           dead.size() * (kNodeRefBytes + 8);
  }
};

/// notify(n'): "I believe I am your predecessor".
struct NotifyMessage final : sim::MessageBase<NotifyMessage> {
  NodeRef candidate;

  std::string_view TypeName() const noexcept override { return "chord.notify"; }
  std::size_t ApproxBytes() const noexcept override { return kNodeRefBytes; }
};

/// Graceful departure: tells the successor to adopt `new_predecessor` and
/// the predecessor to adopt `new_successor`.
struct LeaveNotice final : sim::MessageBase<LeaveNotice> {
  NodeRef departing;
  bool to_successor = false;  ///< True when sent to the successor side.
  NodeRef replacement;        ///< New predecessor (to successor) or successor.

  std::string_view TypeName() const noexcept override { return "chord.leave"; }
  std::size_t ApproxBytes() const noexcept override { return 2 * kNodeRefBytes + 1; }
};

/// Liveness probe used by failure detection during stabilization.
struct PingRequest final : rpc::RequestBase<PingRequest> {
  std::string_view TypeName() const noexcept override { return "chord.ping_req"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes; }
};

struct PingResponse final : rpc::ResponseBase<PingResponse> {
  std::string_view TypeName() const noexcept override { return "chord.ping_resp"; }
  std::size_t ApproxBytes() const noexcept override { return rpc::kCallIdBytes; }
};

}  // namespace peertrack::chord
