#include "chord/successor_list.hpp"

#include <algorithm>

namespace peertrack::chord {

bool SuccessorList::Offer(const NodeRef& node) {
  if (!node.Valid() || node.id == owner_) return false;
  const Key distance = node.id - owner_;
  auto position = std::find_if(entries_.begin(), entries_.end(),
                               [&](const NodeRef& e) {
                                 return (e.id - owner_) >= distance;
                               });
  if (position != entries_.end() && position->id == node.id) return false;
  entries_.insert(position, node);
  if (entries_.size() > capacity_) entries_.resize(capacity_);
  return true;
}

void SuccessorList::Merge(const std::vector<NodeRef>& peers) {
  for (const auto& peer : peers) Offer(peer);
}

bool SuccessorList::Remove(const NodeRef& node) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const NodeRef& e) { return e.actor == node.actor; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

void SuccessorList::Assign(std::vector<NodeRef> entries) {
  entries_ = std::move(entries);
  if (entries_.size() > capacity_) entries_.resize(capacity_);
}

}  // namespace peertrack::chord
