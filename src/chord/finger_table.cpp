#include "chord/finger_table.hpp"

namespace peertrack::chord {

std::size_t FingerTable::Evict(const NodeRef& node) noexcept {
  std::size_t cleared = 0;
  for (auto& finger : fingers_) {
    if (finger && finger->actor == node.actor) {
      finger.reset();
      ++cleared;
    }
  }
  return cleared;
}

std::optional<NodeRef> FingerTable::ClosestPreceding(const Key& key) const noexcept {
  for (unsigned i = kBits; i-- > 0;) {
    const auto& finger = fingers_[i];
    if (finger && finger->id.InOpenInterval(owner_, key)) {
      return finger;
    }
  }
  return std::nullopt;
}

std::size_t FingerTable::PopulatedCount() const noexcept {
  std::size_t count = 0;
  for (const auto& finger : fingers_) {
    if (finger) ++count;
  }
  return count;
}

}  // namespace peertrack::chord
