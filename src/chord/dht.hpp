#pragma once
// Generic key/value facade over the Chord overlay.
//
// The tracking layer plugs its own application logic into ChordNode; this
// facade is the classic DHT interface (put/get with owner-resolved
// placement and churn migration) for users who want the overlay substrate
// without the traceability stack — and it doubles as an end-to-end test of
// ChordNode's routing and range-transfer hooks.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "chord/chord_node.hpp"

namespace peertrack::chord {

class DhtNode final : public ChordNode::AppHandler {
 public:
  explicit DhtNode(ChordNode& chord);

  ChordNode& chord() noexcept { return chord_; }

  using PutCallback = std::function<void(bool ok)>;
  using GetCallback = std::function<void(bool found, const std::string& value)>;

  /// Store `value` under `key` at the key's owner (resolved via lookup).
  void Put(const Key& key, std::string value, PutCallback callback = {});

  /// Fetch the value stored under `key` from its owner.
  void Get(const Key& key, GetCallback callback);

  /// Entries currently stored on this node.
  std::size_t StoredEntries() const noexcept { return store_.size(); }
  std::optional<std::string> LocalValue(const Key& key) const;

  // --- AppHandler -----------------------------------------------------------

  void OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override;
  void OnRangeTransfer(const Key& lo, const Key& hi, const NodeRef& new_owner) override;

 private:
  struct PendingPut {
    Key key;
    std::string value;
    PutCallback callback;
  };
  struct PendingGet {
    Key key;
    GetCallback callback;
  };

  ChordNode& chord_;
  std::unordered_map<hash::UInt160, std::string, hash::UInt160Hasher> store_;
  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, PendingPut> pending_puts_;
  std::unordered_map<std::uint64_t, PendingGet> pending_gets_;
};

}  // namespace peertrack::chord
