#pragma once
// Generic key/value facade over the Chord overlay.
//
// The tracking layer plugs its own application logic into ChordNode; this
// facade is the classic DHT interface (put/get with owner-resolved
// placement and churn migration) for users who want the overlay substrate
// without the traceability stack — and it doubles as an end-to-end test of
// ChordNode's routing and range-transfer hooks.
//
// Put/Get are RPCs: once the owner is resolved, the store/fetch exchange
// retries through rpc::RpcClient, and the user callback always fires —
// with failure after the retry policy is exhausted — instead of hanging
// when the owner is down or the wire is lossy.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "chord/chord_node.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/rpc.hpp"

namespace peertrack::chord {

class DhtNode final : public ChordNode::AppHandler {
 public:
  explicit DhtNode(ChordNode& chord);

  ChordNode& chord() noexcept { return chord_; }

  /// Deadline/backoff for the store/fetch exchange after owner resolution.
  void SetRetryPolicy(const rpc::RetryPolicy& policy) { policy_ = policy; }

  using PutCallback = std::function<void(bool ok)>;
  using GetCallback = std::function<void(bool found, const std::string& value)>;

  /// Store `value` under `key` at the key's owner (resolved via lookup).
  void Put(const Key& key, std::string value, PutCallback callback = {});

  /// Fetch the value stored under `key` from its owner.
  void Get(const Key& key, GetCallback callback);

  /// Entries currently stored on this node.
  std::size_t StoredEntries() const noexcept { return store_.size(); }
  std::optional<std::string> LocalValue(const Key& key) const;

  // --- AppHandler -----------------------------------------------------------

  void OnAppMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) override;
  void OnRangeTransfer(const Key& lo, const Key& hi, const NodeRef& new_owner) override;

 private:
  void RegisterHandlers();

  ChordNode& chord_;
  rpc::Dispatcher dispatcher_;
  rpc::RpcClient rpc_;
  rpc::RpcServer server_;
  rpc::RetryPolicy policy_;
  std::unordered_map<hash::UInt160, std::string, hash::UInt160Hasher> store_;
};

}  // namespace peertrack::chord
