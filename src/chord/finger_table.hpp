#pragma once
// Chord finger table.
//
// finger[i] is the first node succeeding (owner + 2^i) mod 2^160, for
// i in [0, 160). Fingers may be stale or unset; routing falls back to the
// successor list. ClosestPreceding scans from the longest finger down, as
// in the Chord paper.

#include <array>
#include <cstddef>
#include <optional>

#include "chord/types.hpp"

namespace peertrack::chord {

class FingerTable {
 public:
  static constexpr unsigned kBits = 160;

  explicit FingerTable(const Key& owner) noexcept : owner_(owner) {}

  const Key& owner() const noexcept { return owner_; }

  /// The ring point finger i should cover: owner + 2^i.
  Key Start(unsigned i) const noexcept { return owner_ + Key::Pow2(i); }

  void Set(unsigned i, const NodeRef& node) noexcept { fingers_[i] = node; }
  void Clear(unsigned i) noexcept { fingers_[i].reset(); }
  const std::optional<NodeRef>& Get(unsigned i) const noexcept { return fingers_[i]; }

  /// Remove every finger pointing at `node` (used when a peer is detected
  /// dead). Returns how many entries were cleared.
  std::size_t Evict(const NodeRef& node) noexcept;

  /// Highest-index finger whose id lies strictly inside (owner, key);
  /// nullopt when no finger precedes the key.
  std::optional<NodeRef> ClosestPreceding(const Key& key) const noexcept;

  /// Number of populated entries.
  std::size_t PopulatedCount() const noexcept;

 private:
  Key owner_;
  std::array<std::optional<NodeRef>, kBits> fingers_;
};

}  // namespace peertrack::chord
