// Iterative lookup state machine for ChordNode.
//
// The initiator drives the walk: it asks the closest preceding node it
// knows, receives either the final owner or a better next hop, and repeats.
// `hops` counts remote step requests, which is what the paper's
// O(log2 Nn)-hops routing-cost analysis refers to. A hop that fails to
// answer within the timeout is evicted from local routing state and the
// lookup restarts (bounded retries).

#include "chord/chord_node.hpp"
#include "util/logging.hpp"

namespace peertrack::chord {

void ChordNode::Lookup(const Key& key, LookupCallback callback) {
  if (!alive_) {
    callback(NodeRef{}, 0);
    return;
  }
  const RouteStep first = NextRouteStep(key);
  if (first.done) {
    network_.metrics().RecordLookupHops(0);
    callback(first.node, 0);
    return;
  }
  const std::uint64_t request_id = next_request_id_++;
  PendingLookup pending;
  pending.key = key;
  pending.callback = std::move(callback);
  pending_lookups_.emplace(request_id, std::move(pending));
  LookupSendStep(request_id, first.node);
}

void ChordNode::LookupSendStep(std::uint64_t request_id, const NodeRef& target) {
  auto it = pending_lookups_.find(request_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  if (pending.steps >= options_.max_lookup_steps) {
    util::LogWarn("{}: lookup for {} exceeded step limit", self_.Describe(),
                  pending.key.ToShortHex());
    FinishLookup(request_id, NodeRef{});
    return;
  }
  ++pending.steps;
  ++pending.hops;
  pending.current = target;

  auto request = std::make_unique<LookupStepRequest>();
  request->request_id = request_id;
  request->key = pending.key;
  network_.Send(self_.actor, target.actor, std::move(request));

  pending.timeout.Cancel();
  pending.timeout = network_.simulator().ScheduleAfter(
      options_.request_timeout_ms,
      [this, request_id] { LookupStepTimedOut(request_id); });
}

void ChordNode::HandleLookupStep(sim::ActorId from, const LookupStepRequest& request) {
  const RouteStep step = NextRouteStep(request.key);
  auto response = std::make_unique<LookupStepResponse>();
  response->request_id = request.request_id;
  if (step.done) {
    response->done = true;
    response->node = step.node;
  } else if (step.node.actor == self_.actor) {
    // No strictly-closer peer known; our successor is the best answer we
    // can give (prevents routing loops on sparse tables).
    response->done = true;
    response->node = Successor();
  } else {
    response->done = false;
    response->node = step.node;
  }
  network_.Send(self_.actor, from, std::move(response));
}

void ChordNode::HandleLookupResponse(const LookupStepResponse& response) {
  auto it = pending_lookups_.find(response.request_id);
  if (it == pending_lookups_.end()) return;  // Late reply after timeout.
  PendingLookup& pending = it->second;
  pending.timeout.Cancel();

  if (response.done) {
    FinishLookup(response.request_id, response.node);
    return;
  }
  if (response.node.actor == pending.current.actor ||
      response.node.actor == self_.actor) {
    // The remote peer could not make progress either; accept its view of
    // the key's owner by asking it directly as a final step.
    FinishLookup(response.request_id, response.node);
    return;
  }
  LookupSendStep(response.request_id, response.node);
}

void ChordNode::LookupStepTimedOut(std::uint64_t request_id) {
  auto it = pending_lookups_.find(request_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  // The queried hop is unresponsive: purge it from local routing state so
  // the restart routes around it.
  EvictPeer(pending.current);
  network_.metrics().Bump("chord.lookup_hop_timeout");

  if (pending.retries >= options_.lookup_retries) {
    FinishLookup(request_id, NodeRef{});
    return;
  }
  ++pending.retries;
  RestartLookup(request_id);
}

void ChordNode::RestartLookup(std::uint64_t request_id) {
  auto it = pending_lookups_.find(request_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  const RouteStep first = NextRouteStep(pending.key);
  if (first.done) {
    FinishLookup(request_id, first.node);
    return;
  }
  LookupSendStep(request_id, first.node);
}

void ChordNode::FinishLookup(std::uint64_t request_id, const NodeRef& owner) {
  auto it = pending_lookups_.find(request_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup pending = std::move(it->second);
  pending_lookups_.erase(it);
  pending.timeout.Cancel();
  if (owner.Valid()) network_.metrics().RecordLookupHops(pending.hops);
  pending.callback(owner, pending.hops);
}

}  // namespace peertrack::chord
