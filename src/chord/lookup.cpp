// Iterative lookup state machine for ChordNode.
//
// The initiator drives the walk: it asks the closest preceding node it
// knows, receives either the final owner or a better next hop, and repeats.
// `hops` counts remote step requests, which is what the paper's
// O(log2 Nn)-hops routing-cost analysis refers to. Each step is an RPC:
// transient loss is absorbed by the rpc layer's retries, and only a hop
// that exhausts its retry policy is treated as dead — evicted from local
// routing state — before the lookup restarts (bounded restarts).

#include "chord/chord_node.hpp"
#include "util/logging.hpp"

namespace peertrack::chord {

void ChordNode::Lookup(const Key& key, const obs::TraceContext& parent,
                       LookupCallback callback) {
  if (!alive_) {
    callback(NodeRef{}, 0);
    return;
  }
  obs::Tracer& tracer = network_.tracer();
  const double now = network_.simulator().Now();
  const RouteStep first = NextRouteStep(key);
  if (first.done) {
    network_.metrics().RecordLookupHops(0);
    if (parent.Valid()) tracer.AddEvent(parent, "chord.lookup.local", self_.actor, now);
    callback(first.node, 0);
    return;
  }
  const std::uint64_t lookup_id = next_lookup_id_++;
  PendingLookup pending;
  pending.key = key;
  pending.callback = std::move(callback);
  if (tracer.Enabled()) {
    pending.span = parent.Valid()
                       ? tracer.StartSpan(parent, "chord.lookup", self_.actor, now)
                       : tracer.StartTrace("chord.lookup", self_.actor, now);
  }
  pending_lookups_.emplace(lookup_id, std::move(pending));
  LookupSendStep(lookup_id, first.node);
}

void ChordNode::LookupSendStep(std::uint64_t lookup_id, const NodeRef& target) {
  auto it = pending_lookups_.find(lookup_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  if (pending.steps >= options_.max_lookup_steps) {
    util::LogWarn("{}: lookup for {} exceeded step limit", self_.Describe(),
                  pending.key.ToShortHex());
    FinishLookup(lookup_id, NodeRef{});
    return;
  }
  ++pending.steps;
  ++pending.hops;
  pending.current = target;

  const obs::ScopedLogTrace log_scope(pending.span);
  auto request = std::make_unique<LookupStepRequest>();
  request->key = pending.key;
  request->trace = pending.span;
  pending.call = rpc_.Call<LookupStepResponse>(
      target.actor, std::move(request), options_.rpc,
      [this, lookup_id](rpc::Status status,
                        std::unique_ptr<LookupStepResponse> response) {
        if (status == rpc::Status::kOk) {
          HandleLookupResponse(lookup_id, *response);
        } else {
          LookupStepTimedOut(lookup_id);
        }
      });
}

std::unique_ptr<LookupStepResponse> ChordNode::HandleLookupStep(
    const LookupStepRequest& request) {
  const RouteStep step = NextRouteStep(request.key);
  auto response = std::make_unique<LookupStepResponse>();
  if (step.done) {
    response->done = true;
    response->node = step.node;
  } else if (step.node.actor == self_.actor) {
    // No strictly-closer peer known; our successor is the best answer we
    // can give (prevents routing loops on sparse tables).
    response->done = true;
    response->node = Successor();
  } else {
    response->done = false;
    response->node = step.node;
  }
  return response;
}

void ChordNode::HandleLookupResponse(std::uint64_t lookup_id,
                                     const LookupStepResponse& response) {
  auto it = pending_lookups_.find(lookup_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  if (response.done) {
    FinishLookup(lookup_id, response.node);
    return;
  }
  if (response.node.actor == pending.current.actor ||
      response.node.actor == self_.actor) {
    // The remote peer could not make progress either; accept its view of
    // the key's owner by asking it directly as a final step.
    FinishLookup(lookup_id, response.node);
    return;
  }
  LookupSendStep(lookup_id, response.node);
}

void ChordNode::LookupStepTimedOut(std::uint64_t lookup_id) {
  auto it = pending_lookups_.find(lookup_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  // The queried hop exhausted its RPC retries: purge it from local routing
  // state so the restart routes around it.
  EvictPeer(pending.current);
  ctr_lookup_hop_timeout_.Add();

  if (pending.retries >= options_.lookup_retries) {
    FinishLookup(lookup_id, NodeRef{});
    return;
  }
  ++pending.retries;
  RestartLookup(lookup_id);
}

void ChordNode::RestartLookup(std::uint64_t lookup_id) {
  auto it = pending_lookups_.find(lookup_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup& pending = it->second;

  const RouteStep first = NextRouteStep(pending.key);
  if (first.done) {
    FinishLookup(lookup_id, first.node);
    return;
  }
  LookupSendStep(lookup_id, first.node);
}

void ChordNode::FinishLookup(std::uint64_t lookup_id, const NodeRef& owner) {
  auto it = pending_lookups_.find(lookup_id);
  if (it == pending_lookups_.end()) return;
  PendingLookup pending = std::move(it->second);
  pending_lookups_.erase(it);
  rpc_.Cancel(pending.call);
  network_.tracer().EndSpan(pending.span, network_.simulator().Now(),
                            owner.Valid() ? "ok" : "failed");
  if (owner.Valid()) network_.metrics().RecordLookupHops(pending.hops);
  pending.callback(owner, pending.hops);
}

}  // namespace peertrack::chord
