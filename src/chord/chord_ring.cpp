#include "chord/chord_ring.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace peertrack::chord {

ChordRing::ChordRing(sim::Network& network, Options options)
    : network_(network), options_(options) {}

ChordNode& ChordRing::AddNode(const std::string& address) {
  nodes_.push_back(std::make_unique<ChordNode>(network_, address, options_.node));
  return *nodes_.back();
}

std::size_t ChordRing::AliveCount() const noexcept {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node->Alive()) ++count;
  }
  return count;
}

ChordNode* ChordRing::FindByActor(sim::ActorId actor) noexcept {
  for (auto& node : nodes_) {
    if (node->Self().actor == actor) return node.get();
  }
  return nullptr;
}

std::vector<NodeRef> ChordRing::SortedAlive() const {
  std::vector<NodeRef> refs;
  refs.reserve(nodes_.size());
  const bool any_alive = AliveCount() > 0;
  for (const auto& node : nodes_) {
    // During OracleBootstrap no node is alive yet; include everything then.
    if (node->Alive() || !any_alive) refs.push_back(node->Self());
  }
  std::sort(refs.begin(), refs.end(),
            [](const NodeRef& a, const NodeRef& b) { return a.id < b.id; });
  return refs;
}

NodeRef ChordRing::ExpectedSuccessor(const Key& key) const {
  const auto refs = SortedAlive();
  if (refs.empty()) return NodeRef{};
  const auto it = std::lower_bound(
      refs.begin(), refs.end(), key,
      [](const NodeRef& node, const Key& k) { return node.id < k; });
  return it == refs.end() ? refs.front() : *it;
}

ChordNode* ChordRing::ExpectedOwner(const Key& key) {
  const NodeRef ref = ExpectedSuccessor(key);
  return ref.Valid() ? FindByActor(ref.actor) : nullptr;
}

void ChordRing::OracleBootstrap() {
  // Wire the alive membership (everything on first bootstrap, when no node
  // is alive yet) into a perfectly converged ring.
  const std::vector<NodeRef> refs = SortedAlive();
  const std::size_t n = refs.size();
  if (n == 0) return;

  auto successor_of = [&](const Key& key) -> const NodeRef& {
    const auto it = std::lower_bound(
        refs.begin(), refs.end(), key,
        [](const NodeRef& node, const Key& k) { return node.id < k; });
    return it == refs.end() ? refs.front() : *it;
  };

  for (std::size_t i = 0; i < n; ++i) {
    ChordNode* node = FindByActor(refs[i].actor);
    node->MarkAlive();
    const NodeRef& predecessor = refs[(i + n - 1) % n];

    std::vector<NodeRef> successor_list;
    const std::size_t list_size =
        std::min(options_.node.successor_list_size, n > 1 ? n - 1 : 0);
    for (std::size_t j = 1; j <= list_size; ++j) {
      successor_list.push_back(refs[(i + j) % n]);
    }
    node->OracleWire(n > 1 ? std::optional<NodeRef>(predecessor) : std::nullopt,
                     std::move(successor_list));
    for (unsigned k = 0; k < FingerTable::kBits; ++k) {
      node->OracleSetFinger(k, successor_of(node->fingers().Start(k)));
    }
  }
}

void ChordRing::ProtocolBootstrap(double settle_ms) {
  if (nodes_.empty()) return;
  auto& simulator = network_.simulator();

  nodes_.front()->CreateRing();
  const NodeRef bootstrap = nodes_.front()->Self();

  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    bool joined = false;
    nodes_[i]->Join(bootstrap, [&joined] { joined = true; });
    // Drive the simulator until this join settles; joins are sequential so
    // each new node lands on a consistent ring.
    std::uint64_t guard = 0;
    while (!joined && simulator.Step()) {
      if (++guard > 1'000'000) {
        util::LogError("protocol join of node {} did not complete", i);
        break;
      }
    }
  }
  for (auto& node : nodes_) {
    node->StartMaintenance(options_.stabilize_every_ms, options_.fix_fingers_every_ms);
  }
  simulator.RunUntil(simulator.Now() + settle_ms);
}

ChordNode& ChordRing::ProtocolJoin(const std::string& address) {
  ChordNode& node = AddNode(address);
  NodeRef bootstrap;
  for (const auto& existing : nodes_) {
    if (existing.get() != &node && existing->Alive()) {
      bootstrap = existing->Self();
      break;
    }
  }
  if (!bootstrap.Valid()) {
    node.CreateRing();
  } else {
    node.Join(bootstrap);
  }
  node.StartMaintenance(options_.stabilize_every_ms, options_.fix_fingers_every_ms);
  return node;
}

bool ChordRing::IsConverged() const {
  const auto refs = SortedAlive();
  const std::size_t n = refs.size();
  if (n < 2) return true;
  for (std::size_t i = 0; i < n; ++i) {
    const ChordNode* node = nullptr;
    for (const auto& candidate : nodes_) {
      if (candidate->Self().actor == refs[i].actor) {
        node = candidate.get();
        break;
      }
    }
    if (node == nullptr || !node->Alive()) return false;
    const NodeRef& expected_successor = refs[(i + 1) % n];
    const NodeRef& expected_predecessor = refs[(i + n - 1) % n];
    if (node->Successor().actor != expected_successor.actor) return false;
    if (!node->Predecessor() ||
        node->Predecessor()->actor != expected_predecessor.actor) {
      return false;
    }
  }
  return true;
}

}  // namespace peertrack::chord
