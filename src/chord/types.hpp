#pragma once
// Shared Chord value types.

#include <optional>
#include <string>

#include "hash/uint160.hpp"
#include "sim/metrics.hpp"

namespace peertrack::chord {

using Key = hash::UInt160;

/// A (ring id, transport address) pair — everything a peer needs to contact
/// another peer directly.
struct NodeRef {
  Key id;
  sim::ActorId actor = sim::kInvalidActor;

  friend bool operator==(const NodeRef&, const NodeRef&) = default;

  bool Valid() const noexcept { return actor != sim::kInvalidActor; }
  std::string Describe() const { return id.ToShortHex(); }
};

}  // namespace peertrack::chord
