#include "chord/chord_node.hpp"

#include "hash/keyspace.hpp"
#include "util/logging.hpp"

namespace peertrack::chord {

ChordNode::ChordNode(sim::Network& network, std::string address, Options options)
    : network_(network),
      address_(std::move(address)),
      self_{hash::NodeKey(address_), sim::kInvalidActor},
      options_(options),
      rpc_(network),
      server_(network),
      successors_(self_.id, options.successor_list_size),
      fingers_(self_.id),
      ctr_successor_failover_(
          network.metrics().registry().GetCounter("chord.successor_failover")),
      ctr_predecessor_evicted_(
          network.metrics().registry().GetCounter("chord.predecessor_evicted")),
      ctr_lookup_hop_timeout_(
          network.metrics().registry().GetCounter("chord.lookup_hop_timeout")),
      ctr_death_cert_scrub_(
          network.metrics().registry().GetCounter("chord.death_cert_scrub")) {
  self_.actor = network_.Register(*this);
  rpc_.Bind(self_.actor);
  server_.Bind(self_.actor);
  RegisterHandlers();
}

void ChordNode::RegisterHandlers() {
  server_.Handle<LookupStepRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<LookupStepRequest> request) {
        return HandleLookupStep(*request);
      });
  server_.Handle<StabilizeRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<StabilizeRequest>) {
        auto response = std::make_unique<StabilizeResponse>();
        if (predecessor_) {
          response->has_predecessor = true;
          response->predecessor = *predecessor_;
        }
        response->successors = successors_.Entries();
        if (options_.death_cert_ttl_ms > 0.0) {
          response->dead = FreshDeathCertificates();
        }
        return response;
      });
  server_.Handle<PingRequest>(
      dispatcher_, [this](sim::ActorId, std::unique_ptr<PingRequest>) {
        return std::make_unique<PingResponse>();
      });
  dispatcher_.On<NotifyMessage>(
      [this](sim::ActorId, std::unique_ptr<NotifyMessage> notify) {
        HandleNotify(*notify);
      });
  dispatcher_.On<LeaveNotice>(
      [this](sim::ActorId, std::unique_ptr<LeaveNotice> notice) {
        HandleLeave(*notice);
      });
  rpc_.RouteResponses<LookupStepResponse>(dispatcher_);
  rpc_.RouteResponses<StabilizeResponse>(dispatcher_);
  rpc_.RouteResponses<PingResponse>(dispatcher_);
}

NodeRef ChordNode::Successor() const noexcept {
  return successors_.Empty() ? self_ : successors_.First();
}

bool ChordNode::Owns(const Key& key) const noexcept {
  if (!predecessor_) return true;
  return key.InHalfOpenLoHi(predecessor_->id, self_.id);
}

void ChordNode::CreateRing() {
  alive_ = true;
  predecessor_.reset();
}

void ChordNode::Join(const NodeRef& bootstrap, std::function<void()> on_joined) {
  alive_ = true;
  predecessor_.reset();
  on_joined_ = std::move(on_joined);

  // Ask the bootstrap peer to resolve our own id; the result is our
  // successor. Driven by the standard lookup machinery with an explicit
  // first target.
  const std::uint64_t lookup_id = next_lookup_id_++;
  PendingLookup pending;
  pending.key = self_.id;
  pending.callback = [this](const NodeRef& owner, std::size_t) {
    if (!owner.Valid()) {
      util::LogWarn("join of {} failed: lookup error", self_.Describe());
      return;
    }
    successors_.Offer(owner);
    // Announce ourselves so the successor adopts us as predecessor and
    // transfers the keys we now own.
    auto notify = std::make_unique<NotifyMessage>();
    notify->candidate = self_;
    network_.Send(self_.actor, owner.actor, std::move(notify));
    if (on_joined_) {
      auto done = std::move(on_joined_);
      on_joined_ = {};
      done();
    }
  };
  pending_lookups_.emplace(lookup_id, std::move(pending));
  LookupSendStep(lookup_id, bootstrap);
}

void ChordNode::Leave() {
  if (!alive_) return;
  const NodeRef successor = Successor();
  if (successor.actor != self_.actor) {
    // Hand application state for our whole range (pred, self] to the
    // successor before we disappear.
    if (app_ != nullptr) {
      const Key lo = predecessor_ ? predecessor_->id : self_.id;
      app_->OnRangeTransfer(lo, self_.id, successor);
    }
    auto to_successor = std::make_unique<LeaveNotice>();
    to_successor->departing = self_;
    to_successor->to_successor = true;
    if (predecessor_) to_successor->replacement = *predecessor_;
    network_.Send(self_.actor, successor.actor, std::move(to_successor));

    if (predecessor_) {
      auto to_predecessor = std::make_unique<LeaveNotice>();
      to_predecessor->departing = self_;
      to_predecessor->to_successor = false;
      to_predecessor->replacement = successor;
      network_.Send(self_.actor, predecessor_->actor, std::move(to_predecessor));
    }
  }
  Crash();
}

void ChordNode::Crash() {
  alive_ = false;
  network_.SetUp(self_.actor, false);
  rpc_.CancelAll();
  pending_lookups_.clear();
  stabilize_inflight_ = false;
  ping_inflight_ = false;
}

void ChordNode::StartMaintenance(double stabilize_every_ms, double fix_fingers_every_ms) {
  stabilize_every_ms_ = stabilize_every_ms;
  fix_fingers_every_ms_ = fix_fingers_every_ms;
  ScheduleMaintenance();
}

void ChordNode::ScheduleMaintenance() {
  if (stabilize_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(stabilize_every_ms_, [this] {
      if (alive_) DoStabilize();
    });
  }
  if (fix_fingers_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(fix_fingers_every_ms_, [this] { DoFixFingers(); });
  }
}

void ChordNode::DoStabilize() {
  // Re-arm the periodic timer first so every exit path keeps the loop
  // alive.
  if (stabilize_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(stabilize_every_ms_, [this] {
      if (alive_) DoStabilize();
    });
  }
  const NodeRef successor = Successor();
  if (successor.actor == self_.actor) {
    // Degenerate self-successor (first node of a ring). Standard stabilize
    // asks successor.predecessor — which here is our own predecessor — and
    // adopts it, closing the two-node loop after the first join.
    if (predecessor_ && predecessor_->actor != self_.actor) {
      successors_.Offer(*predecessor_);
      auto notify = std::make_unique<NotifyMessage>();
      notify->candidate = self_;
      network_.Send(self_.actor, predecessor_->actor, std::move(notify));
    }
    return;
  }
  DoCheckPredecessor();
  if (stabilize_inflight_) return;  // One in flight at a time.

  stabilize_inflight_ = true;
  stabilize_target_ = successor;
  rpc_.Call<StabilizeResponse>(
      successor.actor, std::make_unique<StabilizeRequest>(), options_.rpc,
      [this](rpc::Status status, std::unique_ptr<StabilizeResponse> response) {
        stabilize_inflight_ = false;
        if (!alive_) return;
        if (status != rpc::Status::kOk) {
          // Successor did not answer across all retries: consider it dead
          // and fail over to the next successor-list entry.
          EvictPeer(stabilize_target_);
          ctr_successor_failover_.Add();
          return;
        }
        HandleStabilizeResponse(*response);
      });
}

void ChordNode::DoCheckPredecessor() {
  // Chord's check_predecessor(): probe the predecessor so a crashed one is
  // eventually cleared and the true predecessor's notify can land.
  if (!predecessor_ || ping_inflight_) return;
  ping_inflight_ = true;
  ping_target_ = *predecessor_;
  rpc_.Call<PingResponse>(
      predecessor_->actor, std::make_unique<PingRequest>(), options_.rpc,
      [this](rpc::Status status, std::unique_ptr<PingResponse>) {
        ping_inflight_ = false;
        if (!alive_) return;
        if (status != rpc::Status::kOk) {
          EvictPeer(ping_target_);
          ctr_predecessor_evicted_.Add();
        }
      });
}

void ChordNode::DoFixFingers() {
  if (!alive_) return;
  // Refresh one finger per round; consecutive fingers that fall inside the
  // resolved node's range are filled in the callback without extra lookups.
  const unsigned index = next_finger_;
  next_finger_ = (next_finger_ + 1) % FingerTable::kBits;
  Lookup(fingers_.Start(index), [this, index](const NodeRef& owner, std::size_t) {
    if (!owner.Valid() || IsConfirmedDead(owner)) return;
    fingers_.Set(index, owner);
    for (unsigned j = index + 1; j < FingerTable::kBits; ++j) {
      if (fingers_.Start(j).InHalfOpenLoHi(self_.id, owner.id)) {
        fingers_.Set(j, owner);
        next_finger_ = (j + 1) % FingerTable::kBits;
      } else {
        break;
      }
    }
  });
  if (fix_fingers_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(fix_fingers_every_ms_, [this] { DoFixFingers(); });
  }
}

void ChordNode::AdoptPredecessor(const NodeRef& candidate) {
  if (candidate.actor == self_.actor || IsConfirmedDead(candidate)) return;
  if (!predecessor_ || candidate.id.InOpenInterval(predecessor_->id, self_.id)) {
    const std::optional<NodeRef> old = predecessor_;
    predecessor_ = candidate;
    // Keys in (old_pred, candidate] are no longer ours; let the app ship
    // its state to the new owner. With no previous predecessor we were
    // nominally responsible for the whole ring, so the transferred span is
    // (self, candidate] — everything except our own arc.
    if (app_ != nullptr) {
      const Key lo = old ? old->id : self_.id;
      app_->OnRangeTransfer(lo, candidate.id, candidate);
    }
    NotifyNeighborhoodChanged();
  }
}

void ChordNode::EvictPeer(const NodeRef& peer) {
  const bool fresh = confirmed_dead_.insert(peer.actor).second;
  if (fresh && options_.death_cert_ttl_ms > 0.0) {
    death_certs_.push_back(
        DeathCertificate{peer, network_.simulator().Now()});
  }
  const bool removed = successors_.Remove(peer);
  fingers_.Evict(peer);
  const bool was_predecessor =
      predecessor_ && predecessor_->actor == peer.actor;
  if (was_predecessor) predecessor_.reset();
  if (fresh || removed || was_predecessor) NotifyNeighborhoodChanged();
}

void ChordNode::AdoptDeathCertificate(const DeathCertificate& cert) {
  if (cert.node.actor == self_.actor) return;  // Rumours of our own death.
  if (IsConfirmedDead(cert.node)) return;      // Already merged.
  const double now = network_.simulator().Now();
  if (now - cert.issued_ms > options_.death_cert_ttl_ms) return;  // Expired.
  ctr_death_cert_scrub_.Add();
  confirmed_dead_.insert(cert.node.actor);
  // Keep the original timestamp so the certificate dies ring-wide at
  // issued + TTL instead of being refreshed forever hop by hop.
  death_certs_.push_back(cert);
  const bool removed = successors_.Remove(cert.node);
  fingers_.Evict(cert.node);
  const bool was_predecessor =
      predecessor_ && predecessor_->actor == cert.node.actor;
  if (was_predecessor) predecessor_.reset();
  if (removed || was_predecessor) NotifyNeighborhoodChanged();
}

const std::vector<DeathCertificate>& ChordNode::FreshDeathCertificates() {
  const double now = network_.simulator().Now();
  std::erase_if(death_certs_, [&](const DeathCertificate& cert) {
    return now - cert.issued_ms > options_.death_cert_ttl_ms;
  });
  return death_certs_;
}

void ChordNode::NotifyNeighborhoodChanged() {
  if (app_ != nullptr && alive_) app_->OnNeighborhoodChanged();
}

ChordNode::RouteStep ChordNode::NextRouteStep(const Key& key) const {
  RouteStep step;
  const NodeRef successor = Successor();
  if (successor.actor == self_.actor || key.InHalfOpenLoHi(self_.id, successor.id)) {
    step.done = true;
    step.node = successor;
    return step;
  }
  if (const auto finger = fingers_.ClosestPreceding(key)) {
    // A finger may overshoot the tightest predecessor but never the key.
    step.node = *finger;
    // Successor-list entries can be closer than the best finger.
    for (const auto& entry : successors_.Entries()) {
      if (entry.id.InOpenInterval(step.node.id, key)) step.node = entry;
    }
    step.done = false;
    return step;
  }
  // No usable finger: fall back to the last successor-list entry preceding
  // the key, or the immediate successor.
  step.node = successor;
  for (const auto& entry : successors_.Entries()) {
    if (entry.id.InOpenInterval(self_.id, key)) step.node = entry;
  }
  step.done = false;
  return step;
}

void ChordNode::OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  if (!alive_) return;
  if (dispatcher_.Dispatch(from, message)) return;
  if (app_ != nullptr) {
    app_->OnAppMessage(from, std::move(message));
    return;
  }
  util::LogWarn("{}: unhandled message {}", self_.Describe(), message->TypeName());
}

void ChordNode::HandleStabilizeResponse(const StabilizeResponse& response) {
  // Merge gossiped death certificates first: they scrub crashed nodes out
  // of deep successor-list slots this node never probes directly, and the
  // eviction must precede the list merge below or the same response could
  // re-offer a peer it certifies dead.
  if (options_.death_cert_ttl_ms > 0.0) {
    for (const auto& cert : response.dead) AdoptDeathCertificate(cert);
  }
  bool changed = false;
  if (response.has_predecessor && !IsConfirmedDead(response.predecessor) &&
      response.predecessor.id.InOpenInterval(self_.id, stabilize_target_.id)) {
    // A node sits between us and our successor: adopt it.
    changed |= successors_.Offer(response.predecessor);
  }
  // Merge the successor's list, filtering peers we know to be dead —
  // otherwise stale gossip would resurrect them indefinitely.
  for (const auto& peer : response.successors) {
    if (!IsConfirmedDead(peer)) changed |= successors_.Offer(peer);
  }
  // New entries in the successor set matter to replication layers (the
  // first R entries are the replica set); evictions already notify.
  if (changed) NotifyNeighborhoodChanged();

  const NodeRef successor = Successor();
  if (successor.actor != self_.actor) {
    auto notify = std::make_unique<NotifyMessage>();
    notify->candidate = self_;
    network_.Send(self_.actor, successor.actor, std::move(notify));
  }
}

void ChordNode::HandleNotify(const NotifyMessage& notify) {
  AdoptPredecessor(notify.candidate);
}

void ChordNode::HandleLeave(const LeaveNotice& notice) {
  EvictPeer(notice.departing);
  if (notice.to_successor) {
    // Our predecessor left; its predecessor is our new one.
    if (notice.replacement.Valid()) AdoptPredecessor(notice.replacement);
  } else {
    // Our successor left; adopt its successor.
    if (notice.replacement.Valid()) successors_.Offer(notice.replacement);
  }
}

void ChordNode::OracleWire(std::optional<NodeRef> predecessor,
                           std::vector<NodeRef> successor_list) {
  alive_ = true;
  predecessor_ = std::move(predecessor);
  successors_.Assign(std::move(successor_list));
}

}  // namespace peertrack::chord
