#include "chord/chord_node.hpp"

#include "hash/keyspace.hpp"
#include "util/logging.hpp"

namespace peertrack::chord {

ChordNode::ChordNode(sim::Network& network, std::string address, Options options)
    : network_(network),
      address_(std::move(address)),
      self_{hash::NodeKey(address_), sim::kInvalidActor},
      options_(options),
      successors_(self_.id, options.successor_list_size),
      fingers_(self_.id) {
  self_.actor = network_.Register(*this);
}

NodeRef ChordNode::Successor() const noexcept {
  return successors_.Empty() ? self_ : successors_.First();
}

bool ChordNode::Owns(const Key& key) const noexcept {
  if (!predecessor_) return true;
  return key.InHalfOpenLoHi(predecessor_->id, self_.id);
}

void ChordNode::CreateRing() {
  alive_ = true;
  predecessor_.reset();
}

void ChordNode::Join(const NodeRef& bootstrap, std::function<void()> on_joined) {
  alive_ = true;
  predecessor_.reset();
  on_joined_ = std::move(on_joined);

  // Ask the bootstrap peer to resolve our own id; the result is our
  // successor. Driven by the standard lookup machinery with an explicit
  // first target.
  const std::uint64_t request_id = next_request_id_++;
  PendingLookup pending;
  pending.key = self_.id;
  pending.callback = [this](const NodeRef& owner, std::size_t) {
    if (!owner.Valid()) {
      util::LogWarn("join of {} failed: lookup error", self_.Describe());
      return;
    }
    successors_.Offer(owner);
    // Announce ourselves so the successor adopts us as predecessor and
    // transfers the keys we now own.
    auto notify = std::make_unique<NotifyMessage>();
    notify->candidate = self_;
    network_.Send(self_.actor, owner.actor, std::move(notify));
    if (on_joined_) {
      auto done = std::move(on_joined_);
      on_joined_ = {};
      done();
    }
  };
  pending_lookups_.emplace(request_id, std::move(pending));
  LookupSendStep(request_id, bootstrap);
}

void ChordNode::Leave() {
  if (!alive_) return;
  const NodeRef successor = Successor();
  if (successor.actor != self_.actor) {
    // Hand application state for our whole range (pred, self] to the
    // successor before we disappear.
    if (app_ != nullptr) {
      const Key lo = predecessor_ ? predecessor_->id : self_.id;
      app_->OnRangeTransfer(lo, self_.id, successor);
    }
    auto to_successor = std::make_unique<LeaveNotice>();
    to_successor->departing = self_;
    to_successor->to_successor = true;
    if (predecessor_) to_successor->replacement = *predecessor_;
    network_.Send(self_.actor, successor.actor, std::move(to_successor));

    if (predecessor_) {
      auto to_predecessor = std::make_unique<LeaveNotice>();
      to_predecessor->departing = self_;
      to_predecessor->to_successor = false;
      to_predecessor->replacement = successor;
      network_.Send(self_.actor, predecessor_->actor, std::move(to_predecessor));
    }
  }
  Crash();
}

void ChordNode::Crash() {
  alive_ = false;
  network_.SetUp(self_.actor, false);
  pending_lookups_.clear();
  stabilize_request_.reset();
  stabilize_timeout_.Cancel();
}

void ChordNode::StartMaintenance(double stabilize_every_ms, double fix_fingers_every_ms) {
  stabilize_every_ms_ = stabilize_every_ms;
  fix_fingers_every_ms_ = fix_fingers_every_ms;
  ScheduleMaintenance();
}

void ChordNode::ScheduleMaintenance() {
  if (stabilize_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(stabilize_every_ms_, [this] {
      if (alive_) DoStabilize();
    });
  }
  if (fix_fingers_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(fix_fingers_every_ms_, [this] { DoFixFingers(); });
  }
}

void ChordNode::DoStabilize() {
  // Re-arm the periodic timer first so every exit path keeps the loop
  // alive.
  if (stabilize_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(stabilize_every_ms_, [this] {
      if (alive_) DoStabilize();
    });
  }
  const NodeRef successor = Successor();
  if (successor.actor == self_.actor) {
    // Degenerate self-successor (first node of a ring). Standard stabilize
    // asks successor.predecessor — which here is our own predecessor — and
    // adopts it, closing the two-node loop after the first join.
    if (predecessor_ && predecessor_->actor != self_.actor) {
      successors_.Offer(*predecessor_);
      auto notify = std::make_unique<NotifyMessage>();
      notify->candidate = self_;
      network_.Send(self_.actor, predecessor_->actor, std::move(notify));
    }
    return;
  }
  DoCheckPredecessor();
  if (stabilize_request_) return;  // One in flight at a time.

  const std::uint64_t request_id = next_request_id_++;
  stabilize_request_ = request_id;
  stabilize_target_ = successor;
  auto request = std::make_unique<StabilizeRequest>();
  request->request_id = request_id;
  network_.Send(self_.actor, successor.actor, std::move(request));

  stabilize_timeout_ = network_.simulator().ScheduleAfter(
      options_.request_timeout_ms, [this, request_id] {
        if (!alive_ || !stabilize_request_ || *stabilize_request_ != request_id) return;
        // Successor did not answer: consider it dead and fail over.
        stabilize_request_.reset();
        EvictPeer(stabilize_target_);
        network_.metrics().Bump("chord.successor_failover");
      });
}

void ChordNode::DoCheckPredecessor() {
  // Chord's check_predecessor(): probe the predecessor so a crashed one is
  // eventually cleared and the true predecessor's notify can land.
  if (!predecessor_ || ping_request_) return;
  const std::uint64_t request_id = next_request_id_++;
  ping_request_ = request_id;
  ping_target_ = *predecessor_;
  auto ping = std::make_unique<PingRequest>();
  ping->request_id = request_id;
  network_.Send(self_.actor, predecessor_->actor, std::move(ping));
  ping_timeout_ = network_.simulator().ScheduleAfter(
      options_.request_timeout_ms, [this, request_id] {
        if (!alive_ || !ping_request_ || *ping_request_ != request_id) return;
        ping_request_.reset();
        EvictPeer(ping_target_);
        network_.metrics().Bump("chord.predecessor_evicted");
      });
}

void ChordNode::DoFixFingers() {
  if (!alive_) return;
  // Refresh one finger per round; consecutive fingers that fall inside the
  // resolved node's range are filled in the callback without extra lookups.
  const unsigned index = next_finger_;
  next_finger_ = (next_finger_ + 1) % FingerTable::kBits;
  Lookup(fingers_.Start(index), [this, index](const NodeRef& owner, std::size_t) {
    if (!owner.Valid() || IsConfirmedDead(owner)) return;
    fingers_.Set(index, owner);
    for (unsigned j = index + 1; j < FingerTable::kBits; ++j) {
      if (fingers_.Start(j).InHalfOpenLoHi(self_.id, owner.id)) {
        fingers_.Set(j, owner);
        next_finger_ = (j + 1) % FingerTable::kBits;
      } else {
        break;
      }
    }
  });
  if (fix_fingers_every_ms_ > 0.0) {
    network_.simulator().ScheduleAfter(fix_fingers_every_ms_, [this] { DoFixFingers(); });
  }
}

void ChordNode::AdoptPredecessor(const NodeRef& candidate) {
  if (candidate.actor == self_.actor || IsConfirmedDead(candidate)) return;
  if (!predecessor_ || candidate.id.InOpenInterval(predecessor_->id, self_.id)) {
    const std::optional<NodeRef> old = predecessor_;
    predecessor_ = candidate;
    // Keys in (old_pred, candidate] are no longer ours; let the app ship
    // its state to the new owner. With no previous predecessor we were
    // nominally responsible for the whole ring, so the transferred span is
    // (self, candidate] — everything except our own arc.
    if (app_ != nullptr) {
      const Key lo = old ? old->id : self_.id;
      app_->OnRangeTransfer(lo, candidate.id, candidate);
    }
  }
}

void ChordNode::EvictPeer(const NodeRef& peer) {
  confirmed_dead_.insert(peer.actor);
  successors_.Remove(peer);
  fingers_.Evict(peer);
  if (predecessor_ && predecessor_->actor == peer.actor) predecessor_.reset();
}

ChordNode::RouteStep ChordNode::NextRouteStep(const Key& key) const {
  RouteStep step;
  const NodeRef successor = Successor();
  if (successor.actor == self_.actor || key.InHalfOpenLoHi(self_.id, successor.id)) {
    step.done = true;
    step.node = successor;
    return step;
  }
  if (const auto finger = fingers_.ClosestPreceding(key)) {
    // A finger may overshoot the tightest predecessor but never the key.
    step.node = *finger;
    // Successor-list entries can be closer than the best finger.
    for (const auto& entry : successors_.Entries()) {
      if (entry.id.InOpenInterval(step.node.id, key)) step.node = entry;
    }
    step.done = false;
    return step;
  }
  // No usable finger: fall back to the last successor-list entry preceding
  // the key, or the immediate successor.
  step.node = successor;
  for (const auto& entry : successors_.Entries()) {
    if (entry.id.InOpenInterval(self_.id, key)) step.node = entry;
  }
  step.done = false;
  return step;
}

void ChordNode::OnMessage(sim::ActorId from, std::unique_ptr<sim::Message> message) {
  if (!alive_) return;
  if (auto* lookup_req = dynamic_cast<LookupStepRequest*>(message.get())) {
    HandleLookupStep(from, *lookup_req);
    return;
  }
  if (auto* lookup_resp = dynamic_cast<LookupStepResponse*>(message.get())) {
    HandleLookupResponse(*lookup_resp);
    return;
  }
  if (auto* stab_req = dynamic_cast<StabilizeRequest*>(message.get())) {
    HandleStabilizeRequest(from, *stab_req);
    return;
  }
  if (auto* stab_resp = dynamic_cast<StabilizeResponse*>(message.get())) {
    HandleStabilizeResponse(*stab_resp);
    return;
  }
  if (auto* notify = dynamic_cast<NotifyMessage*>(message.get())) {
    HandleNotify(*notify);
    return;
  }
  if (auto* leave = dynamic_cast<LeaveNotice*>(message.get())) {
    HandleLeave(*leave);
    return;
  }
  if (auto* ping = dynamic_cast<PingRequest*>(message.get())) {
    auto pong = std::make_unique<PingResponse>();
    pong->request_id = ping->request_id;
    network_.Send(self_.actor, from, std::move(pong));
    return;
  }
  if (auto* pong = dynamic_cast<PingResponse*>(message.get())) {
    if (ping_request_ && *ping_request_ == pong->request_id) {
      ping_request_.reset();
      ping_timeout_.Cancel();
    }
    return;
  }
  if (app_ != nullptr) {
    app_->OnAppMessage(from, std::move(message));
    return;
  }
  util::LogWarn("{}: unhandled message {}", self_.Describe(), message->TypeName());
}

void ChordNode::HandleStabilizeRequest(sim::ActorId from, const StabilizeRequest& request) {
  auto response = std::make_unique<StabilizeResponse>();
  response->request_id = request.request_id;
  if (predecessor_) {
    response->has_predecessor = true;
    response->predecessor = *predecessor_;
  }
  response->successors = successors_.Entries();
  network_.Send(self_.actor, from, std::move(response));
}

void ChordNode::HandleStabilizeResponse(const StabilizeResponse& response) {
  if (!stabilize_request_ || *stabilize_request_ != response.request_id) return;
  stabilize_request_.reset();
  stabilize_timeout_.Cancel();

  if (response.has_predecessor && !IsConfirmedDead(response.predecessor) &&
      response.predecessor.id.InOpenInterval(self_.id, stabilize_target_.id)) {
    // A node sits between us and our successor: adopt it.
    successors_.Offer(response.predecessor);
  }
  // Merge the successor's list, filtering peers we know to be dead —
  // otherwise stale gossip would resurrect them indefinitely.
  for (const auto& peer : response.successors) {
    if (!IsConfirmedDead(peer)) successors_.Offer(peer);
  }

  const NodeRef successor = Successor();
  if (successor.actor != self_.actor) {
    auto notify = std::make_unique<NotifyMessage>();
    notify->candidate = self_;
    network_.Send(self_.actor, successor.actor, std::move(notify));
  }
}

void ChordNode::HandleNotify(const NotifyMessage& notify) {
  AdoptPredecessor(notify.candidate);
}

void ChordNode::HandleLeave(const LeaveNotice& notice) {
  EvictPeer(notice.departing);
  if (notice.to_successor) {
    // Our predecessor left; its predecessor is our new one.
    if (notice.replacement.Valid()) AdoptPredecessor(notice.replacement);
  } else {
    // Our successor left; adopt its successor.
    if (notice.replacement.Valid()) successors_.Offer(notice.replacement);
  }
}

void ChordNode::OracleWire(std::optional<NodeRef> predecessor,
                           std::vector<NodeRef> successor_list) {
  alive_ = true;
  predecessor_ = std::move(predecessor);
  successors_.Assign(std::move(successor_list));
}

}  // namespace peertrack::chord
