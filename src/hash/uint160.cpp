#include "hash/uint160.hpp"

namespace peertrack::hash {

UInt160 UInt160::FromDigest(const Sha1Digest& digest) noexcept {
  Words words{};
  for (int i = 0; i < 5; ++i) {
    words[i] = (static_cast<std::uint32_t>(digest[i * 4]) << 24) |
               (static_cast<std::uint32_t>(digest[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(digest[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(digest[i * 4 + 3]);
  }
  return UInt160(words);
}

UInt160 UInt160::FromHex(std::string_view hex) noexcept {
  if (hex.size() > 40) return UInt160();
  Words words{};
  // Right-align: the last hex digit is the least-significant nibble.
  unsigned nibble_index = 0;  // 0 = least significant nibble.
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, ++nibble_index) {
    const char c = *it;
    std::uint32_t value;
    if (c >= '0' && c <= '9') {
      value = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return UInt160();
    }
    const unsigned word = 4 - nibble_index / 8;
    const unsigned shift = (nibble_index % 8) * 4;
    words[word] |= value << shift;
  }
  return UInt160(words);
}

UInt160 UInt160::Pow2(unsigned k) noexcept {
  if (k >= 160) return UInt160();
  Words words{};
  const unsigned word = 4 - k / 32;
  words[word] = 1u << (k % 32);
  return UInt160(words);
}

UInt160 UInt160::Max() noexcept {
  Words words;
  words.fill(0xFFFFFFFFu);
  return UInt160(words);
}

UInt160 UInt160::operator+(const UInt160& rhs) const noexcept {
  Words out{};
  std::uint64_t carry = 0;
  for (int i = 4; i >= 0; --i) {
    const std::uint64_t sum =
        static_cast<std::uint64_t>(words_[i]) + rhs.words_[i] + carry;
    out[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  return UInt160(out);
}

UInt160 UInt160::operator-(const UInt160& rhs) const noexcept {
  Words out{};
  std::int64_t borrow = 0;
  for (int i = 4; i >= 0; --i) {
    const std::int64_t diff = static_cast<std::int64_t>(words_[i]) -
                              static_cast<std::int64_t>(rhs.words_[i]) - borrow;
    if (diff < 0) {
      out[i] = static_cast<std::uint32_t>(diff + (std::int64_t{1} << 32));
      borrow = 1;
    } else {
      out[i] = static_cast<std::uint32_t>(diff);
      borrow = 0;
    }
  }
  return UInt160(out);
}

std::string UInt160::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (auto w : words_) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(w >> shift) & 0xF]);
    }
  }
  return out;
}

std::string UInt160::ToShortHex() const { return ToHex().substr(0, 10); }

}  // namespace peertrack::hash
