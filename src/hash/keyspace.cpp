#include "hash/keyspace.hpp"

#include <unordered_map>

namespace peertrack::hash {

UInt160 ObjectKey(std::string_view raw_object_id) noexcept {
  return UInt160::FromDigest(Sha1Hash(raw_object_id));
}

UInt160 NodeKey(std::string_view address) noexcept {
  return UInt160::FromDigest(Sha1Hash(address));
}

std::string PrefixString(const UInt160& hashed_object_id, unsigned length) {
  std::string out;
  out.reserve(length);
  for (unsigned i = 0; i < length && i < 160; ++i) {
    out.push_back(hashed_object_id.BitFromMsb(i) ? '1' : '0');
  }
  return out;
}

std::string Prefix::ToString() const {
  std::string out;
  out.reserve(length);
  for (unsigned i = 0; i < length; ++i) {
    out.push_back(((bits >> (length - 1 - i)) & 1) ? '1' : '0');
  }
  return out;
}

Prefix Prefix::FromString(std::string_view text) noexcept {
  Prefix p;
  if (text.size() > 64) return p;
  for (char c : text) {
    p.bits = (p.bits << 1) | (c == '1' ? 1u : 0u);
    ++p.length;
  }
  return p;
}

Prefix Prefix::OfKey(const UInt160& key, unsigned length) noexcept {
  Prefix p;
  p.length = length > 64 ? 64 : length;
  p.bits = key.PrefixBits(p.length);
  return p;
}

Prefix Prefix::Parent() const noexcept {
  Prefix p;
  p.length = length - 1;
  p.bits = bits >> 1;
  return p;
}

Prefix Prefix::Child(bool bit) const noexcept {
  Prefix p;
  p.length = length + 1;
  p.bits = (bits << 1) | (bit ? 1u : 0u);
  return p;
}

bool Prefix::Matches(const UInt160& key) const noexcept {
  return key.PrefixBits(length) == bits;
}

UInt160 GroupKey(const Prefix& prefix) noexcept {
  // FlushWindow recomputes the key of every non-empty group each time a
  // window closes, and the live prefix space is tiny (2^Lp values), so the
  // SHA-1 is memoized. The map only ever holds pure-function results, which
  // keeps same-seed runs bit-identical regardless of cache state.
  thread_local std::unordered_map<Prefix, UInt160, PrefixHasher> cache;
  if (cache.size() > (1u << 20)) cache.clear();  // Unbounded-growth guard.
  const auto [it, inserted] = cache.try_emplace(prefix);
  if (inserted) it->second = UInt160::FromDigest(Sha1Hash(prefix.ToString()));
  return it->second;
}

}  // namespace peertrack::hash
