#include "hash/sha1.hpp"

#include <bit>
#include <cstring>

namespace peertrack::hash {

namespace {

constexpr std::uint32_t Rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

Sha1::Sha1() noexcept { Reset(); }

void Sha1::Reset() noexcept {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

Sha1& Sha1::Update(std::string_view text) noexcept {
  return Update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1& Sha1::Update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
  return *this;
}

void Sha1::ProcessBlock(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = Rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = Rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::Finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit big-endian
  // message length — assembled into one trailer (at most 1 + 63 + 8 bytes)
  // so the whole padding costs a single Update call.
  std::uint8_t trailer[72] = {0x80};
  const std::size_t pad_zeros =
      buffered_ <= 55 ? 55 - buffered_ : 119 - buffered_;
  std::size_t trailer_size = 1 + pad_zeros;
  for (int i = 0; i < 8; ++i) {
    trailer[trailer_size + i] =
        static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  trailer_size += 8;
  Update(std::span<const std::uint8_t>(trailer, trailer_size));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest Sha1Hash(std::string_view text) noexcept {
  return Sha1().Update(text).Finish();
}

Sha1Digest Sha1Hash(std::span<const std::uint8_t> data) noexcept {
  return Sha1().Update(data).Finish();
}

std::string ToHex(const Sha1Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace peertrack::hash
