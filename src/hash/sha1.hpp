#pragma once
// SHA-1 (FIPS 180-1), implemented from scratch.
//
// The paper hashes object ids and node addresses with SHA-1 so that both
// live in the same 160-bit Chord keyspace. SHA-1's cryptographic weakness
// is irrelevant here — only its uniform dispersion matters — but we
// implement the real algorithm (validated against the FIPS test vectors in
// tests/hash_sha1_test.cpp) so keys match what a deployment using standard
// tooling would compute.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace peertrack::hash {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1. Typical use: Sha1().Update(data).Finish().
class Sha1 {
 public:
  Sha1() noexcept;

  /// Absorb bytes; may be called repeatedly.
  Sha1& Update(std::span<const std::uint8_t> data) noexcept;
  Sha1& Update(std::string_view text) noexcept;

  /// Pad and produce the digest. The object must not be reused afterwards
  /// without Reset().
  Sha1Digest Finish() noexcept;

  void Reset() noexcept;

 private:
  void ProcessBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
Sha1Digest Sha1Hash(std::string_view text) noexcept;
Sha1Digest Sha1Hash(std::span<const std::uint8_t> data) noexcept;

/// Lowercase hex rendering of a digest.
std::string ToHex(const Sha1Digest& digest);

}  // namespace peertrack::hash
