#pragma once
// Key derivation: how objects, nodes, and prefix groups map onto the ring.
//
// Per the paper (Section III footnote 1): object raw ids and node addresses
// are hashed with SHA-1 so both live in the same 160-bit identifier space.
// Group gateways are found by hashing the *textual* prefix of the hashed
// object id ("objects belonging to the group '00' will be indexed in the
// node hash('00')"), so a group key does NOT share the prefix of its member
// objects — it is an independent uniformly random point on the ring, which
// is what gives group indexing its load-spreading behaviour.

#include <cstdint>
#include <string>
#include <string_view>

#include "hash/uint160.hpp"

namespace peertrack::hash {

/// Key for an object: SHA1(raw id).
UInt160 ObjectKey(std::string_view raw_object_id) noexcept;

/// Key for a node: SHA1(address). A port-style discriminator keeps two
/// logical nodes on one host distinct.
UInt160 NodeKey(std::string_view address) noexcept;

/// A group's identity is the first `length` bits of the hashed object id,
/// rendered as a '0'/'1' string (so prefix "00" and "000" are distinct
/// groups, exactly as in the paper's example).
std::string PrefixString(const UInt160& hashed_object_id, unsigned length);

/// Prefix value + length as a compact pair (used as map keys internally).
struct Prefix {
  std::uint64_t bits = 0;   ///< Left-aligned within `length` (value of the prefix).
  unsigned length = 0;      ///< Number of bits; <= 64.

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend auto operator<=>(const Prefix&, const Prefix&) = default;

  /// '0'/'1' rendering, e.g. {bits=0b101, length=3} -> "101".
  std::string ToString() const;

  /// Parse a '0'/'1' string.
  static Prefix FromString(std::string_view text) noexcept;

  /// Prefix of an object's hashed id.
  static Prefix OfKey(const UInt160& key, unsigned length) noexcept;

  /// Parent prefix (one bit shorter). Precondition: length > 0.
  Prefix Parent() const noexcept;

  /// Child prefixes (one bit longer, appended bit 0/1). Precondition:
  /// length < 64.
  Prefix Child(bool bit) const noexcept;

  /// True when `key`'s hashed id starts with this prefix.
  bool Matches(const UInt160& key) const noexcept;
};

struct PrefixHasher {
  std::size_t operator()(const Prefix& p) const noexcept {
    std::uint64_t state = p.bits * 0x9e3779b97f4a7c15ULL + p.length;
    return static_cast<std::size_t>(util_mix(state));
  }

 private:
  static std::uint64_t util_mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Gateway key of a group: SHA1(prefix string).
UInt160 GroupKey(const Prefix& prefix) noexcept;

}  // namespace peertrack::hash
