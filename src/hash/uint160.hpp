#pragma once
// 160-bit unsigned integers on the Chord identifier ring.
//
// Chord identifiers are SHA-1 digests interpreted as big-endian 160-bit
// integers mod 2^160. UInt160 is a value type with the ring operations the
// protocol needs: wrap-around add/subtract, 2^k offsets for finger targets,
// half-open/closed interval membership on the ring, prefix extraction for
// the paper's group-indexing scheme, and distance metrics.

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "hash/sha1.hpp"

namespace peertrack::hash {

class UInt160 {
 public:
  /// Five 32-bit limbs, most-significant first (word_[0] holds bits 159..128).
  using Words = std::array<std::uint32_t, 5>;

  constexpr UInt160() noexcept : words_{} {}
  constexpr explicit UInt160(std::uint64_t low) noexcept : words_{} {
    words_[3] = static_cast<std::uint32_t>(low >> 32);
    words_[4] = static_cast<std::uint32_t>(low);
  }
  constexpr explicit UInt160(const Words& words) noexcept : words_(words) {}

  /// Big-endian interpretation of a SHA-1 digest.
  static UInt160 FromDigest(const Sha1Digest& digest) noexcept;

  /// Parse up to 40 hex digits (shorter input is right-aligned / zero
  /// extended). Returns zero on invalid characters.
  static UInt160 FromHex(std::string_view hex) noexcept;

  /// 2^k for k in [0, 160); k >= 160 yields zero (2^160 ≡ 0 mod 2^160).
  static UInt160 Pow2(unsigned k) noexcept;

  static constexpr UInt160 Zero() noexcept { return UInt160(); }
  static UInt160 Max() noexcept;

  const Words& words() const noexcept { return words_; }

  auto operator<=>(const UInt160& other) const noexcept = default;

  /// Ring arithmetic (mod 2^160).
  UInt160 operator+(const UInt160& rhs) const noexcept;
  UInt160 operator-(const UInt160& rhs) const noexcept;
  UInt160& operator+=(const UInt160& rhs) noexcept { return *this = *this + rhs; }
  UInt160& operator-=(const UInt160& rhs) noexcept { return *this = *this - rhs; }

  /// Clockwise distance from `from` to this id on the ring.
  UInt160 DistanceFrom(const UInt160& from) const noexcept { return *this - from; }

  /// Bit at position `index` counted from the most-significant bit
  /// (index 0 = bit 159). Precondition: index < 160.
  bool BitFromMsb(unsigned index) const noexcept {
    const unsigned word = index / 32;
    const unsigned bit = 31 - index % 32;
    return (words_[word] >> bit) & 1u;
  }

  /// The top `bits` bits as an integer (bits <= 64). bits == 0 returns 0.
  std::uint64_t PrefixBits(unsigned bits) const noexcept {
    if (bits == 0) return 0;
    if (bits > 64) bits = 64;
    const std::uint64_t high64 =
        (static_cast<std::uint64_t>(words_[0]) << 32) | words_[1];
    return high64 >> (64 - bits);
  }

  /// In-ring membership tests used by Chord. All treat the ring as
  /// circular: when lo == hi the open interval is the whole ring minus the
  /// endpoints' degenerate cases, matching the Chord paper's conventions.
  /// Defined inline: every routing hop runs several of these per finger.
  /// InOpenInterval:     x in (lo, hi)
  /// InHalfOpenLoHi:     x in (lo, hi]
  bool InOpenInterval(const UInt160& lo, const UInt160& hi) const noexcept {
    if (lo == hi) {
      // Degenerate whole-ring interval: everything except the endpoint.
      return *this != lo;
    }
    if (lo < hi) return lo < *this && *this < hi;
    return *this > lo || *this < hi;  // Interval wraps past zero.
  }
  bool InHalfOpenLoHi(const UInt160& lo, const UInt160& hi) const noexcept {
    if (lo == hi) return true;  // Whole ring, endpoint included.
    if (lo < hi) return lo < *this && *this <= hi;
    return *this > lo || *this <= hi;
  }

  bool IsZero() const noexcept {
    for (auto w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// 40-digit lowercase hex.
  std::string ToHex() const;

  /// Short 10-digit hex prefix for logs.
  std::string ToShortHex() const;

  /// Fold down to 64 bits (for use as an unordered_map key hash).
  /// Inline: this runs on every probe of every UInt160-keyed hashtable.
  std::uint64_t Fold64() const noexcept {
    std::uint64_t acc = 0xcbf29ce484222325ULL;
    for (auto w : words_) {
      acc ^= w;
      acc *= 0x100000001b3ULL;
    }
    return acc;
  }

 private:
  Words words_;
};

/// std::unordered_map support.
struct UInt160Hasher {
  std::size_t operator()(const UInt160& id) const noexcept {
    return static_cast<std::size_t>(id.Fold64());
  }
};

}  // namespace peertrack::hash
