#pragma once
// Pending-event set for the discrete-event simulator.
//
// A 4-ary min-heap of POD records ordered by (time, sequence). The sequence
// number makes ordering of simultaneous events deterministic (FIFO within a
// timestamp), which the reproducibility guarantees of the whole repo rest
// on.
//
// Actions live in a slot arena beside the heap, not in the heap itself:
// heap records are 24-byte PODs {time, seq, slot, generation}, so sift
// operations move trivially-copyable values instead of type-erased
// closures, and a push performs no allocation once the arena and heap have
// reached steady-state size. Cancellation is O(1) and generation-stamped —
// EventHandle remembers (slot, generation); a slot's generation bumps every
// time it is freed, so cancelling an already-fired (or already-cancelled)
// event is a harmless generation mismatch rather than a stale-pointer
// hazard. Cancelled heap records are dropped lazily when they surface at
// the top, but the action itself is destroyed eagerly at Cancel() so
// captured resources (message payloads, rpc state) are not pinned until
// the record drains.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/unique_function.hpp"

namespace peertrack::sim {

/// Simulated time in milliseconds.
using Time = double;

class EventQueue;

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert. Handles are trivially copyable; every copy refers to the same
/// scheduled event. A handle must not outlive its EventQueue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event; no-op if it already fired or was already cancelled.
  void Cancel() noexcept;

  bool Valid() const noexcept { return queue_ != nullptr; }

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `action` at absolute time `time`. Returns a cancellation
  /// handle.
  EventHandle Push(Time time, util::UniqueFunction<void()> action);

  /// True when no live (non-cancelled) events remain. O(1).
  bool Empty() const noexcept { return live_ == 0; }

  /// Earliest live event time. Precondition: !Empty().
  Time NextTime();

  /// Pop and run nothing — returns the next live action and its time.
  /// Precondition: !Empty().
  struct Entry {
    Time time;
    util::UniqueFunction<void()> action;
  };
  Entry Pop();

  /// Number of live (non-cancelled, non-fired) events.
  std::size_t PendingCount() const noexcept { return live_; }

 private:
  friend class EventHandle;

  /// Heap records are PODs; the action lives in slots_[slot]. A record is
  /// stale (cancelled or superseded) iff its generation no longer matches
  /// the slot's.
  struct HeapNode {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  struct Slot {
    util::UniqueFunction<void()> action;
    std::uint32_t generation = 0;
  };

  static bool Earlier(const HeapNode& a, const HeapNode& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void CancelSlot(std::uint32_t slot, std::uint32_t generation) noexcept;
  std::uint32_t AcquireSlot();
  /// Bumps the slot's generation (invalidating outstanding handles and heap
  /// records) and recycles it.
  void ReleaseSlot(std::uint32_t slot) noexcept;
  /// Removes stale records until a live one is at the top. Precondition:
  /// live_ > 0 (a live record exists somewhere in the heap).
  void DropStaleTop() noexcept;
  void SiftUp(std::size_t index) noexcept;
  void SiftDown(std::size_t index) noexcept;

  std::vector<HeapNode> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

inline void EventHandle::Cancel() noexcept {
  if (queue_ != nullptr) queue_->CancelSlot(slot_, generation_);
}

}  // namespace peertrack::sim
