#pragma once
// Pending-event set for the discrete-event simulator.
//
// A binary min-heap ordered by (time, sequence). The sequence number makes
// ordering of simultaneous events deterministic (FIFO within a timestamp),
// which the reproducibility guarantees of the whole repo rest on.
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// on pop, so Cancel() is O(1).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/unique_function.hpp"

namespace peertrack::sim {

/// Simulated time in milliseconds.
using Time = double;

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Marks the event as cancelled; no-op if already fired or cancelled.
  void Cancel() noexcept {
    if (cancelled_) *cancelled_ = true;
  }

  bool Valid() const noexcept { return cancelled_ != nullptr; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  /// Schedule `action` at absolute time `time`. Returns a cancellation
  /// handle.
  EventHandle Push(Time time, util::UniqueFunction<void()> action);

  /// True when no live (non-cancelled) events remain.
  bool Empty();

  /// Earliest live event time. Precondition: !Empty().
  Time NextTime();

  /// Pop and run nothing — returns the next live action and its time.
  /// Precondition: !Empty().
  struct Entry {
    Time time;
    util::UniqueFunction<void()> action;
  };
  Entry Pop();

  /// Number of heap entries, including cancelled-but-not-yet-dropped ones
  /// (cancellation is lazy); an upper bound on live events.
  std::size_t PendingCount() const noexcept { return heap_.size(); }

 private:
  struct Node {
    Time time;
    std::uint64_t seq;
    // unique_ptr keeps Node movable even though move_only_function is.
    util::UniqueFunction<void()> action;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void DropCancelled();

  std::priority_queue<Node, std::vector<Node>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace peertrack::sim
