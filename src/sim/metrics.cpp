#include "sim/metrics.hpp"

#include "util/format.hpp"

namespace peertrack::sim {

void Metrics::BumpPerActor(std::vector<std::uint64_t>& v, ActorId id) {
  if (id == kInvalidActor) return;
  if (v.size() <= id) v.resize(id + 1, 0);
  ++v[id];
}

void Metrics::RecordMessage(std::string_view type, std::size_t bytes, ActorId from,
                            ActorId to) {
  ++total_messages_;
  total_bytes_ += bytes;
  auto it = by_type_.find(type);
  if (it == by_type_.end()) {
    it = by_type_.emplace(std::string(type), TypeCounter{}).first;
  }
  ++it->second.count;
  it->second.bytes += bytes;
  BumpPerActor(sent_per_actor_, from);
  BumpPerActor(received_per_actor_, to);
}

void Metrics::RecordDrop(std::string_view type) {
  ++dropped_;
  Bump(util::Format("drop:{}", type));
}

void Metrics::Bump(const std::string& counter, std::uint64_t by) {
  counters_[counter] += by;
}

Metrics::TypeCounter Metrics::ForType(std::string_view type) const {
  const auto it = by_type_.find(type);
  return it == by_type_.end() ? TypeCounter{} : it->second;
}

std::uint64_t Metrics::Counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::Reset() { *this = Metrics{}; }

std::string Metrics::Summary() const {
  std::string out = util::Format("messages={} bytes={} dropped={}\n", total_messages_,
                                total_bytes_, dropped_);
  for (const auto& [type, counter] : by_type_) {
    out += util::Format("  {:<24} count={:<10} bytes={}\n", type, counter.count,
                       counter.bytes);
  }
  if (lookup_hops_.Count() > 0) {
    out += util::Format("  lookup hops: mean={:.2f} max={:.0f} n={}\n",
                       lookup_hops_.Mean(), lookup_hops_.Max(), lookup_hops_.Count());
  }
  for (const auto& [name, value] : counters_) {
    out += util::Format("  counter {:<22} {}\n", name, value);
  }
  return out;
}

}  // namespace peertrack::sim
