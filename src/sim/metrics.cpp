#include "sim/metrics.hpp"

#include "util/format.hpp"

namespace peertrack::sim {

namespace {

/// Histogram layout for lookup hop counts: hops are small integers, so a
/// fine min bound keeps every value in its own bucket.
obs::HistogramOptions HopHistogramOptions() {
  obs::HistogramOptions options;
  options.min_bound = 1.0;
  options.buckets_per_octave = 4;
  options.max_buckets = 48;
  return options;
}

}  // namespace

void Metrics::BumpPerActor(std::vector<std::uint64_t>& v, ActorId id,
                           std::uint64_t by) {
  if (id == kInvalidActor) return;
  if (v.size() <= id) v.resize(id + 1, 0);
  v[id] += by;
}

void Metrics::RecordMessage(std::string_view type, std::size_t bytes, ActorId from,
                            ActorId to) {
  ++total_messages_;
  total_bytes_ += bytes;
  auto it = by_type_.find(type);
  if (it == by_type_.end()) {
    it = by_type_.emplace(std::string(type), TypeCounter{}).first;
  }
  ++it->second.count;
  it->second.bytes += bytes;
  BumpPerActor(sent_per_actor_, from, 1);
  BumpPerActor(received_per_actor_, to, 1);
  BumpPerActor(sent_bytes_per_actor_, from, bytes);
  BumpPerActor(received_bytes_per_actor_, to, bytes);
}

void Metrics::RecordDrop(std::string_view type, DropReason reason) {
  if (reason == DropReason::kLoss) {
    ++dropped_loss_;
    Bump(util::Format("drop.loss:{}", type));
  } else {
    ++dropped_down_;
    Bump(util::Format("drop.down:{}", type));
  }
}

void Metrics::RecordRpcRetry(std::string_view type) {
  ++rpc_retries_;
  Bump(util::Format("rpc.retry:{}", type));
}

void Metrics::RecordRpcTimeout(std::string_view type) {
  ++rpc_timeouts_;
  Bump(util::Format("rpc.timeout:{}", type));
}

void Metrics::RecordLookupHops(std::size_t hops) {
  lookup_hops_.Add(static_cast<double>(hops));
  registry_.GetHistogram("chord.lookup_hops", HopHistogramOptions())
      .Add(static_cast<double>(hops));
}

void Metrics::RecordLatency(std::string_view name, double ms) {
  LatencyHistogram(name).Add(ms);
}

obs::Histogram& Metrics::LatencyHistogram(std::string_view name) {
  return registry_.GetHistogram(util::Format("latency:{}", name));
}

void Metrics::Bump(std::string_view counter, std::uint64_t by) {
  registry_.GetCounter(counter).Add(by);
}

Metrics::TypeCounter Metrics::ForType(std::string_view type) const {
  const auto it = by_type_.find(type);
  return it == by_type_.end() ? TypeCounter{} : it->second;
}

std::uint64_t Metrics::Counter(std::string_view name) const {
  return registry_.CounterValue(name);
}

void Metrics::Reset() { *this = Metrics{}; }

std::string Metrics::Summary() const {
  std::string out = util::Format(
      "messages={} bytes={} dropped={} (loss={} down={}) rpc_retries={} "
      "rpc_timeouts={}\n",
      total_messages_, total_bytes_, DroppedMessages(), dropped_loss_,
      dropped_down_, rpc_retries_, rpc_timeouts_);
  for (const auto& [type, counter] : by_type_) {
    out += util::Format("  {:<24} count={:<10} bytes={}\n", type, counter.count,
                       counter.bytes);
  }
  if (lookup_hops_.Count() > 0) {
    out += util::Format("  lookup hops: mean={:.2f} max={:.0f} n={}\n",
                       lookup_hops_.Mean(), lookup_hops_.Max(), lookup_hops_.Count());
  }
  for (const auto& [name, value] : registry_.counters()) {
    out += util::Format("  counter {:<22} {}\n", name, value.Value());
  }
  for (const auto& [name, gauge] : registry_.gauges()) {
    out += util::Format("  gauge {:<24} {:.3f}\n", name, gauge.Value());
  }
  for (const auto& [name, histogram] : registry_.histograms()) {
    if (histogram.Count() == 0) continue;
    out += util::Format(
        "  hist {:<25} n={} p50={:.2f} p95={:.2f} p99={:.2f} max={:.2f}\n", name,
        histogram.Count(), histogram.P50(), histogram.P95(), histogram.P99(),
        histogram.Max());
  }
  return out;
}

std::vector<std::vector<std::string>> Metrics::CsvRows() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  rows.push_back({"total_messages", std::to_string(total_messages_)});
  rows.push_back({"total_bytes", std::to_string(total_bytes_)});
  rows.push_back({"dropped", std::to_string(DroppedMessages())});
  rows.push_back({"dropped_loss", std::to_string(dropped_loss_)});
  rows.push_back({"dropped_down_actor", std::to_string(dropped_down_)});
  rows.push_back({"rpc_retries", std::to_string(rpc_retries_)});
  rows.push_back({"rpc_timeouts", std::to_string(rpc_timeouts_)});
  for (const auto& [type, counter] : by_type_) {
    rows.push_back({util::Format("count:{}", type), std::to_string(counter.count)});
    rows.push_back({util::Format("bytes:{}", type), std::to_string(counter.bytes)});
  }
  for (const auto& [name, value] : registry_.counters()) {
    rows.push_back({util::Format("counter:{}", name), std::to_string(value.Value())});
  }
  for (const auto& [name, gauge] : registry_.gauges()) {
    rows.push_back({util::Format("gauge:{}", name),
                    util::Format("{:.6f}", gauge.Value())});
  }
  for (const auto& [name, histogram] : registry_.histograms()) {
    if (histogram.Count() == 0) continue;
    rows.push_back({util::Format("hist:{}:count", name),
                    std::to_string(histogram.Count())});
    rows.push_back({util::Format("hist:{}:p50", name),
                    util::Format("{:.4f}", histogram.P50())});
    rows.push_back({util::Format("hist:{}:p95", name),
                    util::Format("{:.4f}", histogram.P95())});
    rows.push_back({util::Format("hist:{}:p99", name),
                    util::Format("{:.4f}", histogram.P99())});
    rows.push_back({util::Format("hist:{}:max", name),
                    util::Format("{:.4f}", histogram.Max())});
  }
  return rows;
}

}  // namespace peertrack::sim
