#include "sim/metrics.hpp"

#include "sim/network.hpp"
#include "util/format.hpp"

namespace peertrack::sim {

namespace {

/// Histogram layout for lookup hop counts: hops are small integers, so a
/// fine min bound keeps every value in its own bucket.
obs::HistogramOptions HopHistogramOptions() {
  obs::HistogramOptions options;
  options.min_bound = 1.0;
  options.buckets_per_octave = 4;
  options.max_buckets = 48;
  return options;
}

/// The per-type accounting names Counter() recognizes, mapped to the slot
/// field they read.
constexpr std::string_view kRpcRetryPrefix = "rpc.retry:";
constexpr std::string_view kRpcTimeoutPrefix = "rpc.timeout:";
constexpr std::string_view kDropLossPrefix = "drop.loss:";
constexpr std::string_view kDropDownPrefix = "drop.down:";

}  // namespace

void Metrics::BumpPerActor(std::vector<std::uint64_t>& v, ActorId id,
                           std::uint64_t by) {
  if (id == kInvalidActor) return;
  if (v.size() <= id) v.resize(id + 1, 0);
  v[id] += by;
}

Metrics::TypeSlot& Metrics::SlotFor(const Message& message) {
  const MsgTypeId id = message.TypeId();
  if (slots_.size() <= id) slots_.resize(id + 1);
  TypeSlot& slot = slots_[id];
  if (slot.name.empty()) slot.name = message.TypeName();
  return slot;
}

const Metrics::TypeSlot* Metrics::FindSlot(std::string_view name) const noexcept {
  // Linear scan over a few dozen slots; only rendering / test queries come
  // through here, never the per-event path.
  for (const TypeSlot& slot : slots_) {
    if (!slot.name.empty() && slot.name == name) return &slot;
  }
  return nullptr;
}

void Metrics::RecordMessage(const Message& message, std::size_t bytes, ActorId from,
                            ActorId to) {
  ++total_messages_;
  total_bytes_ += bytes;
  TypeSlot& slot = SlotFor(message);
  ++slot.count;
  slot.bytes += bytes;
  BumpPerActor(sent_per_actor_, from, 1);
  BumpPerActor(received_per_actor_, to, 1);
  BumpPerActor(sent_bytes_per_actor_, from, bytes);
  BumpPerActor(received_bytes_per_actor_, to, bytes);
}

void Metrics::RecordMessage(std::string_view type, std::size_t bytes, ActorId from,
                            ActorId to) {
  ++total_messages_;
  total_bytes_ += bytes;
  auto it = extra_types_.find(type);
  if (it == extra_types_.end()) {
    it = extra_types_.emplace(std::string(type), TypeCounter{}).first;
  }
  ++it->second.count;
  it->second.bytes += bytes;
  BumpPerActor(sent_per_actor_, from, 1);
  BumpPerActor(received_per_actor_, to, 1);
  BumpPerActor(sent_bytes_per_actor_, from, bytes);
  BumpPerActor(received_bytes_per_actor_, to, bytes);
}

void Metrics::RecordDrop(const Message& message, DropReason reason) {
  TypeSlot& slot = SlotFor(message);
  if (reason == DropReason::kLoss) {
    ++dropped_loss_;
    ++slot.drop_loss;
  } else {
    ++dropped_down_;
    ++slot.drop_down;
  }
}

void Metrics::RecordDrop(std::string_view type, DropReason reason) {
  if (reason == DropReason::kLoss) {
    ++dropped_loss_;
    Bump(util::Format("drop.loss:{}", type));
  } else {
    ++dropped_down_;
    Bump(util::Format("drop.down:{}", type));
  }
}

void Metrics::RecordRpcRetry(const Message& request) {
  ++rpc_retries_;
  ++SlotFor(request).rpc_retry;
}

void Metrics::RecordRpcRetry(std::string_view type) {
  ++rpc_retries_;
  Bump(util::Format("rpc.retry:{}", type));
}

void Metrics::RecordRpcTimeout(const Message& request) {
  ++rpc_timeouts_;
  ++SlotFor(request).rpc_timeout;
}

void Metrics::RecordRpcTimeout(std::string_view type) {
  ++rpc_timeouts_;
  Bump(util::Format("rpc.timeout:{}", type));
}

void Metrics::RecordLookupHops(std::size_t hops) {
  lookup_hops_.Add(static_cast<double>(hops));
  if (lookup_hops_hist_ == nullptr) {
    lookup_hops_hist_ =
        &registry_.GetHistogram("chord.lookup_hops", HopHistogramOptions());
  }
  lookup_hops_hist_->Add(static_cast<double>(hops));
}

void Metrics::RecordLatency(std::string_view name, double ms) {
  LatencyHistogram(name).Add(ms);
}

obs::Histogram& Metrics::LatencyHistogram(std::string_view name) {
  return registry_.GetHistogram(util::Format("latency:{}", name));
}

void Metrics::Bump(std::string_view counter, std::uint64_t by) {
  registry_.GetCounter(counter).Add(by);
}

Metrics::TypeCounter Metrics::ForType(std::string_view type) const {
  TypeCounter result;
  if (const TypeSlot* slot = FindSlot(type)) {
    result.count += slot->count;
    result.bytes += slot->bytes;
  }
  if (const auto it = extra_types_.find(type); it != extra_types_.end()) {
    result.count += it->second.count;
    result.bytes += it->second.bytes;
  }
  return result;
}

std::map<std::string, Metrics::TypeCounter, std::less<>> Metrics::ByType() const {
  std::map<std::string, TypeCounter, std::less<>> merged = extra_types_;
  for (const TypeSlot& slot : slots_) {
    if (slot.name.empty() || slot.count == 0) continue;
    TypeCounter& counter = merged[slot.name];
    counter.count += slot.count;
    counter.bytes += slot.bytes;
  }
  return merged;
}

std::map<std::string, std::uint64_t, std::less<>> Metrics::MergedCounters() const {
  std::map<std::string, std::uint64_t, std::less<>> merged;
  for (const auto& [name, counter] : registry_.counters()) {
    if (counter.Value() != 0) merged[name] = counter.Value();
  }
  for (const TypeSlot& slot : slots_) {
    if (slot.name.empty()) continue;
    if (slot.drop_loss != 0) {
      merged[util::Format("drop.loss:{}", slot.name)] += slot.drop_loss;
    }
    if (slot.drop_down != 0) {
      merged[util::Format("drop.down:{}", slot.name)] += slot.drop_down;
    }
    if (slot.rpc_retry != 0) {
      merged[util::Format("rpc.retry:{}", slot.name)] += slot.rpc_retry;
    }
    if (slot.rpc_timeout != 0) {
      merged[util::Format("rpc.timeout:{}", slot.name)] += slot.rpc_timeout;
    }
  }
  return merged;
}

std::uint64_t Metrics::Counter(std::string_view name) const {
  std::uint64_t value = registry_.CounterValue(name);
  const auto slot_field =
      [&](std::string_view prefix,
          std::uint64_t TypeSlot::*field) -> std::uint64_t {
    if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
      return 0;
    }
    const TypeSlot* slot = FindSlot(name.substr(prefix.size()));
    return slot != nullptr ? slot->*field : 0;
  };
  value += slot_field(kRpcRetryPrefix, &TypeSlot::rpc_retry);
  value += slot_field(kRpcTimeoutPrefix, &TypeSlot::rpc_timeout);
  value += slot_field(kDropLossPrefix, &TypeSlot::drop_loss);
  value += slot_field(kDropDownPrefix, &TypeSlot::drop_down);
  return value;
}

void Metrics::Reset() {
  total_messages_ = 0;
  total_bytes_ = 0;
  dropped_loss_ = 0;
  dropped_down_ = 0;
  rpc_retries_ = 0;
  rpc_timeouts_ = 0;
  for (TypeSlot& slot : slots_) {
    // Keep the interned name; zero the counts.
    std::string name = std::move(slot.name);
    slot = TypeSlot{};
    slot.name = std::move(name);
  }
  extra_types_.clear();
  registry_.ResetValues();
  lookup_hops_ = util::RunningStats{};
  received_per_actor_.clear();
  sent_per_actor_.clear();
  received_bytes_per_actor_.clear();
  sent_bytes_per_actor_.clear();
}

std::string Metrics::Summary() const {
  std::string out = util::Format(
      "messages={} bytes={} dropped={} (loss={} down={}) rpc_retries={} "
      "rpc_timeouts={}\n",
      total_messages_, total_bytes_, DroppedMessages(), dropped_loss_,
      dropped_down_, rpc_retries_, rpc_timeouts_);
  for (const auto& [type, counter] : ByType()) {
    out += util::Format("  {:<24} count={:<10} bytes={}\n", type, counter.count,
                       counter.bytes);
  }
  if (lookup_hops_.Count() > 0) {
    out += util::Format("  lookup hops: mean={:.2f} max={:.0f} n={}\n",
                       lookup_hops_.Mean(), lookup_hops_.Max(), lookup_hops_.Count());
  }
  for (const auto& [name, value] : MergedCounters()) {
    out += util::Format("  counter {:<22} {}\n", name, value);
  }
  for (const auto& [name, gauge] : registry_.gauges()) {
    out += util::Format("  gauge {:<24} {:.3f}\n", name, gauge.Value());
  }
  for (const auto& [name, histogram] : registry_.histograms()) {
    if (histogram.Count() == 0) continue;
    out += util::Format(
        "  hist {:<25} n={} p50={:.2f} p95={:.2f} p99={:.2f} max={:.2f}\n", name,
        histogram.Count(), histogram.P50(), histogram.P95(), histogram.P99(),
        histogram.Max());
  }
  return out;
}

std::vector<std::vector<std::string>> Metrics::CsvRows() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  rows.push_back({"total_messages", std::to_string(total_messages_)});
  rows.push_back({"total_bytes", std::to_string(total_bytes_)});
  rows.push_back({"dropped", std::to_string(DroppedMessages())});
  rows.push_back({"dropped_loss", std::to_string(dropped_loss_)});
  rows.push_back({"dropped_down_actor", std::to_string(dropped_down_)});
  rows.push_back({"rpc_retries", std::to_string(rpc_retries_)});
  rows.push_back({"rpc_timeouts", std::to_string(rpc_timeouts_)});
  for (const auto& [type, counter] : ByType()) {
    rows.push_back({util::Format("count:{}", type), std::to_string(counter.count)});
    rows.push_back({util::Format("bytes:{}", type), std::to_string(counter.bytes)});
  }
  for (const auto& [name, value] : MergedCounters()) {
    rows.push_back({util::Format("counter:{}", name), std::to_string(value)});
  }
  for (const auto& [name, gauge] : registry_.gauges()) {
    rows.push_back({util::Format("gauge:{}", name),
                    util::Format("{:.6f}", gauge.Value())});
  }
  for (const auto& [name, histogram] : registry_.histograms()) {
    if (histogram.Count() == 0) continue;
    rows.push_back({util::Format("hist:{}:count", name),
                    std::to_string(histogram.Count())});
    rows.push_back({util::Format("hist:{}:p50", name),
                    util::Format("{:.4f}", histogram.P50())});
    rows.push_back({util::Format("hist:{}:p95", name),
                    util::Format("{:.4f}", histogram.P95())});
    rows.push_back({util::Format("hist:{}:p99", name),
                    util::Format("{:.4f}", histogram.P99())});
    rows.push_back({util::Format("hist:{}:max", name),
                    util::Format("{:.4f}", histogram.Max())});
  }
  return rows;
}

}  // namespace peertrack::sim
