#include "sim/simulator.hpp"

#include <algorithm>

namespace peertrack::sim {

EventHandle Simulator::ScheduleAt(Time time, util::UniqueFunction<void()> action) {
  return queue_.Push(std::max(time, now_), std::move(action));
}

EventHandle Simulator::ScheduleAfter(Time delay, util::UniqueFunction<void()> action) {
  return ScheduleAt(now_ + std::max(delay, 0.0), std::move(action));
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  auto entry = queue_.Pop();
  now_ = entry.time;
  ++processed_;
  entry.action();
  return true;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && Step()) ++count;
  return count;
}

std::uint64_t Simulator::RunUntil(Time until) {
  std::uint64_t count = 0;
  while (!queue_.Empty() && queue_.NextTime() <= until) {
    auto entry = queue_.Pop();
    now_ = entry.time;
    ++processed_;
    ++count;
    entry.action();
  }
  now_ = std::max(now_, until);
  return count;
}

}  // namespace peertrack::sim
