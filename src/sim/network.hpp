#pragma once
// Message-passing network between simulated actors.
//
// Actors register and receive opaque Message payloads after a sampled
// latency. Local (self) sends are delivered asynchronously at the current
// time but are *not* counted as network traffic, matching the paper's
// "messages transferred over the network" metric. Down actors drop inbound
// messages (churn experiments flip liveness).

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "sim/latency_model.hpp"
#include "sim/message_pool.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace peertrack::sim {

/// Accounted size of transport/framing per message, added to every
/// payload's ApproxBytes(). 40 ≈ IP+TCP headers; precise value is
/// irrelevant, only relative volumes matter.
constexpr std::size_t kMessageHeaderBytes = 40;

/// Dense per-process identifier of a concrete Message subclass. Ids are
/// handed out on first use (MsgTypeIdOf), so they stay small and index
/// directly into the rpc::Dispatcher handler table — O(1) dispatch with no
/// dynamic_cast chains.
using MsgTypeId = std::uint32_t;

namespace detail {
/// Next unused type id (atomic: bench sweeps instantiate simulators on a
/// thread pool and may race first-use registration).
MsgTypeId AllocateMsgTypeId() noexcept;
}  // namespace detail

/// The type id of message class T (stable for the process lifetime).
template <typename T>
MsgTypeId MsgTypeIdOf() noexcept {
  static const MsgTypeId id = detail::AllocateMsgTypeId();
  return id;
}

/// Base class of all wire messages. Subclasses live in the protocol
/// modules; they carry plain data members and report an approximate
/// serialized size so the byte metric is meaningful. Concrete types derive
/// from MessageBase (or rpc::RequestBase / rpc::ResponseBase), which
/// implements TypeId().
class Message {
 public:
  virtual ~Message() = default;
  virtual MsgTypeId TypeId() const noexcept = 0;
  virtual std::string_view TypeName() const noexcept = 0;
  virtual std::size_t ApproxBytes() const noexcept = 0;

  /// Messages are allocated and freed millions of times per sweep, almost
  /// always via make_unique at a send site; route them through the
  /// size-class freelist pool. The pool's header records the size class,
  /// so deleting through this base pointer needs no size. Compiled out
  /// (plain new/delete) under sanitizers — see message_pool.hpp.
  static void* operator new(std::size_t size) { return MessagePool::Allocate(size); }
  static void operator delete(void* ptr) noexcept { MessagePool::Deallocate(ptr); }

  /// Causal trace context this message belongs to (invalid when tracing is
  /// off or the message is outside any traced operation). Copied along by
  /// rpc retries and envelope forwarding; not counted in ApproxBytes —
  /// real deployments ship ~16 bytes of trace header, but charging it
  /// would skew the paper-comparison byte metric with an artifact of our
  /// instrumentation.
  obs::TraceContext trace;
};

/// CRTP helper wiring a concrete message class to its type id:
///   struct Hello final : sim::MessageBase<Hello> { ... };
template <typename Derived>
class MessageBase : public Message {
 public:
  MsgTypeId TypeId() const noexcept final { return MsgTypeIdOf<Derived>(); }
};

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void OnMessage(ActorId from, std::unique_ptr<Message> message) = 0;
};

class Network {
 public:
  /// The network borrows the simulator, latency model, and RNG; all must
  /// outlive it.
  Network(Simulator& simulator, LatencyModel& latency, util::Rng& rng);

  /// Register an actor (must outlive the network's last delivery to it).
  ActorId Register(Actor& actor);

  std::size_t ActorCount() const noexcept { return actors_.size(); }

  /// Queue a message for delivery. Self-sends are free (no latency, no
  /// metric); remote sends sample latency and are recorded. Messages to
  /// down actors are dropped at delivery time (the sender still pays the
  /// send).
  void Send(ActorId from, ActorId to, std::unique_ptr<Message> message);

  /// Deliver synchronously with zero latency but full cost accounting.
  /// Used by protocol steps the paper models as message exchanges but whose
  /// timing is irrelevant to the experiment (e.g. background index
  /// persistence); keeps event volume low in big sweeps.
  void SendInstant(ActorId from, ActorId to, std::unique_ptr<Message> message);

  void SetUp(ActorId id, bool up);
  bool IsUp(ActorId id) const;

  /// Independent per-message drop probability (failure injection). Lost
  /// messages are counted like messages to down actors. Clamped to [0, 1].
  void SetLossRate(double probability);
  double LossRate() const noexcept { return loss_rate_; }

  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  /// Span recorder for causal query tracing (disabled by default; enable
  /// with tracer().SetEnabled(true)). Remote sends are logged as per-actor
  /// message events while enabled.
  obs::Tracer& tracer() noexcept { return tracer_; }
  const obs::Tracer& tracer() const noexcept { return tracer_; }
  Simulator& simulator() noexcept { return simulator_; }
  util::Rng& rng() noexcept { return rng_; }

 private:
  struct Slot {
    Actor* actor = nullptr;
    bool up = true;
  };

  Simulator& simulator_;
  LatencyModel& latency_;
  util::Rng& rng_;
  Metrics metrics_;
  obs::Tracer tracer_;
  double loss_rate_ = 0.0;
  std::vector<Slot> actors_;
};

}  // namespace peertrack::sim
