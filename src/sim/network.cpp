#include "sim/network.hpp"

#include <algorithm>
#include <atomic>

#include "util/logging.hpp"

namespace peertrack::sim {

namespace detail {

MsgTypeId AllocateMsgTypeId() noexcept {
  static std::atomic<MsgTypeId> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

Network::Network(Simulator& simulator, LatencyModel& latency, util::Rng& rng)
    : simulator_(simulator), latency_(latency), rng_(rng) {}

ActorId Network::Register(Actor& actor) {
  actors_.push_back(Slot{&actor, true});
  return static_cast<ActorId>(actors_.size() - 1);
}

void Network::Send(ActorId from, ActorId to, std::unique_ptr<Message> message) {
  if (to >= actors_.size()) {
    util::LogWarn("Send to unknown actor {}", to);
    return;
  }
  double delay = 0.0;
  if (from != to) {
    delay = latency_.Sample(rng_);
    const std::size_t bytes = kMessageHeaderBytes + message->ApproxBytes();
    metrics_.RecordMessage(*message, bytes, from, to);
    if (tracer_.Enabled()) {
      tracer_.RecordMessage(simulator_.Now(), from, to, message->TypeName(), bytes,
                            message->trace);
    }
    if (loss_rate_ > 0.0 && rng_.NextBool(loss_rate_)) {
      metrics_.RecordDrop(*message, Metrics::DropReason::kLoss);
      return;  // Lost on the wire; the sender still paid for it.
    }
  }
  simulator_.ScheduleAfter(
      delay, [this, from, to, msg = std::move(message)]() mutable {
        Slot& slot = actors_[to];
        if (!slot.up || slot.actor == nullptr) {
          metrics_.RecordDrop(*msg, Metrics::DropReason::kDownActor);
          return;
        }
        slot.actor->OnMessage(from, std::move(msg));
      });
}

void Network::SendInstant(ActorId from, ActorId to, std::unique_ptr<Message> message) {
  if (to >= actors_.size()) {
    util::LogWarn("SendInstant to unknown actor {}", to);
    return;
  }
  if (from != to) {
    const std::size_t bytes = kMessageHeaderBytes + message->ApproxBytes();
    metrics_.RecordMessage(*message, bytes, from, to);
    if (tracer_.Enabled()) {
      tracer_.RecordMessage(simulator_.Now(), from, to, message->TypeName(), bytes,
                            message->trace);
    }
    // Instant sends still cross the wire: roll the same loss model as
    // Send(). (This used to be skipped, silently making every SendInstant
    // reliable under failure injection.)
    if (loss_rate_ > 0.0 && rng_.NextBool(loss_rate_)) {
      metrics_.RecordDrop(*message, Metrics::DropReason::kLoss);
      return;
    }
  }
  Slot& slot = actors_[to];
  if (!slot.up || slot.actor == nullptr) {
    metrics_.RecordDrop(*message, Metrics::DropReason::kDownActor);
    return;
  }
  slot.actor->OnMessage(from, std::move(message));
}

void Network::SetUp(ActorId id, bool up) {
  if (id < actors_.size()) actors_[id].up = up;
}

bool Network::IsUp(ActorId id) const {
  return id < actors_.size() && actors_[id].up;
}

void Network::SetLossRate(double probability) {
  loss_rate_ = std::clamp(probability, 0.0, 1.0);
}

}  // namespace peertrack::sim
