#pragma once
// Size-class freelist allocator for sim::Message payloads.
//
// Every wire message in a simulation is heap-allocated (make_unique at the
// send site, unique_ptr ownership through the network), which makes malloc
// the hottest function in big sweeps: the M1/M2/M3 index paths allocate and
// free millions of small, short-lived objects of a handful of sizes. The
// pool intercepts Message::operator new/delete and serves those objects
// from per-thread freelists backed by slab chunks, so steady-state message
// allocation is a pointer pop and free is a pointer push.
//
// Design:
//  * Allocations are rounded up to one of a few 64-byte-granular size
//    classes; each class has a thread-local freelist. A miss carves a new
//    slab (kSlabObjects objects) and pushes it onto the freelist. Objects
//    larger than the biggest class fall through to ::operator new.
//  * Every allocation is prefixed by a 16-byte header recording its size
//    class, so operator delete needs no size information and stays correct
//    for polymorphic deletes through the Message base pointer.
//  * Slab memory is owned by a process-global registry (freed at process
//    exit), never by the thread that carved it. Simulators are
//    single-threaded, but bench sweeps run many simulators on a thread
//    pool; global slab ownership makes a message freed on a different
//    thread than it was allocated on (or after the allocating thread
//    exited) safe — the pointer simply joins the freeing thread's list.
//  * Under AddressSanitizer the pool is compiled out (plain new/delete):
//    recycling memory through freelists would mask use-after-free and
//    leak diagnostics, which is exactly what the sanitizer legs exist to
//    catch. MessagePool::Enabled() reports which mode is live and
//    BENCH.json records it.
//
// Determinism: the pool affects only *where* objects live, never any value
// the simulation computes, so same-seed runs stay bit-identical (asserted
// by the determinism regression test).

#include <cstddef>
#include <cstdint>

namespace peertrack::sim {

/// Per-thread allocation counters (reset-able; read by bench/perf_smoke to
/// report allocation churn in BENCH.json).
struct MessagePoolStats {
  std::uint64_t served = 0;     ///< Pool allocations (fresh slab carves + reuses).
  std::uint64_t reused = 0;     ///< Subset of `served` satisfied from a freelist.
  std::uint64_t fallback = 0;   ///< Oversized allocations passed to ::operator new.
  std::uint64_t slab_bytes = 0; ///< Slab memory carved by this thread.

  /// Snapshot of the calling thread's counters.
  static MessagePoolStats Read() noexcept;
  /// Zero the calling thread's counters (bench warm-up barriers).
  static void ResetThread() noexcept;
};

class MessagePool {
 public:
  /// True when the freelist pool is compiled in (false under sanitizers).
  static bool Enabled() noexcept;

  /// Allocate `size` bytes suitably aligned for any Message subclass.
  static void* Allocate(std::size_t size);

  /// Return memory obtained from Allocate. Null is ignored.
  static void Deallocate(void* ptr) noexcept;
};

}  // namespace peertrack::sim
