#include "sim/latency_model.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include "util/format.hpp"
#include <vector>

namespace peertrack::sim {

std::string ConstantLatency::Describe() const {
  return util::Format("constant({} ms)", ms_);
}

double UniformLatency::Sample(util::Rng& rng) noexcept {
  return rng.NextDouble(lo_, hi_);
}

std::string UniformLatency::Describe() const {
  return util::Format("uniform([{}, {}] ms)", lo_, hi_);
}

double LogNormalLatency::Sample(util::Rng& rng) noexcept {
  const double z = rng.NextNormal();
  return std::max(floor_, median_ * std::exp(sigma_ * z));
}

std::string LogNormalLatency::Describe() const {
  return util::Format("lognormal(median={} ms, sigma={})", median_, sigma_);
}

std::unique_ptr<LatencyModel> MakeLatencyModel(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(':', start);
    if (end == std::string::npos) end = spec.size();
    parts.push_back(spec.substr(start, end - start));
    start = end + 1;
  }
  auto number = [&](std::size_t i, double fallback) {
    if (i >= parts.size()) return fallback;
    double out{};
    const auto& s = parts[i];
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return (ec == std::errc{} && ptr == s.data() + s.size()) ? out : fallback;
  };
  if (!parts.empty()) {
    if (parts[0] == "constant") {
      return std::make_unique<ConstantLatency>(number(1, 5.0));
    }
    if (parts[0] == "uniform") {
      return std::make_unique<UniformLatency>(number(1, 2.0), number(2, 10.0));
    }
    if (parts[0] == "lognormal") {
      return std::make_unique<LogNormalLatency>(number(1, 5.0), number(2, 0.5));
    }
  }
  return std::make_unique<ConstantLatency>(5.0);
}

}  // namespace peertrack::sim
