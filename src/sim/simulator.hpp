#pragma once
// Discrete-event simulator core.
//
// Single-threaded by design: one Simulator owns one logical timeline, and
// experiments that sweep parameters run many independent Simulators in
// parallel (see util::ThreadPool). Events are closures; higher layers
// (network delivery, protocol timers, workload arrivals) all reduce to
// ScheduleAt/ScheduleAfter.

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"

namespace peertrack::sim {

class Simulator {
 public:
  Time Now() const noexcept { return now_; }

  /// Schedule at absolute simulated time; times in the past are clamped to
  /// Now() (the event still runs, after currently-due events).
  EventHandle ScheduleAt(Time time, util::UniqueFunction<void()> action);

  /// Schedule `delay` milliseconds from Now(). Negative delays clamp to 0.
  EventHandle ScheduleAfter(Time delay, util::UniqueFunction<void()> action);

  /// Run one event. Returns false when the queue is empty.
  bool Step();

  /// Run until the queue drains or `max_events` have fired.
  /// Returns the number of events processed.
  std::uint64_t Run(std::uint64_t max_events =
                        std::numeric_limits<std::uint64_t>::max());

  /// Run events with time <= `until`. The clock ends at exactly `until` if
  /// the queue drained earlier. Returns events processed.
  std::uint64_t RunUntil(Time until);

  std::uint64_t ProcessedEvents() const noexcept { return processed_; }
  std::size_t PendingEvents() const noexcept { return queue_.PendingCount(); }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace peertrack::sim
