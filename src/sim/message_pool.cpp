#include "sim/message_pool.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

// Detect AddressSanitizer on both GCC (__SANITIZE_ADDRESS__) and Clang
// (__has_feature). The pool is disabled under ASan so use-after-free and
// leak detection keep working on message payloads.
#if defined(__SANITIZE_ADDRESS__)
#define PEERTRACK_MESSAGE_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PEERTRACK_MESSAGE_POOL_DISABLED 1
#endif
#endif

namespace peertrack::sim {

namespace {

/// Size classes are multiples of kClassGranularity; anything above
/// kMaxPooledSize goes straight to ::operator new. Typical messages
/// (arrival reports, probes, rpc envelopes) are 64-320 bytes, batched
/// updates with inline vectors sit at the small end too (their element
/// storage is the vector's own heap allocation).
constexpr std::size_t kClassGranularity = 64;
constexpr std::size_t kClassCount = 8;  // 64, 128, ..., 512 bytes.
constexpr std::size_t kMaxPooledSize = kClassGranularity * kClassCount;
/// Objects carved per slab; big enough to amortize the global-registry
/// mutex to noise (one lock per kSlabObjects allocations, worst case).
constexpr std::size_t kSlabObjects = 256;
/// Header prefixed to every allocation: size class, or kUnpooledClass for
/// fall-through allocations. 16 bytes keeps max_align_t alignment for the
/// payload that follows.
constexpr std::size_t kHeaderSize = alignof(std::max_align_t);
constexpr std::uint64_t kUnpooledClass = ~0ULL;

static_assert(kHeaderSize >= sizeof(std::uint64_t));

thread_local MessagePoolStats tls_stats;

#if !defined(PEERTRACK_MESSAGE_POOL_DISABLED)

/// Process-global slab ownership (see header). Append-only under a mutex;
/// taken once per slab carve, not per allocation.
std::vector<std::unique_ptr<std::byte[]>>& SlabRegistry(std::mutex*& mutex_out) {
  static std::mutex mutex;
  static std::vector<std::unique_ptr<std::byte[]>> slabs;
  mutex_out = &mutex;
  return slabs;
}

struct FreeNode {
  FreeNode* next;
};

struct ThreadCache {
  FreeNode* freelists[kClassCount] = {};
};

thread_local ThreadCache tls_cache;

std::size_t ClassIndexFor(std::size_t payload_size) noexcept {
  return (payload_size + kClassGranularity - 1) / kClassGranularity - 1;
}

std::size_t ClassBlockSize(std::size_t class_index) noexcept {
  return kHeaderSize + (class_index + 1) * kClassGranularity;
}

/// Carve one slab for `class_index` and thread its blocks onto the calling
/// thread's freelist.
void CarveSlab(std::size_t class_index) {
  const std::size_t block = ClassBlockSize(class_index);
  const std::size_t bytes = block * kSlabObjects;
  auto slab = std::make_unique<std::byte[]>(bytes);
  std::byte* base = slab.get();
  {
    std::mutex* mutex = nullptr;
    auto& registry = SlabRegistry(mutex);
    const std::lock_guard<std::mutex> lock(*mutex);
    registry.push_back(std::move(slab));
  }
  FreeNode*& head = tls_cache.freelists[class_index];
  for (std::size_t i = 0; i < kSlabObjects; ++i) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * block);
    node->next = head;
    head = node;
  }
  tls_stats.slab_bytes += bytes;
}

#endif  // !PEERTRACK_MESSAGE_POOL_DISABLED

void* UnpooledAllocate(std::size_t size) {
  auto* raw = static_cast<std::byte*>(::operator new(kHeaderSize + size));
  *reinterpret_cast<std::uint64_t*>(raw) = kUnpooledClass;
  ++tls_stats.fallback;
  return raw + kHeaderSize;
}

}  // namespace

MessagePoolStats MessagePoolStats::Read() noexcept { return tls_stats; }

void MessagePoolStats::ResetThread() noexcept { tls_stats = MessagePoolStats{}; }

bool MessagePool::Enabled() noexcept {
#if defined(PEERTRACK_MESSAGE_POOL_DISABLED)
  return false;
#else
  return true;
#endif
}

void* MessagePool::Allocate(std::size_t size) {
#if defined(PEERTRACK_MESSAGE_POOL_DISABLED)
  return UnpooledAllocate(size);
#else
  if (size == 0) size = 1;
  if (size > kMaxPooledSize) return UnpooledAllocate(size);
  const std::size_t class_index = ClassIndexFor(size);
  FreeNode*& head = tls_cache.freelists[class_index];
  if (head != nullptr) {
    ++tls_stats.reused;
  } else {
    CarveSlab(class_index);
  }
  FreeNode* node = head;
  head = node->next;
  ++tls_stats.served;
  auto* raw = reinterpret_cast<std::byte*>(node);
  *reinterpret_cast<std::uint64_t*>(raw) = class_index;
  return raw + kHeaderSize;
#endif
}

void MessagePool::Deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  auto* raw = static_cast<std::byte*>(ptr) - kHeaderSize;
  const std::uint64_t class_index = *reinterpret_cast<std::uint64_t*>(raw);
  if (class_index == kUnpooledClass) {
    ::operator delete(raw);
    return;
  }
#if defined(PEERTRACK_MESSAGE_POOL_DISABLED)
  // Pooled headers cannot appear when the pool is compiled out.
  std::abort();
#else
  auto* node = reinterpret_cast<FreeNode*>(raw);
  node->next = tls_cache.freelists[class_index];
  tls_cache.freelists[class_index] = node;
#endif
}

}  // namespace peertrack::sim
