#pragma once
// Network latency models.
//
// The paper charges a flat 5 ms ("typical network latency of T1") per
// network query; ConstantLatency(5.0) reproduces that. Uniform and
// LogNormal models are provided for sensitivity studies (real WANs are
// heavy-tailed).

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace peertrack::sim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay in milliseconds for the next message.
  virtual double Sample(util::Rng& rng) noexcept = 0;

  /// Human-readable description for experiment logs.
  virtual std::string Describe() const = 0;
};

/// Every message takes exactly `ms`.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(double ms) noexcept : ms_(ms) {}
  double Sample(util::Rng&) noexcept override { return ms_; }
  std::string Describe() const override;

 private:
  double ms_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(double lo_ms, double hi_ms) noexcept : lo_(lo_ms), hi_(hi_ms) {}
  double Sample(util::Rng& rng) noexcept override;
  std::string Describe() const override;

 private:
  double lo_;
  double hi_;
};

/// Log-normal with the given median and sigma (of the underlying normal),
/// clamped below at `floor_ms`. Approximates heavy-tailed WAN latency.
class LogNormalLatency final : public LatencyModel {
 public:
  LogNormalLatency(double median_ms, double sigma, double floor_ms = 0.1) noexcept
      : median_(median_ms), sigma_(sigma), floor_(floor_ms) {}
  double Sample(util::Rng& rng) noexcept override;
  std::string Describe() const override;

 private:
  double median_;
  double sigma_;
  double floor_;
};

/// Factory from a config string: "constant:5", "uniform:2:10",
/// "lognormal:5:0.5". Unknown specs fall back to constant 5 ms.
std::unique_ptr<LatencyModel> MakeLatencyModel(const std::string& spec);

}  // namespace peertrack::sim
