#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace peertrack::sim {

namespace {
/// 4-ary layout: children of i are 4i+1..4i+4. A wider fanout halves tree
/// depth versus binary, and with 24-byte POD nodes the four children share
/// at most two cache lines, so the extra comparisons per level are cheaper
/// than the extra levels they remove.
constexpr std::size_t kArity = 4;
}  // namespace

EventHandle EventQueue::Push(Time time, util::UniqueFunction<void()> action) {
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.action = std::move(action);
  heap_.push_back(HeapNode{time, next_seq_++, slot, s.generation});
  SiftUp(heap_.size() - 1);
  ++live_;
  return EventHandle(this, slot, s.generation);
}

void EventQueue::CancelSlot(std::uint32_t slot, std::uint32_t generation) noexcept {
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return;  // Already fired or already cancelled.
  }
  // Move the action out before releasing the slot: its destructor may
  // re-enter the queue (captured handles cancelling other events), so run
  // it only after our bookkeeping is consistent.
  auto discard = std::move(slots_[slot].action);
  ReleaseSlot(slot);
  --live_;
  // The heap record goes stale (generation mismatch) and is dropped when it
  // reaches the top.
}

Time EventQueue::NextTime() {
  assert(!Empty() && "EventQueue::NextTime on empty queue");
  DropStaleTop();
  return heap_.front().time;
}

EventQueue::Entry EventQueue::Pop() {
  assert(!Empty() && "EventQueue::Pop on empty queue");
  DropStaleTop();
  const HeapNode top = heap_.front();
  Entry entry{top.time, std::move(slots_[top.slot].action)};
  // Release before running anything: bumping the generation here makes a
  // Cancel() issued by the action itself (e.g. a flush cancelling its own
  // timer) a clean mismatch no-op.
  ReleaseSlot(top.slot);
  --live_;
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return entry;
}

std::uint32_t EventQueue::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(std::uint32_t slot) noexcept {
  ++slots_[slot].generation;
  free_slots_.push_back(slot);
}

void EventQueue::DropStaleTop() noexcept {
  while (!heap_.empty()) {
    const HeapNode& top = heap_.front();
    if (slots_[top.slot].generation == top.generation) return;
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }
}

void EventQueue::SiftUp(std::size_t index) noexcept {
  const HeapNode node = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!Earlier(node, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = node;
}

void EventQueue::SiftDown(std::size_t index) noexcept {
  const HeapNode node = heap_[index];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + kArity, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) best = c;
    }
    if (!Earlier(heap_[best], node)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = node;
}

}  // namespace peertrack::sim
