#include "sim/event_queue.hpp"

namespace peertrack::sim {

EventHandle EventQueue::Push(Time time, util::UniqueFunction<void()> action) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Node{time, next_seq_++, std::move(action), flag});
  return EventHandle(flag);
}

void EventQueue::DropCancelled() {
  while (!heap_.empty() && *heap_.top().cancelled) {
    // priority_queue::top() is const; const_cast is the standard idiom for
    // moving out of a heap of move-only payloads we are about to pop.
    auto& node = const_cast<Node&>(heap_.top());
    auto discard = std::move(node.action);
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  DropCancelled();
  return heap_.empty();
}

Time EventQueue::NextTime() {
  DropCancelled();
  return heap_.top().time;
}

EventQueue::Entry EventQueue::Pop() {
  DropCancelled();
  auto& node = const_cast<Node&>(heap_.top());
  Entry entry{node.time, std::move(node.action)};
  heap_.pop();
  return entry;
}

}  // namespace peertrack::sim
