#pragma once
// Message and cost accounting for simulations.
//
// The paper's headline metric is "indexing cost, measured by the total
// volume of messages transferred over the network" (Section V-A); queries
// are measured in simulated milliseconds. Metrics centralizes both: the
// network layer records every remote message (count + bytes, per type and
// per actor), and protocol layers record hop counts, named counters, and
// latency samples through the same object, so every bench reads cost
// identically.
//
// Hot-path layout: per-type message accounting (counts, bytes, drops, rpc
// retries/timeouts) is keyed by the dense sim::MsgTypeId and lives in a
// flat array of slots — recording a message is an index plus a few adds,
// with no string hashing or map walk per event. The type *name* is
// interned into the slot on first sight and only touched again when
// rendering. String-keyed overloads remain for synthetic charge types
// (e.g. DataTriangle's modeled rpc exchanges) that have no Message class.
//
// Named counters and latency distributions live in an obs::Registry of
// typed instruments (Counter / Gauge / log-bucketed Histogram with
// p50/p95/p99). Instruments never move once created, so protocol hot loops
// cache `obs::Counter&` references instead of re-resolving names; Reset()
// zeroes values in place precisely so those cached references survive the
// warm-up/measure boundary. Summary() and CsvRows() render the same
// surface as before on top of both stores.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "util/stats.hpp"

namespace peertrack::sim {

class Message;

using ActorId = std::uint32_t;
constexpr ActorId kInvalidActor = 0xFFFFFFFFu;

class Metrics {
 public:
  struct TypeCounter {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  /// Why a message never reached its destination's OnMessage.
  enum class DropReason {
    kLoss,       ///< Lost on the wire (Network::SetLossRate injection).
    kDownActor,  ///< Destination was down at delivery time.
  };

  /// Record a remote message and its total wire size. The fast path: type
  /// accounting is a dense-id array index.
  void RecordMessage(const Message& message, std::size_t bytes, ActorId from,
                     ActorId to);

  /// Record a remote message by type name — for synthetic charge types
  /// without a Message class (cost modeling). Map-keyed; keep off per-event
  /// hot paths.
  void RecordMessage(std::string_view type, std::size_t bytes, ActorId from,
                     ActorId to);

  /// Record a dropped message, attributed to its cause.
  void RecordDrop(const Message& message, DropReason reason);
  void RecordDrop(std::string_view type, DropReason reason);

  /// Record one RPC attempt re-sent after an unanswered deadline.
  void RecordRpcRetry(const Message& request);
  void RecordRpcRetry(std::string_view type);

  /// Record one RPC that exhausted its attempts and failed to its caller.
  void RecordRpcTimeout(const Message& request);
  void RecordRpcTimeout(std::string_view type);

  /// Record the hop count of one completed DHT lookup.
  void RecordLookupHops(std::size_t hops);

  /// Record a latency sample (simulated ms) into the histogram named
  /// `latency:<name>` — e.g. RecordLatency("query.trace_ms", 37.0).
  void RecordLatency(std::string_view name, double ms);

  /// Bump a named counter (protocol-level events that are not messages,
  /// e.g. "window_flush", "triangle_split"). Per-event hot paths should
  /// instead cache `registry().GetCounter(name)` once — see class comment.
  void Bump(std::string_view counter, std::uint64_t by = 1);

  std::uint64_t TotalMessages() const noexcept { return total_messages_; }
  std::uint64_t TotalBytes() const noexcept { return total_bytes_; }
  /// All drops regardless of cause.
  std::uint64_t DroppedMessages() const noexcept {
    return dropped_loss_ + dropped_down_;
  }
  std::uint64_t DroppedByLoss() const noexcept { return dropped_loss_; }
  std::uint64_t DroppedToDownActor() const noexcept { return dropped_down_; }
  std::uint64_t RpcRetries() const noexcept { return rpc_retries_; }
  std::uint64_t RpcTimeouts() const noexcept { return rpc_timeouts_; }

  /// Count/bytes for one message type (zeroes when never seen).
  TypeCounter ForType(std::string_view type) const;

  /// All message types seen (dense-id slots merged with synthetic string
  /// types), sorted by name.
  std::map<std::string, TypeCounter, std::less<>> ByType() const;

  /// Named counter value. Understands the per-type accounting names
  /// ("rpc.retry:<type>", "rpc.timeout:<type>", "drop.loss:<type>",
  /// "drop.down:<type>") in addition to registry counters, so callers keep
  /// one query surface even though per-type counts live in dense slots.
  std::uint64_t Counter(std::string_view name) const;

  /// The instrument registry backing named counters and latency
  /// histograms. Protocol layers and benches may register their own
  /// instruments here; the time-series sampler snapshots all of them.
  obs::Registry& registry() noexcept { return registry_; }
  const obs::Registry& registry() const noexcept { return registry_; }

  /// Latency histogram named `latency:<name>` (created on first use; same
  /// instrument RecordLatency feeds).
  obs::Histogram& LatencyHistogram(std::string_view name);

  const util::RunningStats& LookupHops() const noexcept { return lookup_hops_; }

  /// Messages received per actor (index = ActorId); shorter than the actor
  /// count if high ids never received traffic.
  const std::vector<std::uint64_t>& ReceivedPerActor() const noexcept {
    return received_per_actor_;
  }
  const std::vector<std::uint64_t>& SentPerActor() const noexcept {
    return sent_per_actor_;
  }
  /// Wire bytes received / sent per actor (same indexing). Byte-level load
  /// is what the paper's Fig. 8 balance argument is really about: one
  /// GroupArrival message can carry 1 or 1000 objects.
  const std::vector<std::uint64_t>& ReceivedBytesPerActor() const noexcept {
    return received_bytes_per_actor_;
  }
  const std::vector<std::uint64_t>& SentBytesPerActor() const noexcept {
    return sent_bytes_per_actor_;
  }

  /// Zero everything (used between warm-up and measured phases). In-place:
  /// instrument identities — and therefore references cached from
  /// registry() — remain valid; only values reset.
  void Reset();

  /// Multi-line human-readable dump.
  std::string Summary() const;

  /// The same data as rows for util::CsvWriter: a header row followed by
  /// one ("metric", "value") row per total, per-type counter, named
  /// counter, gauge, and histogram statistic. Benches append these to
  /// their sweep CSVs.
  std::vector<std::vector<std::string>> CsvRows() const;

 private:
  /// Per-message-type accounting, indexed by MsgTypeId. `name` is interned
  /// on the slot's first use; a default-constructed slot (empty name) is a
  /// type id this metrics instance never saw.
  struct TypeSlot {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drop_loss = 0;
    std::uint64_t drop_down = 0;
    std::uint64_t rpc_retry = 0;
    std::uint64_t rpc_timeout = 0;
    std::string name;
  };

  static void BumpPerActor(std::vector<std::uint64_t>& v, ActorId id,
                           std::uint64_t by);

  TypeSlot& SlotFor(const Message& message);
  const TypeSlot* FindSlot(std::string_view name) const noexcept;
  /// Registry counters merged with the per-type drop/rpc slot counts,
  /// rendered under the legacy "drop.loss:<type>"-style names.
  std::map<std::string, std::uint64_t, std::less<>> MergedCounters() const;

  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::vector<TypeSlot> slots_;
  std::map<std::string, TypeCounter, std::less<>> extra_types_;
  obs::Registry registry_;
  obs::Histogram* lookup_hops_hist_ = nullptr;
  util::RunningStats lookup_hops_;
  std::vector<std::uint64_t> received_per_actor_;
  std::vector<std::uint64_t> sent_per_actor_;
  std::vector<std::uint64_t> received_bytes_per_actor_;
  std::vector<std::uint64_t> sent_bytes_per_actor_;
};

}  // namespace peertrack::sim
