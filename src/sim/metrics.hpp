#pragma once
// Message and cost accounting for simulations.
//
// The paper's headline metric is "indexing cost, measured by the total
// volume of messages transferred over the network" (Section V-A); queries
// are measured in simulated milliseconds. Metrics centralizes both: the
// network layer records every remote message (count + bytes, per type and
// per actor), and protocol layers record hop counts, named counters, and
// latency samples through the same object, so every bench reads cost
// identically.
//
// Named counters and latency distributions live in an obs::Registry of
// typed instruments (Counter / Gauge / log-bucketed Histogram with
// p50/p95/p99), replacing the ad-hoc string->uint64 map this class used to
// keep. Summary() and CsvRows() render the same surface as before on top
// of the registry, and obs::TimeSeriesSampler can snapshot the whole
// registry into time-series rows during a run.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "util/stats.hpp"

namespace peertrack::sim {

using ActorId = std::uint32_t;
constexpr ActorId kInvalidActor = 0xFFFFFFFFu;

class Metrics {
 public:
  struct TypeCounter {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  /// Why a message never reached its destination's OnMessage.
  enum class DropReason {
    kLoss,       ///< Lost on the wire (Network::SetLossRate injection).
    kDownActor,  ///< Destination was down at delivery time.
  };

  /// Record a remote message of `type` and total wire size `bytes`.
  void RecordMessage(std::string_view type, std::size_t bytes, ActorId from,
                     ActorId to);

  /// Record a dropped message, attributed to its cause.
  void RecordDrop(std::string_view type, DropReason reason);

  /// Record one RPC attempt re-sent after an unanswered deadline.
  void RecordRpcRetry(std::string_view type);

  /// Record one RPC that exhausted its attempts and failed to its caller.
  void RecordRpcTimeout(std::string_view type);

  /// Record the hop count of one completed DHT lookup.
  void RecordLookupHops(std::size_t hops);

  /// Record a latency sample (simulated ms) into the histogram named
  /// `latency:<name>` — e.g. RecordLatency("query.trace_ms", 37.0).
  void RecordLatency(std::string_view name, double ms);

  /// Bump a named counter (protocol-level events that are not messages,
  /// e.g. "window_flush", "triangle_split").
  void Bump(std::string_view counter, std::uint64_t by = 1);

  std::uint64_t TotalMessages() const noexcept { return total_messages_; }
  std::uint64_t TotalBytes() const noexcept { return total_bytes_; }
  /// All drops regardless of cause.
  std::uint64_t DroppedMessages() const noexcept {
    return dropped_loss_ + dropped_down_;
  }
  std::uint64_t DroppedByLoss() const noexcept { return dropped_loss_; }
  std::uint64_t DroppedToDownActor() const noexcept { return dropped_down_; }
  std::uint64_t RpcRetries() const noexcept { return rpc_retries_; }
  std::uint64_t RpcTimeouts() const noexcept { return rpc_timeouts_; }

  /// Count/bytes for one message type (zeroes when never seen).
  TypeCounter ForType(std::string_view type) const;

  /// All message types seen, sorted by name.
  const std::map<std::string, TypeCounter, std::less<>>& ByType() const noexcept {
    return by_type_;
  }

  std::uint64_t Counter(std::string_view name) const;

  /// The instrument registry backing named counters and latency
  /// histograms. Protocol layers and benches may register their own
  /// instruments here; the time-series sampler snapshots all of them.
  obs::Registry& registry() noexcept { return registry_; }
  const obs::Registry& registry() const noexcept { return registry_; }

  /// Latency histogram named `latency:<name>` (created on first use; same
  /// instrument RecordLatency feeds).
  obs::Histogram& LatencyHistogram(std::string_view name);

  const util::RunningStats& LookupHops() const noexcept { return lookup_hops_; }

  /// Messages received per actor (index = ActorId); shorter than the actor
  /// count if high ids never received traffic.
  const std::vector<std::uint64_t>& ReceivedPerActor() const noexcept {
    return received_per_actor_;
  }
  const std::vector<std::uint64_t>& SentPerActor() const noexcept {
    return sent_per_actor_;
  }
  /// Wire bytes received / sent per actor (same indexing). Byte-level load
  /// is what the paper's Fig. 8 balance argument is really about: one
  /// GroupArrival message can carry 1 or 1000 objects.
  const std::vector<std::uint64_t>& ReceivedBytesPerActor() const noexcept {
    return received_bytes_per_actor_;
  }
  const std::vector<std::uint64_t>& SentBytesPerActor() const noexcept {
    return sent_bytes_per_actor_;
  }

  /// Zero everything (used between warm-up and measured phases).
  void Reset();

  /// Multi-line human-readable dump.
  std::string Summary() const;

  /// The same data as rows for util::CsvWriter: a header row followed by
  /// one ("metric", "value") row per total, per-type counter, named
  /// counter, gauge, and histogram statistic. Benches append these to
  /// their sweep CSVs.
  std::vector<std::vector<std::string>> CsvRows() const;

 private:
  static void BumpPerActor(std::vector<std::uint64_t>& v, ActorId id,
                           std::uint64_t by);

  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::map<std::string, TypeCounter, std::less<>> by_type_;
  obs::Registry registry_;
  util::RunningStats lookup_hops_;
  std::vector<std::uint64_t> received_per_actor_;
  std::vector<std::uint64_t> sent_per_actor_;
  std::vector<std::uint64_t> received_bytes_per_actor_;
  std::vector<std::uint64_t> sent_bytes_per_actor_;
};

}  // namespace peertrack::sim
