# Empty dependencies file for fig6a_indexing_data_volume.
# This may be replaced when dependencies are built.
