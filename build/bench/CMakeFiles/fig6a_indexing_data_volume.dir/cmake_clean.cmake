file(REMOVE_RECURSE
  "CMakeFiles/fig6a_indexing_data_volume.dir/fig6a_indexing_data_volume.cpp.o"
  "CMakeFiles/fig6a_indexing_data_volume.dir/fig6a_indexing_data_volume.cpp.o.d"
  "fig6a_indexing_data_volume"
  "fig6a_indexing_data_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_indexing_data_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
