# Empty dependencies file for fig8a_load_balance.
# This may be replaced when dependencies are built.
