file(REMOVE_RECURSE
  "CMakeFiles/fig8a_load_balance.dir/fig8a_load_balance.cpp.o"
  "CMakeFiles/fig8a_load_balance.dir/fig8a_load_balance.cpp.o.d"
  "fig8a_load_balance"
  "fig8a_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
