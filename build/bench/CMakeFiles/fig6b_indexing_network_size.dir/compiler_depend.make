# Empty compiler generated dependencies file for fig6b_indexing_network_size.
# This may be replaced when dependencies are built.
