file(REMOVE_RECURSE
  "CMakeFiles/fig6b_indexing_network_size.dir/fig6b_indexing_network_size.cpp.o"
  "CMakeFiles/fig6b_indexing_network_size.dir/fig6b_indexing_network_size.cpp.o.d"
  "fig6b_indexing_network_size"
  "fig6b_indexing_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_indexing_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
