# Empty dependencies file for ablation_triangle.
# This may be replaced when dependencies are built.
