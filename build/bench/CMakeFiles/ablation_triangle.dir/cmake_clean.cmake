file(REMOVE_RECURSE
  "CMakeFiles/ablation_triangle.dir/ablation_triangle.cpp.o"
  "CMakeFiles/ablation_triangle.dir/ablation_triangle.cpp.o.d"
  "ablation_triangle"
  "ablation_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
