file(REMOVE_RECURSE
  "CMakeFiles/fig8b_prefix_indexing_cost.dir/fig8b_prefix_indexing_cost.cpp.o"
  "CMakeFiles/fig8b_prefix_indexing_cost.dir/fig8b_prefix_indexing_cost.cpp.o.d"
  "fig8b_prefix_indexing_cost"
  "fig8b_prefix_indexing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_prefix_indexing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
