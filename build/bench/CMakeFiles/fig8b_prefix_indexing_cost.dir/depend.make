# Empty dependencies file for fig8b_prefix_indexing_cost.
# This may be replaced when dependencies are built.
