# Empty dependencies file for fig7a_query_network_size.
# This may be replaced when dependencies are built.
