file(REMOVE_RECURSE
  "CMakeFiles/fig7a_query_network_size.dir/fig7a_query_network_size.cpp.o"
  "CMakeFiles/fig7a_query_network_size.dir/fig7a_query_network_size.cpp.o.d"
  "fig7a_query_network_size"
  "fig7a_query_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_query_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
