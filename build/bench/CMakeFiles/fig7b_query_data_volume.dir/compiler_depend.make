# Empty compiler generated dependencies file for fig7b_query_data_volume.
# This may be replaced when dependencies are built.
