file(REMOVE_RECURSE
  "CMakeFiles/fig7b_query_data_volume.dir/fig7b_query_data_volume.cpp.o"
  "CMakeFiles/fig7b_query_data_volume.dir/fig7b_query_data_volume.cpp.o.d"
  "fig7b_query_data_volume"
  "fig7b_query_data_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_query_data_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
