# Empty dependencies file for network_churn.
# This may be replaced when dependencies are built.
