file(REMOVE_RECURSE
  "CMakeFiles/counterfeit_detection.dir/counterfeit_detection.cpp.o"
  "CMakeFiles/counterfeit_detection.dir/counterfeit_detection.cpp.o.d"
  "counterfeit_detection"
  "counterfeit_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterfeit_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
