# Empty dependencies file for counterfeit_detection.
# This may be replaced when dependencies are built.
