
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/central/bptree.cpp" "src/CMakeFiles/peertrack.dir/central/bptree.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/central/bptree.cpp.o.d"
  "/root/repo/src/central/central_tracker.cpp" "src/CMakeFiles/peertrack.dir/central/central_tracker.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/central/central_tracker.cpp.o.d"
  "/root/repo/src/central/cost_model.cpp" "src/CMakeFiles/peertrack.dir/central/cost_model.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/central/cost_model.cpp.o.d"
  "/root/repo/src/central/event_store.cpp" "src/CMakeFiles/peertrack.dir/central/event_store.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/central/event_store.cpp.o.d"
  "/root/repo/src/central/page_store.cpp" "src/CMakeFiles/peertrack.dir/central/page_store.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/central/page_store.cpp.o.d"
  "/root/repo/src/chord/chord_node.cpp" "src/CMakeFiles/peertrack.dir/chord/chord_node.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/chord/chord_node.cpp.o.d"
  "/root/repo/src/chord/chord_ring.cpp" "src/CMakeFiles/peertrack.dir/chord/chord_ring.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/chord/chord_ring.cpp.o.d"
  "/root/repo/src/chord/dht.cpp" "src/CMakeFiles/peertrack.dir/chord/dht.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/chord/dht.cpp.o.d"
  "/root/repo/src/chord/finger_table.cpp" "src/CMakeFiles/peertrack.dir/chord/finger_table.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/chord/finger_table.cpp.o.d"
  "/root/repo/src/chord/lookup.cpp" "src/CMakeFiles/peertrack.dir/chord/lookup.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/chord/lookup.cpp.o.d"
  "/root/repo/src/chord/successor_list.cpp" "src/CMakeFiles/peertrack.dir/chord/successor_list.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/chord/successor_list.cpp.o.d"
  "/root/repo/src/estimate/gossip.cpp" "src/CMakeFiles/peertrack.dir/estimate/gossip.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/estimate/gossip.cpp.o.d"
  "/root/repo/src/hash/keyspace.cpp" "src/CMakeFiles/peertrack.dir/hash/keyspace.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/hash/keyspace.cpp.o.d"
  "/root/repo/src/hash/sha1.cpp" "src/CMakeFiles/peertrack.dir/hash/sha1.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/hash/sha1.cpp.o.d"
  "/root/repo/src/hash/uint160.cpp" "src/CMakeFiles/peertrack.dir/hash/uint160.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/hash/uint160.cpp.o.d"
  "/root/repo/src/moods/iop.cpp" "src/CMakeFiles/peertrack.dir/moods/iop.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/moods/iop.cpp.o.d"
  "/root/repo/src/moods/object.cpp" "src/CMakeFiles/peertrack.dir/moods/object.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/moods/object.cpp.o.d"
  "/root/repo/src/moods/oracle.cpp" "src/CMakeFiles/peertrack.dir/moods/oracle.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/moods/oracle.cpp.o.d"
  "/root/repo/src/moods/receptor.cpp" "src/CMakeFiles/peertrack.dir/moods/receptor.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/moods/receptor.cpp.o.d"
  "/root/repo/src/moods/snapshot.cpp" "src/CMakeFiles/peertrack.dir/moods/snapshot.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/moods/snapshot.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/peertrack.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/latency_model.cpp" "src/CMakeFiles/peertrack.dir/sim/latency_model.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/sim/latency_model.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/peertrack.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/peertrack.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/peertrack.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/tracking/audit.cpp" "src/CMakeFiles/peertrack.dir/tracking/audit.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/audit.cpp.o.d"
  "/root/repo/src/tracking/data_triangle.cpp" "src/CMakeFiles/peertrack.dir/tracking/data_triangle.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/data_triangle.cpp.o.d"
  "/root/repo/src/tracking/flooding.cpp" "src/CMakeFiles/peertrack.dir/tracking/flooding.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/flooding.cpp.o.d"
  "/root/repo/src/tracking/gateway_index.cpp" "src/CMakeFiles/peertrack.dir/tracking/gateway_index.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/gateway_index.cpp.o.d"
  "/root/repo/src/tracking/grouping.cpp" "src/CMakeFiles/peertrack.dir/tracking/grouping.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/grouping.cpp.o.d"
  "/root/repo/src/tracking/prediction.cpp" "src/CMakeFiles/peertrack.dir/tracking/prediction.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/prediction.cpp.o.d"
  "/root/repo/src/tracking/prefix_scheme.cpp" "src/CMakeFiles/peertrack.dir/tracking/prefix_scheme.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/prefix_scheme.cpp.o.d"
  "/root/repo/src/tracking/query.cpp" "src/CMakeFiles/peertrack.dir/tracking/query.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/query.cpp.o.d"
  "/root/repo/src/tracking/tracker_node.cpp" "src/CMakeFiles/peertrack.dir/tracking/tracker_node.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/tracker_node.cpp.o.d"
  "/root/repo/src/tracking/tracking_system.cpp" "src/CMakeFiles/peertrack.dir/tracking/tracking_system.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/tracking/tracking_system.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/peertrack.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/config.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/peertrack.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/peertrack.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/format.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/peertrack.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/peertrack.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/peertrack.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/peertrack.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/peertrack.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/CMakeFiles/peertrack.dir/workload/arrivals.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/workload/arrivals.cpp.o.d"
  "/root/repo/src/workload/epc.cpp" "src/CMakeFiles/peertrack.dir/workload/epc.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/workload/epc.cpp.o.d"
  "/root/repo/src/workload/movement.cpp" "src/CMakeFiles/peertrack.dir/workload/movement.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/workload/movement.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/CMakeFiles/peertrack.dir/workload/scenario.cpp.o" "gcc" "src/CMakeFiles/peertrack.dir/workload/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
