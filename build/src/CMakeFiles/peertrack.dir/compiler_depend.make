# Empty compiler generated dependencies file for peertrack.
# This may be replaced when dependencies are built.
