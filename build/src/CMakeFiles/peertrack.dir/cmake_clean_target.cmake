file(REMOVE_RECURSE
  "libpeertrack.a"
)
