# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/chord_test[1]_include.cmake")
include("/root/repo/build/tests/moods_test[1]_include.cmake")
include("/root/repo/build/tests/tracking_test[1]_include.cmake")
include("/root/repo/build/tests/central_test[1]_include.cmake")
include("/root/repo/build/tests/estimate_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
