
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chord_churn_test.cpp" "tests/CMakeFiles/chord_test.dir/chord_churn_test.cpp.o" "gcc" "tests/CMakeFiles/chord_test.dir/chord_churn_test.cpp.o.d"
  "/root/repo/tests/chord_dht_test.cpp" "tests/CMakeFiles/chord_test.dir/chord_dht_test.cpp.o" "gcc" "tests/CMakeFiles/chord_test.dir/chord_dht_test.cpp.o.d"
  "/root/repo/tests/chord_interval_test.cpp" "tests/CMakeFiles/chord_test.dir/chord_interval_test.cpp.o" "gcc" "tests/CMakeFiles/chord_test.dir/chord_interval_test.cpp.o.d"
  "/root/repo/tests/chord_lookup_test.cpp" "tests/CMakeFiles/chord_test.dir/chord_lookup_test.cpp.o" "gcc" "tests/CMakeFiles/chord_test.dir/chord_lookup_test.cpp.o.d"
  "/root/repo/tests/chord_ring_test.cpp" "tests/CMakeFiles/chord_test.dir/chord_ring_test.cpp.o" "gcc" "tests/CMakeFiles/chord_test.dir/chord_ring_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/peertrack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
