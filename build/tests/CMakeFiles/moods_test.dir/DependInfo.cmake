
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/moods_inventory_test.cpp" "tests/CMakeFiles/moods_test.dir/moods_inventory_test.cpp.o" "gcc" "tests/CMakeFiles/moods_test.dir/moods_inventory_test.cpp.o.d"
  "/root/repo/tests/moods_iop_test.cpp" "tests/CMakeFiles/moods_test.dir/moods_iop_test.cpp.o" "gcc" "tests/CMakeFiles/moods_test.dir/moods_iop_test.cpp.o.d"
  "/root/repo/tests/moods_oracle_test.cpp" "tests/CMakeFiles/moods_test.dir/moods_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/moods_test.dir/moods_oracle_test.cpp.o.d"
  "/root/repo/tests/moods_receptor_test.cpp" "tests/CMakeFiles/moods_test.dir/moods_receptor_test.cpp.o" "gcc" "tests/CMakeFiles/moods_test.dir/moods_receptor_test.cpp.o.d"
  "/root/repo/tests/moods_snapshot_test.cpp" "tests/CMakeFiles/moods_test.dir/moods_snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/moods_test.dir/moods_snapshot_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/peertrack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
