file(REMOVE_RECURSE
  "CMakeFiles/moods_test.dir/moods_inventory_test.cpp.o"
  "CMakeFiles/moods_test.dir/moods_inventory_test.cpp.o.d"
  "CMakeFiles/moods_test.dir/moods_iop_test.cpp.o"
  "CMakeFiles/moods_test.dir/moods_iop_test.cpp.o.d"
  "CMakeFiles/moods_test.dir/moods_oracle_test.cpp.o"
  "CMakeFiles/moods_test.dir/moods_oracle_test.cpp.o.d"
  "CMakeFiles/moods_test.dir/moods_receptor_test.cpp.o"
  "CMakeFiles/moods_test.dir/moods_receptor_test.cpp.o.d"
  "CMakeFiles/moods_test.dir/moods_snapshot_test.cpp.o"
  "CMakeFiles/moods_test.dir/moods_snapshot_test.cpp.o.d"
  "moods_test"
  "moods_test.pdb"
  "moods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
