# Empty compiler generated dependencies file for moods_test.
# This may be replaced when dependencies are built.
