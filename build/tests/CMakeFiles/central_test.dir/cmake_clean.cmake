file(REMOVE_RECURSE
  "CMakeFiles/central_test.dir/central_bptree_test.cpp.o"
  "CMakeFiles/central_test.dir/central_bptree_test.cpp.o.d"
  "CMakeFiles/central_test.dir/central_store_test.cpp.o"
  "CMakeFiles/central_test.dir/central_store_test.cpp.o.d"
  "central_test"
  "central_test.pdb"
  "central_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
