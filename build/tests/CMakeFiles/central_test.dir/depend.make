# Empty dependencies file for central_test.
# This may be replaced when dependencies are built.
