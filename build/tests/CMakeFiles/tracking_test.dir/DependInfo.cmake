
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tracking_audit_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_audit_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_audit_test.cpp.o.d"
  "/root/repo/tests/tracking_flooding_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_flooding_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_flooding_test.cpp.o.d"
  "/root/repo/tests/tracking_fuzz_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_fuzz_test.cpp.o.d"
  "/root/repo/tests/tracking_index_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_index_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_index_test.cpp.o.d"
  "/root/repo/tests/tracking_latency_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_latency_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_latency_test.cpp.o.d"
  "/root/repo/tests/tracking_prediction_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_prediction_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_prediction_test.cpp.o.d"
  "/root/repo/tests/tracking_prefix_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_prefix_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_prefix_test.cpp.o.d"
  "/root/repo/tests/tracking_replication_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_replication_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_replication_test.cpp.o.d"
  "/root/repo/tests/tracking_system_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_system_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_system_test.cpp.o.d"
  "/root/repo/tests/tracking_triangle_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_triangle_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_triangle_test.cpp.o.d"
  "/root/repo/tests/tracking_window_test.cpp" "tests/CMakeFiles/tracking_test.dir/tracking_window_test.cpp.o" "gcc" "tests/CMakeFiles/tracking_test.dir/tracking_window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/peertrack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
