file(REMOVE_RECURSE
  "CMakeFiles/tracking_test.dir/tracking_audit_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_audit_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_flooding_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_flooding_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_fuzz_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_fuzz_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_index_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_index_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_latency_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_latency_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_prediction_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_prediction_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_prefix_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_prefix_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_replication_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_replication_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_system_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_system_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_triangle_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_triangle_test.cpp.o.d"
  "CMakeFiles/tracking_test.dir/tracking_window_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_window_test.cpp.o.d"
  "tracking_test"
  "tracking_test.pdb"
  "tracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
